//! INT8 executors for the ResBlock operator graphs.
//!
//! [`QuantExec`] interprets a graph with the bit-accurate INT8
//! primitives — it is what [`QuantMhaResBlock::forward`] and
//! [`QuantFfnResBlock::forward`] run through. Per-head groups fan out
//! across threads exactly as the hand-rolled loop did; the datapath is
//! bit-exact integer arithmetic and panels are merged in head order, so
//! the result is identical for any thread count.
//!
//! [`QuantRowExec`] executes the cached-KV graph for incremental INT8
//! decoding. In the single-row hot path it writes the requantized head
//! outputs straight into a caller-provided scratch row (the session's
//! `p_buf`), so the per-token loop never allocates head panels.

use graph::{Env, ExecStats, Executor, Graph, GraphKind, Node, Op, PlanStep, WeightId};
use tensor::{gemm, Mat};

use crate::ffn::QuantFfnResBlock;
use crate::mha::QuantMhaResBlock;
use crate::qlinear::{residual_add_i8, QLinear};
use crate::softmax::scaled_masked_softmax;

/// Value domain of [`QuantExec`]: INT8 code matrices on the wires,
/// INT32 accumulators between a GEMM (or residual adder) and the module
/// that consumes it.
#[derive(Debug, Clone, PartialEq)]
pub enum QVal {
    /// INT8 codes.
    I8(Mat<i8>),
    /// INT32 accumulators.
    I32(Mat<i32>),
}

impl QVal {
    /// Unwraps the INT8 variant.
    ///
    /// # Panics
    ///
    /// Panics if this value holds accumulators.
    pub fn into_i8(self) -> Mat<i8> {
        match self {
            QVal::I8(m) => m,
            QVal::I32(_) => panic!("expected i8 codes, found i32 accumulators"),
        }
    }

    fn as_i8(&self) -> &Mat<i8> {
        match self {
            QVal::I8(m) => m,
            QVal::I32(_) => panic!("expected i8 codes, found i32 accumulators"),
        }
    }

    fn as_i32(&self) -> &Mat<i32> {
        match self {
            QVal::I32(m) => m,
            QVal::I8(_) => panic!("expected i32 accumulators, found i8 codes"),
        }
    }
}

/// Slot lookup that layers a head group's not-yet-merged outputs over
/// the shared environment, so steps inside a group can read their own
/// group's earlier results while other groups run concurrently.
struct Scope<'e> {
    env: &'e Env<QVal>,
    local: &'e [(usize, QVal)],
}

impl Scope<'_> {
    fn value(&self, slot: usize) -> &QVal {
        self.local
            .iter()
            .rev()
            .find(|(s, _)| *s == slot)
            .map(|(_, v)| v)
            .unwrap_or_else(|| self.env.value(slot))
    }
}

/// Which quantized ResBlock a [`QuantExec`] draws parameters from.
#[derive(Debug, Clone, Copy)]
enum QuantBlock<'a> {
    Mha(&'a QuantMhaResBlock),
    Ffn(&'a QuantFfnResBlock),
}

/// INT8 graph interpreter over a quantized ResBlock's parameters.
#[derive(Debug)]
pub struct QuantExec<'a> {
    block: QuantBlock<'a>,
    stats: ExecStats,
}

impl<'a> QuantExec<'a> {
    /// Executor over a quantized MHA ResBlock.
    pub fn mha(block: &'a QuantMhaResBlock) -> Self {
        Self {
            block: QuantBlock::Mha(block),
            stats: ExecStats::default(),
        }
    }

    /// Executor over a quantized FFN ResBlock.
    pub fn ffn(block: &'a QuantFfnResBlock) -> Self {
        Self {
            block: QuantBlock::Ffn(block),
            stats: ExecStats::default(),
        }
    }

    fn weight(&self, id: WeightId) -> &'a QLinear {
        match (self.block, id) {
            (QuantBlock::Mha(b), WeightId::Wq) => b.projections().0,
            (QuantBlock::Mha(b), WeightId::Wk) => b.projections().1,
            (QuantBlock::Mha(b), WeightId::Wv) => b.projections().2,
            (QuantBlock::Mha(b), WeightId::Wo) => b.projections().3,
            (QuantBlock::Ffn(b), WeightId::W1) => b.sublayers().0,
            (QuantBlock::Ffn(b), WeightId::W2) => b.sublayers().1,
            (_, id) => panic!("no {id:?} bound to this executor"),
        }
    }

    fn eval(
        &self,
        node: &Node,
        step: &PlanStep,
        scope: &Scope<'_>,
        mask: Option<&Mat<bool>>,
    ) -> QVal {
        let input = |i: usize| scope.value(step.inputs[i]);
        match node.op {
            Op::Linear(id) => QVal::I8(self.weight(id).forward(input(0).as_i8())),
            Op::SplitHeads => {
                let (d_k, head) = match self.block {
                    QuantBlock::Mha(b) => (b.d_k(), node.head.expect("head group")),
                    QuantBlock::Ffn(_) => panic!("SplitHeads in an FFN graph"),
                };
                let x = input(0).as_i8();
                QVal::I8(
                    x.submatrix(0, head * d_k, x.rows(), d_k)
                        .expect("head panel"),
                )
            }
            Op::HeadMatmul {
                transpose_rhs: true,
            } => QVal::I32(
                gemm::matmul_i8_nt(input(0).as_i8(), input(1).as_i8()).expect("head shapes"),
            ),
            Op::HeadMatmul {
                transpose_rhs: false,
            } => {
                // Context matmul: the accumulators are requantized into P
                // codes in the systolic array's output drain (Algorithm 1
                // line 7), so this node produces codes, not accumulators.
                let block = match self.block {
                    QuantBlock::Mha(b) => b,
                    QuantBlock::Ffn(_) => panic!("HeadMatmul in an FFN graph"),
                };
                let p_acc =
                    gemm::matmul_i8(input(0).as_i8(), input(1).as_i8()).expect("head shapes");
                QVal::I8(p_acc.map(|&a| block.requantize_p(a)))
            }
            Op::ScaledMaskedSoftmax => {
                let block = match self.block {
                    QuantBlock::Mha(b) => b,
                    QuantBlock::Ffn(_) => panic!("softmax in an FFN graph"),
                };
                QVal::I8(scaled_masked_softmax(
                    input(0).as_i32(),
                    block.d_scale(),
                    block.d_k(),
                    mask,
                    block.softmax_mode(),
                ))
            }
            Op::Concat => {
                let panels: Vec<Mat<i8>> = step
                    .inputs
                    .iter()
                    .map(|&s| scope.value(s).as_i8().clone())
                    .collect();
                QVal::I8(Mat::hconcat(&panels).expect("heads share rows"))
            }
            Op::Relu => QVal::I8(input(0).as_i8().map(|&v| v.max(0))),
            // Residual add on codes widens to i32 accumulators; argument
            // order (sublayer, residual) mirrors the pre-refactor calls —
            // integer addition is exact and symmetric either way.
            Op::Add => QVal::I32(residual_add_i8(input(1).as_i8(), input(0).as_i8())),
            Op::LayerNorm => {
                let ln = match self.block {
                    QuantBlock::Mha(b) => b.layernorm(),
                    QuantBlock::Ffn(b) => b.layernorm(),
                };
                QVal::I8(ln.forward(input(0).as_i32()))
            }
        }
    }
}

impl Executor for QuantExec<'_> {
    type Value = QVal;

    fn run(
        &mut self,
        graph: &Graph,
        inputs: Vec<(&str, QVal)>,
        mask: Option<&Mat<bool>>,
    ) -> Env<QVal> {
        let detected0 = faults::hooks_active().then(|| faults::counters().detected);
        let plan = graph.plan();
        let mut env = Env::new(plan.slot_names.clone());
        for (name, value) in inputs {
            let slot = env.slot(name);
            env.set(slot, value);
        }
        // Split the plan into the pre-head prefix, the contiguous per-head
        // region, and the post-head suffix (the graph validator guarantees
        // this shape). Heads fan out across threads — Algorithm 1's first
        // loop — everything else runs in plan order.
        let is_head = |s: usize| graph.nodes[plan.steps[s].node].head.is_some();
        let pre_end = (0..plan.steps.len())
            .find(|&s| is_head(s))
            .unwrap_or(plan.steps.len());
        let post_start = (pre_end..plan.steps.len())
            .find(|&s| !is_head(s))
            .unwrap_or(plan.steps.len());
        for step in &plan.steps[..pre_end] {
            let scope = Scope {
                env: &env,
                local: &[],
            };
            let out = self.eval(&graph.nodes[step.node], step, &scope, mask);
            env.set(step.output, out);
        }
        if pre_end < post_start {
            let mut head_groups: Vec<Vec<usize>> = Vec::new();
            for s in pre_end..post_start {
                let h = graph.nodes[plan.steps[s].node].head.expect("head region");
                if h >= head_groups.len() {
                    head_groups.push(Vec::new());
                }
                head_groups[h].push(s);
            }
            let computed = tensor::par::par_map(&head_groups, |group| {
                let mut local: Vec<(usize, QVal)> = Vec::with_capacity(group.len());
                for &s in group {
                    let step = &plan.steps[s];
                    let scope = Scope {
                        env: &env,
                        local: &local,
                    };
                    let out = self.eval(&graph.nodes[step.node], step, &scope, mask);
                    local.push((step.output, out));
                }
                local
            });
            for (slot, value) in computed.into_iter().flatten() {
                env.set(slot, value);
            }
        }
        for step in &plan.steps[post_start..] {
            let scope = Scope {
                env: &env,
                local: &[],
            };
            let out = self.eval(&graph.nodes[step.node], step, &scope, mask);
            env.set(step.output, out);
        }
        self.stats.nodes += plan.steps.len();
        if let Some(d0) = detected0 {
            self.stats.faults_detected += faults::counters().detected.saturating_sub(d0) as usize;
        }
        env
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }
}

/// Value domain of [`QuantRowExec`]: INT8 row stacks or per-session
/// borrowed code caches.
#[derive(Debug)]
pub enum QRowVal<'a> {
    /// A `b × d_model` matrix of per-session code rows.
    Codes(Mat<i8>),
    /// One borrowed projected-K/V cache per session.
    Caches(Vec<&'a Mat<i8>>),
}

impl QRowVal<'_> {
    /// Unwraps the code-rows variant.
    ///
    /// # Panics
    ///
    /// Panics if this value holds caches.
    pub fn into_codes(self) -> Mat<i8> {
        match self {
            QRowVal::Codes(m) => m,
            QRowVal::Caches(_) => panic!("expected code rows, found per-session caches"),
        }
    }
}

/// Cached-KV INT8 executor for the [`GraphKind::MhaCached`] graph.
///
/// Each of the `b` input rows attends over its own session's key/value
/// code cache. With a scratch row attached ([`QuantRowExec::with_scratch`])
/// and `b == 1`, the requantized head outputs are written directly into
/// the scratch's column panels — the zero-allocation single-token decode
/// hot path. Multi-row batches fan rows out across threads; row `r` is
/// bit-identical to a single-row run on row `r` alone (integer GEMMs are
/// row-independent).
#[derive(Debug)]
pub struct QuantRowExec<'a> {
    block: &'a QuantMhaResBlock,
    scratch: Option<&'a mut Mat<i8>>,
    stats: ExecStats,
}

impl<'a> QuantRowExec<'a> {
    /// Executor over one quantized MHA ResBlock.
    pub fn new(block: &'a QuantMhaResBlock) -> Self {
        Self {
            block,
            scratch: None,
            stats: ExecStats::default(),
        }
    }

    /// Attaches a `1 × d_model` scratch row that single-row runs write
    /// the concatenated `P` codes into (every column is overwritten, so
    /// its previous contents are irrelevant).
    pub fn with_scratch(block: &'a QuantMhaResBlock, scratch: &'a mut Mat<i8>) -> Self {
        Self {
            block,
            scratch: Some(scratch),
            stats: ExecStats::default(),
        }
    }
}

/// Computes row `r`'s concatenated requantized head outputs into `out`
/// (one full `d_model` row) — the SplitHeads → score → softmax →
/// context → requantize section of the cached graph.
fn head_section(
    block: &QuantMhaResBlock,
    q: &Mat<i8>,
    r: usize,
    keys: &Mat<i8>,
    vals: &Mat<i8>,
    out: &mut [i8],
) {
    let d_k = block.d_k();
    for i in 0..block.heads() {
        let c0 = i * d_k;
        let qi = q.submatrix(r, c0, 1, d_k).expect("head panel");
        let ki = keys.submatrix(0, c0, keys.rows(), d_k).expect("head panel");
        let vi = vals.submatrix(0, c0, vals.rows(), d_k).expect("head panel");
        let d_acc = gemm::matmul_i8_nt(&qi, &ki).expect("shapes");
        let probs = scaled_masked_softmax(&d_acc, block.d_scale(), d_k, None, block.softmax_mode());
        let p_acc = gemm::matmul_i8(&probs, &vi).expect("shapes");
        for (slot, &a) in out[c0..c0 + d_k].iter_mut().zip(p_acc.row(0)) {
            *slot = block.requantize_p(a);
        }
    }
}

impl<'a> Executor for QuantRowExec<'a> {
    type Value = QRowVal<'a>;

    fn run(
        &mut self,
        graph: &Graph,
        inputs: Vec<(&str, QRowVal<'a>)>,
        mask: Option<&Mat<bool>>,
    ) -> Env<QRowVal<'a>> {
        assert_eq!(
            graph.kind,
            GraphKind::MhaCached,
            "QuantRowExec executes the cached-KV MHA graph only"
        );
        let detected0 = faults::hooks_active().then(|| faults::counters().detected);
        debug_assert!(
            mask.is_none(),
            "cached decoding is causal by construction; no run-time mask"
        );
        let plan = graph.plan();
        let mut env = Env::new(plan.slot_names.clone());
        for (name, value) in inputs {
            let slot = env.slot(name);
            env.set(slot, value);
        }
        let x = match env.take("x") {
            QRowVal::Codes(m) => m,
            QRowVal::Caches(_) => panic!("input \"x\" must be code rows"),
        };
        let (keys, vals) = match (env.take("keys"), env.take("vals")) {
            (QRowVal::Caches(k), QRowVal::Caches(v)) => (k, v),
            _ => panic!("inputs \"keys\"/\"vals\" must be per-session caches"),
        };
        assert_eq!(x.rows(), keys.len(), "one key cache per row");
        assert_eq!(x.rows(), vals.len(), "one value cache per row");

        let block = self.block;
        let (wq, _, _, wo) = block.projections();
        let q = wq.forward(&x);
        let g_matmul = if x.rows() == 1 {
            if let Some(p_buf) = self.scratch.as_deref_mut() {
                head_section(block, &q, 0, keys[0], vals[0], &mut p_buf.row_mut(0)[..]);
                wo.forward(p_buf)
            } else {
                let mut p = Mat::zeros(1, x.cols());
                head_section(block, &q, 0, keys[0], vals[0], &mut p.row_mut(0)[..]);
                wo.forward(&p)
            }
        } else {
            let rows: Vec<usize> = (0..x.rows()).collect();
            let p_rows = tensor::par::par_map(&rows, |&r| {
                let mut p_row = vec![0i8; x.cols()];
                head_section(block, &q, r, keys[r], vals[r], &mut p_row);
                p_row
            });
            let mut p = Mat::zeros(x.rows(), x.cols());
            for (r, row) in p_rows.iter().enumerate() {
                p.row_mut(r).copy_from_slice(row);
            }
            wo.forward(&p)
        };
        let g = residual_add_i8(&g_matmul, &x);
        let y = block.layernorm().forward(&g);
        self.stats.nodes += graph.nodes.len();
        if let Some(d0) = detected0 {
            self.stats.faults_detected += faults::counters().detected.saturating_sub(d0) as usize;
        }
        let out_slot = env.slot("y");
        env.set(out_slot, QRowVal::Codes(y));
        env
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::SoftmaxMode;
    use graph::{mha_cached_graph, mha_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::mha::MhaResBlock;

    fn setup() -> (QuantMhaResBlock, Vec<Mat<f32>>, ModelConfig) {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(33);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..4)
            .map(|_| tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0))
            .collect();
        let q = QuantMhaResBlock::from_f32(&block, &calib, &calib, SoftmaxMode::Hardware);
        (q, calib, cfg)
    }

    /// Frozen copy of the pre-refactor `QuantMhaResBlock::forward` —
    /// the golden reference the graph path must reproduce bit for bit.
    fn mha_reference(
        block: &QuantMhaResBlock,
        xq: &Mat<i8>,
        xkv: &Mat<i8>,
        mask: Option<&Mat<bool>>,
    ) -> (Mat<i8>, Mat<i8>) {
        let (wq, wk, wv, wo) = block.projections();
        let d_k = block.d_k();
        let q = wq.forward(xq);
        let k = wk.forward(xkv);
        let v = wv.forward(xkv);
        let mut panels = Vec::with_capacity(block.heads());
        for i in 0..block.heads() {
            let c0 = i * d_k;
            let qi = q.submatrix(0, c0, q.rows(), d_k).unwrap();
            let ki = k.submatrix(0, c0, k.rows(), d_k).unwrap();
            let vi = v.submatrix(0, c0, v.rows(), d_k).unwrap();
            let d_acc = gemm::matmul_i8_nt(&qi, &ki).unwrap();
            let probs =
                scaled_masked_softmax(&d_acc, block.d_scale(), d_k, mask, block.softmax_mode());
            let p_acc = gemm::matmul_i8(&probs, &vi).unwrap();
            panels.push(p_acc.map(|&a| block.requantize_p(a)));
        }
        let p = Mat::hconcat(&panels).unwrap();
        let g = residual_add_i8(&wo.forward(&p), xq);
        (block.layernorm().forward(&g), p)
    }

    #[test]
    fn quant_exec_matches_reference_bitwise() {
        let (q, calib, _) = setup();
        let xq = q.quantize_input_q(&calib[0]);
        let (want_y, want_p) = mha_reference(&q, &xq, &xq, None);
        let (got_y, got_p) = q.forward(&xq, &xq, None);
        assert_eq!(got_y, want_y);
        assert_eq!(got_p, want_p);
    }

    #[test]
    fn quant_exec_matches_reference_with_mask() {
        let (q, calib, _) = setup();
        let xq = q.quantize_input_q(&calib[1]);
        let mask = tensor::ops::causal_mask(xq.rows());
        let (want_y, want_p) = mha_reference(&q, &xq, &xq, Some(&mask));
        let (got_y, got_p) = q.forward(&xq, &xq, Some(&mask));
        assert_eq!(got_y, want_y);
        assert_eq!(got_p, want_p);
    }

    #[test]
    fn quant_exec_exposes_intermediates() {
        let (q, calib, cfg) = setup();
        let xq = q.quantize_input_q(&calib[2]);
        let g = mha_graph(&graph::GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let mut exec = QuantExec::mha(&q);
        let mut env = exec.run(
            &g,
            vec![
                ("x_q", QVal::I8(xq.clone())),
                ("x_k", QVal::I8(xq.clone())),
                ("x_v", QVal::I8(xq.clone())),
            ],
            None,
        );
        assert_eq!(exec.stats().nodes, g.nodes.len());
        let p = env.take("p").into_i8();
        assert_eq!(p.shape(), xq.shape());
        // per-head probs survive in the environment too
        assert!(env.get("probs.0").is_some());
    }

    #[test]
    fn row_exec_scratch_and_alloc_paths_agree() {
        let (q, calib, cfg) = setup();
        let (_, wk, wv, _) = q.projections();
        let xq = q.quantize_input_q(&calib[0]);
        let keys = wk.forward(&xq);
        let vals = wv.forward(&xq);
        let row = xq.submatrix(2, 0, 1, cfg.d_model).unwrap();
        let g = mha_cached_graph(&graph::GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let run = |scratch: Option<&mut Mat<i8>>| -> Mat<i8> {
            let mut exec = match scratch {
                Some(s) => QuantRowExec::with_scratch(&q, s),
                None => QuantRowExec::new(&q),
            };
            let mut env = exec.run(
                &g,
                vec![
                    ("x", QRowVal::Codes(row.clone())),
                    ("keys", QRowVal::Caches(vec![&keys])),
                    ("vals", QRowVal::Caches(vec![&vals])),
                ],
                None,
            );
            env.take("y").into_codes()
        };
        let mut p_buf = Mat::zeros(1, cfg.d_model);
        let with_scratch = run(Some(&mut p_buf));
        let without = run(None);
        assert_eq!(with_scratch, without);
        // scratch received the concatenated P codes
        assert!(p_buf.as_slice().iter().any(|&v| v != 0));
    }

    #[test]
    fn row_exec_batch_rows_match_single_rows() {
        let (q, calib, cfg) = setup();
        let (_, wk, wv, _) = q.projections();
        let xq = q.quantize_input_q(&calib[3]);
        let caches: Vec<(Mat<i8>, Mat<i8>)> = (0..3)
            .map(|i| {
                let m = xq.submatrix(0, 0, 2 + i, cfg.d_model).unwrap();
                (wk.forward(&m), wv.forward(&m))
            })
            .collect();
        let x = xq.submatrix(0, 0, 3, cfg.d_model).unwrap();
        let g = mha_cached_graph(&graph::GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let mut batched = QuantRowExec::new(&q);
        let mut env = batched.run(
            &g,
            vec![
                ("x", QRowVal::Codes(x.clone())),
                (
                    "keys",
                    QRowVal::Caches(caches.iter().map(|c| &c.0).collect()),
                ),
                (
                    "vals",
                    QRowVal::Caches(caches.iter().map(|c| &c.1).collect()),
                ),
            ],
            None,
        );
        let got = env.take("y").into_codes();
        for (r, cache) in caches.iter().enumerate() {
            let row = x.submatrix(r, 0, 1, cfg.d_model).unwrap();
            let mut single = QuantRowExec::new(&q);
            let mut env = single.run(
                &g,
                vec![
                    ("x", QRowVal::Codes(row)),
                    ("keys", QRowVal::Caches(vec![&cache.0])),
                    ("vals", QRowVal::Caches(vec![&cache.1])),
                ],
                None,
            );
            let want = env.take("y").into_codes();
            assert_eq!(got.row(r), want.row(0), "row {r}");
        }
    }
}
