//! The fully quantized encoder–decoder model used for the Section V-A
//! BLEU study: INT8 ResBlocks everywhere, FP32 embeddings and output
//! projection (the paper only quantizes the Fig. 3 matrices — "other
//! components beside the stacks ... have not been taken into account").

use tensor::{ops, Mat};
use transformer::bleu::corpus_bleu;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::BOS;

use crate::ffn::QuantFfnResBlock;
use crate::mha::QuantMhaResBlock;
use crate::softmax::SoftmaxMode;

/// One quantized encoder layer.
#[derive(Debug, Clone)]
pub struct QuantEncoderLayer {
    /// Self-attention ResBlock.
    pub mha: QuantMhaResBlock,
    /// Feed-forward ResBlock.
    pub ffn: QuantFfnResBlock,
}

/// One quantized decoder layer.
#[derive(Debug, Clone)]
pub struct QuantDecoderLayer {
    /// Causal self-attention ResBlock.
    pub self_mha: QuantMhaResBlock,
    /// Encoder–decoder cross-attention ResBlock.
    pub cross_mha: QuantMhaResBlock,
    /// Feed-forward ResBlock.
    pub ffn: QuantFfnResBlock,
}

/// INT8-quantized sequence-to-sequence Transformer.
#[derive(Debug, Clone)]
pub struct QuantSeq2Seq {
    src_emb: transformer::embedding::Embedding,
    tgt_emb: transformer::embedding::Embedding,
    enc_layers: Vec<QuantEncoderLayer>,
    dec_layers: Vec<QuantDecoderLayer>,
    out_proj: transformer::linear::Linear,
    max_len: usize,
}

impl QuantSeq2Seq {
    /// Quantizes a trained FP32 model, calibrating every activation
    /// scale by replaying the calibration corpus through the FP32
    /// layers (post-training quantization, after Bhandare et al. 2019).
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty.
    pub fn from_trained(
        model: &Seq2SeqTransformer,
        calib: &[(Vec<usize>, Vec<usize>)],
        mode: SoftmaxMode,
    ) -> Self {
        assert!(!calib.is_empty(), "empty calibration corpus");
        let cfg = model.config();

        // --- Encoder side -------------------------------------------------
        let mut xs: Vec<Mat<f32>> = calib
            .iter()
            .map(|(src, _)| model.src_embedding().forward_inference(src))
            .collect();
        let mut enc_layers = Vec::with_capacity(model.encoder().n_layers());
        for layer in model.encoder().layers() {
            let (mha_f, ffn_f) = layer.blocks();
            let qmha = QuantMhaResBlock::from_f32(mha_f, &xs, &xs, mode);
            // FP32 replay to produce the next interface's activations.
            let mut mha_clone = mha_f.clone();
            let mha_outs: Vec<Mat<f32>> = xs
                .iter()
                .map(|x| mha_clone.forward(x, x, x, None))
                .collect();
            let qffn = QuantFfnResBlock::from_f32(ffn_f, &mha_outs);
            let mut ffn_clone = ffn_f.clone();
            xs = mha_outs.iter().map(|x| ffn_clone.forward(x)).collect();
            enc_layers.push(QuantEncoderLayer {
                mha: qmha,
                ffn: qffn,
            });
        }
        let memories = xs; // FP32 encoder outputs per calibration pair

        // --- Decoder side -------------------------------------------------
        let mut ys: Vec<Mat<f32>> = calib
            .iter()
            .map(|(_, tgt)| {
                let mut tgt_in = vec![BOS];
                tgt_in.extend_from_slice(tgt);
                model.tgt_embedding().forward_inference(&tgt_in)
            })
            .collect();
        let mut dec_layers = Vec::with_capacity(model.decoder().n_layers());
        for layer in model.decoder().layers() {
            let (self_f, cross_f, ffn_f) = layer.blocks();
            let q_self = QuantMhaResBlock::from_f32_with_mask(self_f, &ys, &ys, mode, |sq, _| {
                Some(ops::causal_mask(sq))
            });
            let mut self_clone = self_f.clone();
            let self_outs: Vec<Mat<f32>> = ys
                .iter()
                .map(|y| {
                    let m = ops::causal_mask(y.rows());
                    self_clone.forward(y, y, y, Some(&m))
                })
                .collect();
            let q_cross = QuantMhaResBlock::from_f32(cross_f, &self_outs, &memories, mode);
            let mut cross_clone = cross_f.clone();
            let cross_outs: Vec<Mat<f32>> = self_outs
                .iter()
                .zip(&memories)
                .map(|(a, m)| cross_clone.forward(a, m, m, None))
                .collect();
            let q_ffn = QuantFfnResBlock::from_f32(ffn_f, &cross_outs);
            let mut ffn_clone = ffn_f.clone();
            ys = cross_outs.iter().map(|x| ffn_clone.forward(x)).collect();
            dec_layers.push(QuantDecoderLayer {
                self_mha: q_self,
                cross_mha: q_cross,
                ffn: q_ffn,
            });
        }

        Self {
            src_emb: model.src_embedding().clone(),
            tgt_emb: model.tgt_embedding().clone(),
            enc_layers,
            dec_layers,
            out_proj: model.output_projection().clone(),
            max_len: cfg.max_len,
        }
    }

    /// Switches every attention block's softmax implementation.
    pub fn set_softmax_mode(&mut self, mode: SoftmaxMode) {
        for l in &mut self.enc_layers {
            l.mha.set_softmax_mode(mode);
        }
        for l in &mut self.dec_layers {
            l.self_mha.set_softmax_mode(mode);
            l.cross_mha.set_softmax_mode(mode);
        }
    }

    /// The quantized encoder layers (the accelerator simulator drives
    /// these directly).
    pub fn encoder_layers(&self) -> &[QuantEncoderLayer] {
        &self.enc_layers
    }

    /// The quantized decoder layers.
    pub fn decoder_layers(&self) -> &[QuantDecoderLayer] {
        &self.dec_layers
    }

    /// Maximum decode length (from the source model's configuration) —
    /// the horizon incremental sessions reserve their KV caches for.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Source-side vocabulary size — tokens `>= src_vocab()` panic in
    /// the embedding lookup, so network admission validates against it.
    pub fn src_vocab(&self) -> usize {
        self.src_emb.vocab()
    }

    /// Target-side vocabulary size (prompt tokens must stay below it).
    pub fn tgt_vocab(&self) -> usize {
        self.tgt_emb.vocab()
    }

    /// The (FP32) target embedding — incremental decoding embeds single
    /// tokens at absolute positions through it.
    pub fn tgt_embedding(&self) -> &transformer::embedding::Embedding {
        &self.tgt_emb
    }

    /// Applies the FP32 output projection to a decoder row, returning
    /// vocabulary logits.
    pub(crate) fn output_projection_logits(&self, x_row: &Mat<f32>) -> Vec<f32> {
        self.out_proj.forward_inference(x_row).row(0).to_vec()
    }

    /// Applies the FP32 output projection to a stack of decoder rows
    /// (one logit row per input row). The GEMM is row-independent, so
    /// row `r` equals [`QuantSeq2Seq::output_projection_logits`] on row
    /// `r` alone, bit for bit.
    pub(crate) fn output_projection_rows(&self, x: &Mat<f32>) -> Mat<f32> {
        self.out_proj.forward_inference(x)
    }

    /// Runs the quantized encoder, returning output codes (scale: last
    /// FFN block's `out_scale`).
    pub fn encode(&self, src: &[usize]) -> Mat<i8> {
        let x = self.src_emb.forward_inference(src);
        let mut codes = self.enc_layers[0].mha.quantize_input_q(&x);
        for layer in &self.enc_layers {
            let (a, _) = layer.mha.forward(&codes, &codes, None);
            let (b, _) = layer.ffn.forward(&a);
            codes = b;
        }
        codes
    }

    /// Teacher-forced logits (FP32, from the output projection).
    pub fn forward_logits(&self, src: &[usize], tgt_in: &[usize]) -> Mat<f32> {
        let memory = self.encode(src);
        let dec = self.decode_codes(tgt_in, &memory);
        let last_ffn = &self.dec_layers.last().expect("nonempty decoder").ffn;
        let dec_f32 = last_ffn.dequantize_output(&dec);
        self.out_proj.forward_inference(&dec_f32)
    }

    fn decode_codes(&self, tgt_in: &[usize], memory: &Mat<i8>) -> Mat<i8> {
        let y = self.tgt_emb.forward_inference(tgt_in);
        let mask = ops::causal_mask(tgt_in.len());
        let mut codes = self.dec_layers[0].self_mha.quantize_input_q(&y);
        for layer in &self.dec_layers {
            let (a, _) = layer.self_mha.forward(&codes, &codes, Some(&mask));
            let (b, _) = layer.cross_mha.forward(&a, memory, None);
            let (c, _) = layer.ffn.forward(&b);
            codes = c;
        }
        codes
    }

    /// Greedy autoregressive decoding (mirrors
    /// [`Seq2SeqTransformer::greedy_decode`]).
    pub fn greedy_decode(
        &self,
        src: &[usize],
        bos: usize,
        eos: usize,
        max_len: usize,
    ) -> Vec<usize> {
        let memory = self.encode(src);
        let mut tokens = vec![bos];
        let mut out = Vec::new();
        for _ in 0..max_len {
            let dec = self.decode_codes(&tokens, &memory);
            let last_ffn = &self.dec_layers.last().expect("nonempty decoder").ffn;
            let dec_f32 = last_ffn.dequantize_output(&dec);
            let last = dec_f32
                .submatrix(dec_f32.rows() - 1, 0, 1, dec_f32.cols())
                .expect("row");
            let logits = self.out_proj.forward_inference(&last);
            let next = ops::argmax(logits.row(0));
            if next == eos {
                break;
            }
            out.push(next);
            tokens.push(next);
        }
        out
    }

    /// Evaluates greedy decodes against references with corpus BLEU.
    ///
    /// # Panics
    ///
    /// Panics if `corpus` is empty.
    pub fn evaluate(&self, corpus: &[(Vec<usize>, Vec<usize>)]) -> QuantEvalReport {
        assert!(!corpus.is_empty(), "empty evaluation corpus");
        let hyps: Vec<Vec<usize>> = corpus
            .iter()
            .map(|(src, _)| self.greedy_decode_incremental(src, self.max_len))
            .collect();
        self.score(corpus, hyps)
    }

    /// Like [`QuantSeq2Seq::evaluate`] but decodes sentences on
    /// `threads` worker threads (inference is `&self` — the quantized
    /// datapath holds no mutable state). Results are bit-identical to
    /// the serial path.
    ///
    /// # Panics
    ///
    /// Panics if `corpus` is empty or `threads == 0`.
    pub fn evaluate_parallel(
        &self,
        corpus: &[(Vec<usize>, Vec<usize>)],
        threads: usize,
    ) -> QuantEvalReport {
        assert!(!corpus.is_empty(), "empty evaluation corpus");
        assert!(threads > 0, "need at least one thread");
        let chunk = corpus.len().div_ceil(threads);
        let mut hyps: Vec<Vec<usize>> = vec![Vec::new(); corpus.len()];
        std::thread::scope(|scope| {
            for (slot_chunk, work_chunk) in hyps.chunks_mut(chunk).zip(corpus.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, (src, _)) in slot_chunk.iter_mut().zip(work_chunk) {
                        *slot = self.greedy_decode_incremental(src, self.max_len);
                    }
                });
            }
        });
        self.score(corpus, hyps)
    }

    fn score(&self, corpus: &[(Vec<usize>, Vec<usize>)], hyps: Vec<Vec<usize>>) -> QuantEvalReport {
        let refs: Vec<Vec<usize>> = corpus.iter().map(|(_, t)| t.clone()).collect();
        let exact = hyps.iter().zip(&refs).filter(|(h, r)| h == r).count();
        QuantEvalReport {
            bleu: corpus_bleu(&hyps, &refs),
            exact_match: exact as f32 / corpus.len() as f32,
            token_error_rate: transformer::metrics::token_error_rate(&hyps, &refs),
        }
    }
}

/// Evaluation result of the quantized model.
#[derive(Debug, Clone, Copy)]
pub struct QuantEvalReport {
    /// Corpus BLEU-4 (0–100).
    pub bleu: f64,
    /// Exact-match rate of greedy decodes.
    pub exact_match: f32,
    /// Token error rate (Levenshtein edits / reference tokens).
    pub token_error_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::tasks::{Task, TaskGen, EOS};

    #[allow(clippy::type_complexity)]
    fn tiny_setup() -> (Seq2SeqTransformer, Vec<(Vec<usize>, Vec<usize>)>) {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 1;
        let mut rng = StdRng::seed_from_u64(11);
        let model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 6);
        let corpus = gen.corpus(4, &mut StdRng::seed_from_u64(12));
        (model, corpus)
    }

    #[test]
    fn construction_and_logit_shapes() {
        let (model, corpus) = tiny_setup();
        let q = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
        let (src, tgt) = &corpus[0];
        let (_, tin, _) = transformer::tasks::teacher_forcing(src, tgt);
        let logits = q.forward_logits(src, &tin);
        assert_eq!(logits.shape(), (tin.len(), model.config().vocab));
        assert!(logits.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn quantized_logits_track_fp32_logits() {
        let (model, corpus) = tiny_setup();
        let q = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Fp32);
        let mut m = model.clone();
        let (src, tgt) = &corpus[1];
        let (_, tin, _) = transformer::tasks::teacher_forcing(src, tgt);
        let want = m.forward_train(src, &tin);
        let got = q.forward_logits(src, &tin);
        // correlation check: argmax rows should mostly agree on an
        // untrained random model is too strict; instead bound the error
        // relative to the logit scale.
        let scale = tensor::ops::max_abs(&want).max(1e-3);
        let err = want
            .as_slice()
            .iter()
            .zip(got.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(err / scale < 0.35, "relative logit error {}", err / scale);
    }

    #[test]
    fn greedy_decode_is_deterministic() {
        let (model, corpus) = tiny_setup();
        let q = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
        let (src, _) = &corpus[2];
        assert_eq!(
            q.greedy_decode(src, BOS, EOS, 8),
            q.greedy_decode(src, BOS, EOS, 8)
        );
    }

    #[test]
    fn evaluate_produces_bounded_metrics() {
        let (model, corpus) = tiny_setup();
        let q = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
        let rep = q.evaluate(&corpus);
        assert!((0.0..=100.0).contains(&rep.bleu));
        assert!((0.0..=1.0).contains(&rep.exact_match));
        assert!(rep.token_error_rate >= 0.0);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let (model, corpus) = tiny_setup();
        let q = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
        let serial = q.evaluate(&corpus);
        let parallel = q.evaluate_parallel(&corpus, 3);
        assert_eq!(serial.bleu, parallel.bleu);
        assert_eq!(serial.exact_match, parallel.exact_match);
        // more threads than sentences must also work
        let many = q.evaluate_parallel(&corpus, 64);
        assert_eq!(serial.bleu, many.bleu);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let (model, corpus) = tiny_setup();
        let q = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
        let _ = q.evaluate_parallel(&corpus, 0);
    }

    #[test]
    fn softmax_mode_switch_applies_everywhere() {
        let (model, corpus) = tiny_setup();
        let mut q = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Fp32);
        let (src, tgt) = &corpus[0];
        let (_, tin, _) = transformer::tasks::teacher_forcing(src, tgt);
        let a = q.forward_logits(src, &tin);
        q.set_softmax_mode(SoftmaxMode::Hardware);
        let b = q.forward_logits(src, &tin);
        assert_ne!(a, b);
    }
}
