//! End-to-end fault injection through the continuous batcher.
//!
//! These tests drive the full serving path — admission, batched decode
//! steps, ABFT checking in `quantized::QLinear`, rollback-and-retry —
//! against the `faults` crate's process-wide injector. They pin the
//! worker count to 1 (`tensor::par::set_thread_override`) so the global
//! GEMM-pass numbering is deterministic, and serialize on
//! [`faults::exclusive`] because the injector, checker switch, and
//! counters are process-wide.
//!
//! The CI fault matrix runs this binary with `ACCEL_FAULT_SEED` set at
//! several seeds, `ACCEL_ABFT=1`, and `ACCEL_THREADS=1`; the
//! `env_seeded_fault_is_detected_and_healed` test picks the seed up via
//! [`faults::env_seed`].

use std::sync::{MutexGuard, OnceLock};

use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite, FaultSpace, SiteClass};
use proptest::prelude::*;
use quantized::{QuantSeq2Seq, SoftmaxMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serving::{ContinuousBatcher, EngineConfig, Request, Response};
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};

const MAX_NEW: usize = 6;

fn model() -> &'static QuantSeq2Seq {
    static MODEL: OnceLock<QuantSeq2Seq> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(0xFA017);
        let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
        let corpus = gen.corpus(8, &mut StdRng::seed_from_u64(0xFA018));
        QuantSeq2Seq::from_trained(&fp32, &corpus, SoftmaxMode::Hardware)
    })
}

fn sources() -> &'static Vec<Vec<usize>> {
    static SRCS: OnceLock<Vec<Vec<usize>>> = OnceLock::new();
    SRCS.get_or_init(|| {
        let cfg = ModelConfig::tiny_for_tests();
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
        gen.corpus(4, &mut StdRng::seed_from_u64(0xFA019))
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    })
}

/// Serializes a test on the process-wide fault state, pins the worker
/// count to 1 (deterministic global pass numbering), and restores
/// everything on drop — even when the test panics.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultGuard {
    fn acquire() -> Self {
        let g = faults::exclusive();
        tensor::par::set_thread_override(Some(1));
        faults::clear();
        faults::set_checker(Some(false));
        faults::reset_counters();
        FaultGuard(g)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::clear();
        faults::set_checker(None);
        faults::reset_counters();
        tensor::par::set_thread_override(None);
    }
}

fn engine_cfg(max_batch: usize) -> EngineConfig {
    EngineConfig {
        max_batch,
        bucket_max_waste: usize::MAX, // one bucket: admission in submit order
        ..EngineConfig::with_max_batch(max_batch)
    }
}

/// Runs `n` requests to completion on the current global fault state.
fn decode(max_batch: usize, n: usize) -> (Vec<Response>, serving::ServingStats) {
    let q = model();
    let srcs = sources();
    let mut engine = ContinuousBatcher::new(q, engine_cfg(max_batch)).unwrap();
    for (id, src) in srcs.iter().take(n).enumerate() {
        engine
            .submit(Request::new(id as u64, src.clone(), MAX_NEW))
            .unwrap();
    }
    (engine.run_to_completion(), engine.stats())
}

/// Fault-free responses, computed once with every hook off.
fn baseline(n: usize) -> Vec<Response> {
    // Caller holds the exclusive guard with hooks cleared.
    assert!(!faults::hooks_active(), "baseline needs hooks off");
    decode(4, n).0
}

/// Global GEMM-pass count consumed by prefilling the first `n` sources
/// in admission order — every later pass index lands inside batched
/// decode steps (the retry-protected region).
fn prefill_passes(n: usize) -> u64 {
    faults::install(FaultPlan::empty());
    let mut arena = quantized::incremental::KvArena::for_model(model());
    for src in sources().iter().take(n) {
        let _ = model().start_session(&mut arena, src);
    }
    let p = faults::with_injector(|i| i.passes_seen()).expect("plan installed");
    faults::clear();
    p
}

/// GEMM passes per batched decode step for the 2-layer tiny model: each
/// layer runs W_K, W_V (cache extension), W_Q, W_O twice (self + cross
/// attention) and the two FFN sublayers — 8 QLinear forwards per layer.
/// Used only as a conservative *lower bound* on the first step's pass
/// window, so faults scheduled inside it fire on the first attempt and
/// never on the (clean) retry.
const PASSES_PER_STEP: u64 = 16;

#[test]
fn checker_on_without_plan_changes_no_output_bits() {
    let _g = FaultGuard::acquire();
    let want = baseline(3);
    faults::set_checker(Some(true));
    let (got, stats) = decode(4, 3);
    assert_eq!(got, want, "checker-on fault-free run must be bit-identical");
    assert_eq!(stats.faulty_steps, 0);
    assert_eq!(stats.retries, 0);
    let c = faults::counters();
    assert!(c.checked > 0, "checker must actually have run");
    assert_eq!(c.injected, 0);
    assert_eq!(c.detected, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (a) An empty `FaultPlan` — hooks live, pass counters advancing,
    /// checker on — produces bit-identical outputs at every batch shape.
    #[test]
    fn empty_plan_is_bit_identical(max_batch in 1usize..=4, n in 2usize..=4) {
        let _g = FaultGuard::acquire();
        let want = baseline(n);
        faults::install(FaultPlan::empty());
        faults::set_checker(Some(true));
        let (got, stats) = decode(max_batch, n);
        // Compare the decoded content; `first_token_step` is queueing
        // metadata and legitimately shifts with `max_batch`.
        let strip = |rs: &[Response]| -> Vec<(u64, Vec<usize>, bool)> {
            rs.iter().map(|r| (r.id, r.tokens.clone(), r.hit_eos())).collect()
        };
        prop_assert_eq!(strip(&got), strip(&want));
        prop_assert_eq!(stats.faulty_steps, 0);
        prop_assert_eq!(faults::counters().injected, 0);
        prop_assert_eq!(faults::counters().detected, 0);
    }
}

#[test]
fn weight_sram_flip_is_detected_and_healed_by_retry() {
    let _g = FaultGuard::acquire();
    let n = 2;
    let want = baseline(n);
    let p0 = prefill_passes(n);
    // Corrupt weight-SRAM words during the first batched decode step:
    // a few (pass, row) combinations so at least one meets a nonzero
    // activation (a weight delta against a zero activation is invisible
    // in the accumulators — the classic ABFT escape). All events stay
    // inside the first step's pass window, so the retry is clean.
    let mut events = Vec::new();
    for pass in p0 + 1..p0 + 6 {
        for row in 0..4 {
            events.push(FaultEvent {
                site: FaultSite::WeightSram { pass, row, col: 0 },
                kind: FaultKind::MultiBitFlip { mask: 0x60 },
            });
        }
    }
    faults::install(FaultPlan::from_events(events));
    faults::set_checker(Some(true));
    let (got, stats) = decode(n, n);
    let c = faults::counters();
    assert!(c.injected > 0, "weight faults must have fired");
    assert!(c.detected >= 1, "row checksum must flag the corruption");
    assert!(stats.faulty_steps >= 1);
    assert!(stats.retries >= 1, "flagged step must be recomputed");
    assert_eq!(stats.quarantined, 0);
    assert_eq!(
        got, want,
        "retry must heal the step; all requests bit-identical"
    );
}

#[test]
fn accumulator_flip_is_detected_and_healed_by_retry() {
    let _g = FaultGuard::acquire();
    let n = 1;
    let want = baseline(n);
    let p0 = prefill_passes(n);
    // One flipped accumulator register in the first decode step. Bit 20
    // shifts the drained value by ±2^20 — a guaranteed row-checksum
    // mismatch, unlike a weight fault.
    faults::install(FaultPlan::from_events(vec![FaultEvent {
        site: FaultSite::Accumulator {
            pass: p0 + 3,
            row: 0,
            col: 2,
        },
        kind: FaultKind::BitFlip { bit: 20 },
    }]));
    faults::set_checker(Some(true));
    let (got, stats) = decode(n, n);
    let c = faults::counters();
    assert_eq!(c.injected, 1, "exactly the one scheduled fault fires");
    assert!(c.detected >= 1);
    assert_eq!(stats.faulty_steps, 1);
    assert_eq!(stats.retries, 1, "one rollback-and-recompute heals it");
    assert_eq!(got, want);
}

#[test]
fn undetected_faults_without_checker_corrupt_silently() {
    // The negative control: the same accumulator flip with the checker
    // off is injected but never detected — nothing retries, nothing is
    // recorded. (Whether the output token stream changes depends on
    // where the flip lands in the argmax margin, so only the counters
    // are asserted.)
    let _g = FaultGuard::acquire();
    let n = 1;
    let p0 = prefill_passes(n);
    faults::install(FaultPlan::from_events(vec![FaultEvent {
        site: FaultSite::Accumulator {
            pass: p0 + 3,
            row: 0,
            col: 2,
        },
        kind: FaultKind::BitFlip { bit: 20 },
    }]));
    faults::set_checker(Some(false));
    let (_, stats) = decode(n, n);
    let c = faults::counters();
    assert_eq!(c.injected, 1);
    assert_eq!(c.detected, 0);
    assert_eq!(c.checked, 0);
    assert_eq!(stats.faulty_steps, 0);
    assert_eq!(stats.retries, 0);
}

#[test]
fn persistent_faults_quarantine_the_slot() {
    let _g = FaultGuard::acquire();
    let n = 2;
    let p0 = prefill_passes(1); // max_batch 1: only request 0 prefills
                                // A stuck-at-style barrage: every decode pass for a long horizon is
                                // corrupted, so retries can never find a clean window.
    let events: Vec<FaultEvent> = (p0..p0 + 400)
        .map(|pass| FaultEvent {
            site: FaultSite::Accumulator {
                pass,
                row: 0,
                col: 0,
            },
            kind: FaultKind::BitFlip { bit: 20 },
        })
        .collect();
    faults::install(FaultPlan::from_events(events));
    faults::set_checker(Some(true));
    let q = model();
    let srcs = sources();
    let mut cfg = engine_cfg(1);
    cfg.max_step_retries = 1;
    cfg.quarantine_after = 2;
    let mut engine = ContinuousBatcher::new(q, cfg).unwrap();
    for (id, src) in srcs.iter().take(n).enumerate() {
        engine
            .submit(Request::new(id as u64, src.clone(), MAX_NEW))
            .unwrap();
    }
    let responses = engine.run_to_completion();
    let stats = engine.stats();
    assert_eq!(stats.quarantined, 1, "the only slot must be withdrawn");
    assert_eq!(engine.quarantined_len(), 1);
    // Request 0 retired degraded (whatever it had); request 1 was never
    // started — stranded in the queue, not silently lost.
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].id, 0);
    assert!(!responses[0].hit_eos());
    assert_eq!(engine.pending_len(), 1);
    assert!(stats.faulty_steps >= 2, "every attempt stays flagged");
}

#[test]
fn env_seeded_fault_is_detected_and_healed() {
    // The CI fault-matrix entry point: `ACCEL_FAULT_SEED=<seed>
    // ACCEL_ABFT=1 ACCEL_THREADS=1 cargo test --test fault_injection`.
    // Without the env var it still runs at a pinned seed.
    let _g = FaultGuard::acquire();
    let seed = faults::env_seed().unwrap_or(7);
    let n = 2;
    let want = baseline(n);
    let p0 = prefill_passes(n);
    // One seeded accumulator flip somewhere in the first batched decode
    // step (2 active rows, well inside d_model columns): guaranteed to
    // fire, guaranteed to mismatch the row checksum, healed by retry.
    let plan = FaultPlan::seeded(
        seed,
        1,
        &FaultSpace {
            index_lo: p0 + 1,
            index_hi: p0 + PASSES_PER_STEP - 1,
            rows: 2,
            cols: 8,
            classes: vec![SiteClass::Accumulator],
        },
    );
    faults::install(plan.clone());
    faults::set_checker(Some(true));
    let (got, stats) = decode(n, n);
    let c = faults::counters();
    assert_eq!(c.injected, 1, "seed {seed}: the scheduled flip must fire");
    assert!(c.detected >= 1, "seed {seed}: must be detected");
    assert!(stats.retries >= 1, "seed {seed}: must be retried");
    assert_eq!(got, want, "seed {seed}: retry must restore bit-identity");
    // Reproducibility: the same seed regenerates the same plan.
    assert_eq!(
        plan,
        FaultPlan::seeded(
            seed,
            1,
            &FaultSpace {
                index_lo: p0 + 1,
                index_hi: p0 + PASSES_PER_STEP - 1,
                rows: 2,
                cols: 8,
                classes: vec![SiteClass::Accumulator],
            }
        )
    );
}
