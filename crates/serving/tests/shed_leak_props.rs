//! Property tests for the overload paths: requests that are shed at a
//! full queue, cancelled while queued or in flight, or expired by a
//! wall deadline must never disturb engine memory — the KV arena and
//! the shared-prefix cache — and must never perturb the output of the
//! requests that survive.
//!
//! These are the invariants the network front door leans on: a client
//! that is refused, hangs up, or times out can influence *when* other
//! requests run, but never *what* they decode and never what the
//! engine's memory looks like afterwards.

use std::sync::OnceLock;

use proptest::prelude::*;
use quantized::{QuantSeq2Seq, SoftmaxMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serving::{ContinuousBatcher, EngineConfig, FinishReason, Request, ServingError};
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};

fn model() -> &'static QuantSeq2Seq {
    static MODEL: OnceLock<QuantSeq2Seq> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(0x51ED);
        let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 2, 9);
        let corpus = gen.corpus(16, &mut StdRng::seed_from_u64(0x51EE));
        QuantSeq2Seq::from_trained(&fp32, &corpus, SoftmaxMode::Hardware)
    })
}

fn sources() -> &'static Vec<Vec<usize>> {
    static SRCS: OnceLock<Vec<Vec<usize>>> = OnceLock::new();
    SRCS.get_or_init(|| {
        let cfg = ModelConfig::tiny_for_tests();
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 2, 9);
        gen.corpus(10, &mut StdRng::seed_from_u64(0x51EF))
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    })
}

fn mem(engine: &ContinuousBatcher<'_>) -> (usize, usize) {
    (engine.kv_bytes_in_use(), engine.prefix_cache_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Shed submissions (queue full) are pure refusals: engine memory
    /// is byte-for-byte unchanged by each one, and the admitted
    /// requests decode exactly what a never-overloaded engine decodes.
    #[test]
    fn shed_requests_leave_memory_and_survivors_untouched(
        seed in 0u64..10_000,
        n in 6usize..=14,
        max_batch in 1usize..=3,
        max_queue in 1usize..=4,
        max_new in 3usize..=8,
    ) {
        let q = model();
        let srcs = sources();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut engine = ContinuousBatcher::new(q, EngineConfig {
            max_queue,
            prefix_cache_bytes: 1 << 16,
            ..EngineConfig::with_max_batch(max_batch)
        }).unwrap();

        let mut admitted = Vec::new();
        let mut sheds = 0usize;
        for id in 0..n as u64 {
            let src = srcs[rng.random_range(0..srcs.len())].clone();
            let before = mem(&engine);
            match engine.submit(Request::new(id, src.clone(), max_new)) {
                Ok(()) => admitted.push((id, src)),
                Err(ServingError::QueueFull { id: shed_id }) => {
                    prop_assert_eq!(shed_id, id);
                    prop_assert_eq!(mem(&engine), before,
                        "a shed submit must not touch KV or prefix bytes");
                    sheds += 1;
                }
                Err(e) => prop_assert!(false, "unexpected submit error: {e}"),
            }
            // Occasionally let the engine work the queue down so later
            // submits land in a partially drained engine.
            if rng.random_range(0..3) == 0 {
                engine.step();
            }
        }
        let responses = engine.run_to_completion();
        prop_assert_eq!(engine.kv_bytes_in_use(), 0, "all KV released");
        prop_assert_eq!(engine.stats().shed, sheds);
        prop_assert_eq!(responses.len(), admitted.len());

        // Survivors decode bit-identically to an engine that never
        // experienced the overload.
        let mut control = ContinuousBatcher::new(q, EngineConfig {
            prefix_cache_bytes: 1 << 16,
            ..EngineConfig::with_max_batch(max_batch)
        }).unwrap();
        for (id, src) in &admitted {
            control.submit(Request::new(*id, src.clone(), max_new)).unwrap();
        }
        let want = control.run_to_completion();
        for (got, want) in responses.iter().zip(&want) {
            prop_assert_eq!(got.id, want.id);
            prop_assert_eq!(&got.tokens, &want.tokens, "id {}", got.id);
            prop_assert_eq!(got.finish, want.finish);
        }
    }

    /// Cancelling — queued or mid-flight — never grows engine memory,
    /// never touches the prefix cache, and leaves the survivors'
    /// decode bit-identical. Queued cancels are exact no-ops on KV.
    #[test]
    fn cancelled_requests_release_kv_and_never_perturb_survivors(
        seed in 0u64..10_000,
        n in 5usize..=10,
        max_batch in 1usize..=3,
        steps_before_cancel in 0usize..6,
        max_new in 4usize..=8,
    ) {
        let q = model();
        let srcs = sources();
        let mut rng = StdRng::seed_from_u64(seed);

        let mut engine = ContinuousBatcher::new(q, EngineConfig {
            prefix_cache_bytes: 1 << 16,
            ..EngineConfig::with_max_batch(max_batch)
        }).unwrap();

        let picked: Vec<Vec<usize>> =
            (0..n).map(|_| srcs[rng.random_range(0..srcs.len())].clone()).collect();
        for (id, src) in picked.iter().enumerate() {
            engine.submit(Request::new(id as u64, src.clone(), max_new)).unwrap();
        }
        for _ in 0..steps_before_cancel {
            engine.step();
        }

        // Cancel a random subset (a "mass disconnect").
        let mut cancelled = Vec::new();
        for id in 0..n as u64 {
            if rng.random_range(0..3) != 0 {
                continue;
            }
            let was_queued = engine.pending_len() > 0
                && (engine.active_len() as u64) <= id; // heuristic only for reporting
            let before = mem(&engine);
            let did = engine.cancel(id);
            let after = mem(&engine);
            prop_assert_eq!(after.1, before.1, "cancel must not touch the prefix cache");
            prop_assert!(after.0 <= before.0,
                "cancel can only release KV (was_queued={was_queued}, did={did})");
            if did {
                cancelled.push(id);
            }
        }
        let responses = engine.run_to_completion();
        prop_assert_eq!(engine.kv_bytes_in_use(), 0);
        prop_assert_eq!(engine.stats().cancelled, cancelled.len());
        prop_assert_eq!(responses.len(), n - cancelled.len(),
            "cancelled requests yield no response");

        let mut control = ContinuousBatcher::new(q, EngineConfig {
            prefix_cache_bytes: 1 << 16,
            ..EngineConfig::with_max_batch(max_batch)
        }).unwrap();
        for (id, src) in picked.iter().enumerate() {
            if !cancelled.contains(&(id as u64)) {
                control.submit(Request::new(id as u64, src.clone(), max_new)).unwrap();
            }
        }
        let want = control.run_to_completion();
        for (got, want) in responses.iter().zip(&want) {
            prop_assert_eq!(got.id, want.id);
            prop_assert_eq!(&got.tokens, &want.tokens, "id {}", got.id);
        }
    }

    /// Wall-deadline expiry in the queue retires requests with zero
    /// tokens and zero memory footprint; survivors are unperturbed.
    #[test]
    fn queue_expiry_is_memory_free_and_survivors_match(
        seed in 0u64..10_000,
        n in 4usize..=8,
        max_new in 3usize..=6,
    ) {
        let q = model();
        let srcs = sources();
        let mut rng = StdRng::seed_from_u64(seed);

        // One slot: everything behind the head waits in the queue.
        let mut engine = ContinuousBatcher::new(q, EngineConfig {
            prefix_cache_bytes: 1 << 16,
            ..EngineConfig::with_max_batch(1)
        }).unwrap();

        let mut doomed = Vec::new();
        for id in 0..n as u64 {
            let src = srcs[rng.random_range(0..srcs.len())].clone();
            // Every request except the first gets an already-elapsed
            // wall deadline (0 ms): expired the moment it is examined.
            let mut req = Request::new(id, src.clone(), max_new);
            if id != 0 && rng.random_range(0..2) == 0 {
                req = req.with_deadline_ms(0);
                doomed.push(id);
            }
            engine.submit(req).unwrap();
        }
        let responses = engine.run_to_completion();
        prop_assert_eq!(engine.kv_bytes_in_use(), 0);
        prop_assert_eq!(responses.len(), n);
        for r in &responses {
            if doomed.contains(&r.id) {
                prop_assert_eq!(r.finish, FinishReason::Deadline, "id {}", r.id);
                prop_assert!(r.tokens.is_empty(), "expired-in-queue yields no tokens");
                prop_assert_eq!(r.first_token_step, None);
            } else {
                prop_assert_ne!(r.finish, FinishReason::Deadline, "id {}", r.id);
            }
        }
        prop_assert_eq!(engine.stats().expired_in_queue, doomed.len());

        // Survivors decode exactly as if the doomed never existed.
        let mut control = ContinuousBatcher::new(q, EngineConfig {
            prefix_cache_bytes: 1 << 16,
            ..EngineConfig::with_max_batch(1)
        }).unwrap();
        // Rebuild survivor requests deterministically from the same seed.
        let mut rng2 = StdRng::seed_from_u64(seed);
        for id in 0..n as u64 {
            let src = srcs[rng2.random_range(0..srcs.len())].clone();
            let is_doomed = if id != 0 { rng2.random_range(0..2) == 0 } else { false };
            if doomed.contains(&id) {
                continue;
            }
            // Keep rng2 in lockstep with the generation loop above.
            let _ = is_doomed;
            control.submit(Request::new(id, src, max_new)).unwrap();
        }
        let want = control.run_to_completion();
        let survivors: Vec<_> = responses.iter().filter(|r| !doomed.contains(&r.id)).collect();
        prop_assert_eq!(survivors.len(), want.len());
        for (got, want) in survivors.iter().zip(&want) {
            prop_assert_eq!(got.id, want.id);
            prop_assert_eq!(&got.tokens, &want.tokens, "id {}", got.id);
            prop_assert_ne!(want.finish, FinishReason::Deadline);
        }
    }
}
