//! Property test: continuous batching is bit-identical to sequential
//! decoding — for every request, regardless of arrival order, slot
//! count, per-request budget, or which other requests shared its steps.
//! The engine's outputs are compared against BOTH the single-session
//! incremental path (`greedy_decode_incremental`) and the full-prefix
//! recompute path (`greedy_decode`), so a drift in either KV caching or
//! batching would fail here.

use std::sync::OnceLock;

use proptest::prelude::*;
use quantized::{QuantSeq2Seq, SoftmaxMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serving::{ContinuousBatcher, EngineConfig, Request};
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen, BOS, EOS};

fn model() -> &'static QuantSeq2Seq {
    static MODEL: OnceLock<QuantSeq2Seq> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(0x5E41);
        let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 2, 9);
        let corpus = gen.corpus(16, &mut StdRng::seed_from_u64(0x5E42));
        QuantSeq2Seq::from_trained(&fp32, &corpus, SoftmaxMode::Hardware)
    })
}

/// A pool of sources with deliberately mixed lengths (2..=9 tokens).
fn sources() -> &'static Vec<Vec<usize>> {
    static SRCS: OnceLock<Vec<Vec<usize>>> = OnceLock::new();
    SRCS.get_or_init(|| {
        let cfg = ModelConfig::tiny_for_tests();
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 2, 9);
        gen.corpus(12, &mut StdRng::seed_from_u64(0x5E43))
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn continuous_decode_is_bit_identical_to_sequential(
        order_seed in 0u64..10_000,
        n in 3usize..=10,
        max_batch in 1usize..=5,
        waste_pick in 0usize..3,
        max_new in 4usize..=10,
    ) {
        let q = model();
        let srcs = sources();
        let max_waste = [0usize, 4, usize::MAX][waste_pick];

        // Random arrival order over a random prefix of the pool
        // (Fisher–Yates; the vendored rand has no `seq` module).
        let mut rng = StdRng::seed_from_u64(order_seed);
        let mut picks: Vec<usize> = (0..srcs.len()).collect();
        for i in (1..picks.len()).rev() {
            picks.swap(i, rng.random_range(0..=i));
        }
        picks.truncate(n);

        let mut engine = ContinuousBatcher::new(
            q,
            EngineConfig {
                max_batch,
                bucket_max_waste: max_waste,
                ..EngineConfig::default()
            },
        ).unwrap();
        for (id, &s) in picks.iter().enumerate() {
            engine.submit(Request::new(id as u64, srcs[s].clone(), max_new)).unwrap();
        }
        let responses = engine.run_to_completion();
        prop_assert_eq!(responses.len(), picks.len());

        // Responses come back sorted by id, and ids were assigned in
        // submit order, so zipping against `picks` pairs each response
        // with its own source.
        for (i, (resp, &s)) in responses.iter().zip(&picks).enumerate() {
            prop_assert_eq!(resp.id, i as u64);
            let incremental = q.greedy_decode_incremental(&srcs[s], max_new);
            let full_prefix = q.greedy_decode(&srcs[s], BOS, EOS, max_new);
            prop_assert_eq!(
                &resp.tokens, &incremental,
                "id {} diverged from the incremental path", resp.id
            );
            prop_assert_eq!(
                &resp.tokens, &full_prefix,
                "id {} diverged from the full-prefix path", resp.id
            );
        }
    }
}
