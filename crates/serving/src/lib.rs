//! Continuous-batching inference over the INT8 KV-cached decoder.
//!
//! The paper's accelerator cuts per-block latency; this layer keeps the
//! array busy across *requests*. A [`ContinuousBatcher`] owns a fixed
//! number of decode **slots**. Waiting requests queue up, are admitted in
//! length-sorted buckets ([`PaddedBatch::buckets`]), and every
//! [`ContinuousBatcher::step`] advances *all* in-flight sessions together
//! through one batched layer pass
//! ([`QuantSeq2Seq::step_sessions`]) — one multi-row GEMM per weight
//! matrix per step instead of one GEMM per request per layer. A request
//! that emits `EOS` (or exhausts its token budget) retires its slot and
//! the queue refills it on the next step, so the batch never drains just
//! because one sentence finished early.
//!
//! **Bit-identity guarantee:** the batched datapath is row-independent,
//! so every response is bit-identical to decoding that request alone
//! with [`QuantSeq2Seq::greedy_decode_incremental`] — regardless of
//! batch size, arrival order, or which requests it shared steps with.
//! Tests (including a property test over random arrival orders) assert
//! this.
//!
//! For multi-instance deployments, [`run_sharded`] fans length buckets
//! out across `N` engine instances on scoped threads (`tensor::par`),
//! each running its own continuous batcher over the shared model.
//!
//! Under the hood every decode step runs the shared cached-KV operator
//! graph (`graph::mha_cached_graph`) through the `Executor` seam:
//! [`QuantSeq2Seq::step_sessions`] drives `quantized::QuantRowExec`
//! over one stacked row per slot, so this layer is a *consumer* of the
//! executor abstraction rather than a fifth hand-written forward path —
//! swapping in another `graph::Executor` backend would not change any
//! scheduling logic here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use quantized::incremental::QuantIncrementalSession;
use quantized::QuantSeq2Seq;
use transformer::batching::PaddedBatch;
use transformer::tasks::{BOS, EOS};

/// One translation/generation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier; responses are returned sorted by it.
    pub id: u64,
    /// Source-token sentence (must be non-empty).
    pub src: Vec<usize>,
    /// Maximum number of tokens to generate.
    pub max_new_tokens: usize,
}

/// A finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's identifier.
    pub id: u64,
    /// Generated tokens (no BOS; no EOS unless EOS is being ignored).
    pub tokens: Vec<usize>,
    /// Whether decoding stopped on `EOS` (as opposed to the budget).
    pub hit_eos: bool,
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of decode slots — the maximum rows stacked per step.
    pub max_batch: usize,
    /// Padding-waste budget handed to [`PaddedBatch::buckets`] during
    /// admission and sharding.
    pub bucket_max_waste: usize,
    /// When `true`, `EOS` neither stops a request nor is stripped from
    /// its output: every request generates exactly `max_new_tokens`
    /// tokens. Benchmarks use this so each batch size does identical
    /// work.
    pub ignore_eos: bool,
}

impl EngineConfig {
    /// A config with `max_batch` slots and default policies.
    pub fn with_max_batch(max_batch: usize) -> Self {
        Self {
            max_batch,
            bucket_max_waste: 4,
            ignore_eos: false,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::with_max_batch(16)
    }
}

/// Counters accumulated across an engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Batched decode steps executed.
    pub steps: usize,
    /// Total active rows summed over all steps (`≤ steps · max_batch`).
    pub rows: usize,
    /// Tokens appended to responses.
    pub tokens_generated: usize,
    /// Largest number of rows any single step carried.
    pub peak_batch: usize,
    /// Requests admitted into slots.
    pub admitted: usize,
    /// Requests retired (EOS or budget).
    pub retired: usize,
}

impl ServingStats {
    /// Mean slot occupancy: the fraction of the engine's row capacity
    /// that carried real requests, `rows / (steps · max_batch)`. This is
    /// the serving-level analogue of array utilization — idle slots are
    /// idle array rows.
    pub fn occupancy(&self, max_batch: usize) -> f64 {
        if self.steps == 0 || max_batch == 0 {
            return 0.0;
        }
        self.rows as f64 / (self.steps * max_batch) as f64
    }

    /// Accumulates another engine's counters (used to roll up shards).
    pub fn merge(&mut self, other: &ServingStats) {
        self.steps += other.steps;
        self.rows += other.rows;
        self.tokens_generated += other.tokens_generated;
        self.peak_batch = self.peak_batch.max(other.peak_batch);
        self.admitted += other.admitted;
        self.retired += other.retired;
    }
}

/// An in-flight request occupying a decode slot.
#[derive(Debug, Clone)]
struct Slot {
    id: u64,
    session: QuantIncrementalSession,
    next_token: usize,
    out: Vec<usize>,
    budget: usize,
}

/// The continuous-batching engine (one model instance).
#[derive(Debug)]
pub struct ContinuousBatcher<'m> {
    model: &'m QuantSeq2Seq,
    cfg: EngineConfig,
    pending: VecDeque<Request>,
    slots: Vec<Option<Slot>>,
    finished: Vec<Response>,
    stats: ServingStats,
}

impl<'m> ContinuousBatcher<'m> {
    /// Creates an engine with `cfg.max_batch` empty slots.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch == 0`.
    pub fn new(model: &'m QuantSeq2Seq, cfg: EngineConfig) -> Self {
        assert!(cfg.max_batch > 0, "need at least one decode slot");
        Self {
            model,
            cfg,
            pending: VecDeque::new(),
            slots: (0..cfg.max_batch).map(|_| None).collect(),
            finished: Vec::new(),
            stats: ServingStats::default(),
        }
    }

    /// Queues a request (it enters a slot at the next refill).
    ///
    /// # Panics
    ///
    /// Panics if the source sentence is empty.
    pub fn submit(&mut self, req: Request) {
        assert!(!req.src.is_empty(), "source must be non-empty");
        if req.max_new_tokens == 0 {
            // Nothing to generate; finish without occupying a slot.
            self.finished.push(Response {
                id: req.id,
                tokens: Vec::new(),
                hit_eos: false,
            });
            return;
        }
        self.pending.push_back(req);
    }

    /// Requests waiting for a slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Requests currently holding a slot.
    pub fn active_len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// The engine's lifetime counters so far.
    pub fn stats(&self) -> ServingStats {
        self.stats
    }

    /// Length-bucketed admission: fills free slots from the queue,
    /// admitting the bucket containing the oldest waiting request first
    /// (so similar-length prefills land together and no request starves).
    fn refill(&mut self) {
        while self.pending.front().is_some() {
            let free: Vec<usize> = (0..self.slots.len())
                .filter(|&i| self.slots[i].is_none())
                .collect();
            if free.is_empty() {
                return;
            }
            let seqs: Vec<Vec<usize>> = self.pending.iter().map(|r| r.src.clone()).collect();
            let buckets = PaddedBatch::buckets(&seqs, self.cfg.bucket_max_waste);
            let oldest_bucket = buckets
                .iter()
                .find(|b| b.indices.contains(&0))
                .expect("queue position 0 is in some bucket");
            // Admit the bucket's members in arrival (queue) order,
            // bounded by the free slots. Positions are removed ascending,
            // so each removal shifts the later ones left by one.
            let whole_bucket = oldest_bucket.indices.len() <= free.len();
            let mut queue_positions: Vec<usize> = oldest_bucket.indices.clone();
            queue_positions.sort_unstable();
            queue_positions.truncate(free.len());
            for (removed, (slot_i, qpos)) in free.iter().zip(queue_positions).enumerate() {
                let req = self
                    .pending
                    .remove(qpos - removed)
                    .expect("position in range");
                self.slots[*slot_i] = Some(Slot {
                    id: req.id,
                    session: self.model.start_session(&req.src),
                    next_token: BOS,
                    out: Vec::new(),
                    budget: req.max_new_tokens,
                });
                self.stats.admitted += 1;
            }
            if whole_bucket {
                continue; // whole bucket admitted; maybe room for another
            }
            return; // slots exhausted mid-bucket
        }
    }

    /// Advances every in-flight session by one token (admitting queued
    /// requests into free slots first). Returns `false` when queue and
    /// slots are both empty — i.e. there is nothing left to do.
    pub fn step(&mut self) -> bool {
        self.refill();
        let mut active: Vec<(usize, &mut Slot)> = self
            .slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|s| (i, s)))
            .collect();
        if active.is_empty() {
            return false;
        }
        let tokens: Vec<usize> = active.iter().map(|(_, s)| s.next_token).collect();
        let mut sessions: Vec<&mut QuantIncrementalSession> =
            active.iter_mut().map(|(_, s)| &mut s.session).collect();
        let logits = self.model.step_sessions(&mut sessions, &tokens);
        drop(sessions);
        let b = active.len();
        let mut retire: Vec<usize> = Vec::new();
        for ((slot_i, slot), row) in active.iter_mut().zip(&logits) {
            let next = tensor::ops::argmax(row);
            if next == EOS && !self.cfg.ignore_eos {
                retire.push(*slot_i);
                continue;
            }
            slot.out.push(next);
            slot.next_token = next;
            self.stats.tokens_generated += 1;
            if slot.out.len() >= slot.budget {
                retire.push(*slot_i);
            }
        }
        drop(active);
        for i in retire {
            let slot = self.slots[i].take().expect("retiring an occupied slot");
            let hit_eos = slot.out.len() < slot.budget;
            self.finished.push(Response {
                id: slot.id,
                tokens: slot.out,
                hit_eos,
            });
            self.stats.retired += 1;
        }
        self.stats.steps += 1;
        self.stats.rows += b;
        self.stats.peak_batch = self.stats.peak_batch.max(b);
        true
    }

    /// Steps until every submitted request has finished, then returns
    /// the responses sorted by request id.
    pub fn run_to_completion(&mut self) -> Vec<Response> {
        while self.step() {}
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|r| r.id);
        out
    }
}

/// Runs `requests` across `shards` engine instances on scoped threads:
/// requests are length-bucketed ([`PaddedBatch::buckets`]), buckets are
/// dealt to the least-loaded shard (by total member count), and each
/// shard runs its own [`ContinuousBatcher`] over the shared model.
/// Responses are bit-identical to a single engine (and to sequential
/// decoding) and are returned sorted by id, alongside each shard's
/// counters.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn run_sharded(
    model: &QuantSeq2Seq,
    cfg: EngineConfig,
    requests: Vec<Request>,
    shards: usize,
) -> (Vec<Response>, Vec<ServingStats>) {
    assert!(shards > 0, "need at least one shard");
    if requests.is_empty() {
        return (Vec::new(), vec![ServingStats::default(); shards]);
    }
    let seqs: Vec<Vec<usize>> = requests.iter().map(|r| r.src.clone()).collect();
    let buckets = PaddedBatch::buckets(&seqs, cfg.bucket_max_waste);
    let mut workloads: Vec<Vec<Request>> = (0..shards).map(|_| Vec::new()).collect();
    for bucket in &buckets {
        let lightest = (0..shards)
            .min_by_key(|&s| workloads[s].len())
            .expect("at least one shard");
        for &i in &bucket.indices {
            workloads[lightest].push(requests[i].clone());
        }
    }
    let results = tensor::par::map_with_threads(&workloads, shards, |reqs| {
        let mut engine = ContinuousBatcher::new(model, cfg);
        for r in reqs {
            engine.submit(r.clone());
        }
        (engine.run_to_completion(), engine.stats())
    });
    let mut responses = Vec::with_capacity(requests.len());
    let mut stats = Vec::with_capacity(shards);
    for (r, s) in results {
        responses.extend(r);
        stats.push(s);
    }
    responses.sort_by_key(|r| r.id);
    (responses, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::model::Seq2SeqTransformer;
    use transformer::tasks::{Task, TaskGen};

    fn setup(n: usize) -> (QuantSeq2Seq, Vec<Vec<usize>>) {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(91);
        let model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
        let corpus = gen.corpus(n, &mut StdRng::seed_from_u64(92));
        let srcs = corpus.iter().map(|(s, _)| s.clone()).collect();
        (
            QuantSeq2Seq::from_trained(&model, &corpus, quantized::SoftmaxMode::Hardware),
            srcs,
        )
    }

    fn requests(srcs: &[Vec<usize>], max_new: usize) -> Vec<Request> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Request {
                id: i as u64,
                src: s.clone(),
                max_new_tokens: max_new,
            })
            .collect()
    }

    #[test]
    fn continuous_batch_matches_sequential_greedy() {
        let (q, srcs) = setup(6);
        for max_batch in [1usize, 2, 4, 16] {
            let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(max_batch));
            for r in requests(&srcs, 8) {
                engine.submit(r);
            }
            let responses = engine.run_to_completion();
            assert_eq!(responses.len(), srcs.len());
            for (resp, src) in responses.iter().zip(&srcs) {
                let want = q.greedy_decode_incremental(src, 8);
                assert_eq!(resp.tokens, want, "batch {max_batch}, id {}", resp.id);
            }
        }
    }

    #[test]
    fn slots_are_refilled_after_retirement() {
        let (q, srcs) = setup(6);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(2));
        for r in requests(&srcs, 8) {
            engine.submit(r);
        }
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 6);
        let stats = engine.stats();
        assert_eq!(stats.admitted, 6);
        assert_eq!(stats.retired, 6);
        assert!(stats.peak_batch <= 2);
        // 6 requests through 2 slots requires several waves of admission.
        assert!(stats.steps >= 3, "steps {}", stats.steps);
        assert!(stats.occupancy(2) > 0.0);
    }

    #[test]
    fn ignore_eos_generates_exactly_the_budget() {
        let (q, srcs) = setup(3);
        let mut cfg = EngineConfig::with_max_batch(4);
        cfg.ignore_eos = true;
        let mut engine = ContinuousBatcher::new(&q, cfg);
        for r in requests(&srcs, 5) {
            engine.submit(r);
        }
        for resp in engine.run_to_completion() {
            assert_eq!(resp.tokens.len(), 5);
            assert!(!resp.hit_eos);
        }
    }

    #[test]
    fn zero_budget_requests_finish_immediately() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::default());
        engine.submit(Request {
            id: 7,
            src: srcs[0].clone(),
            max_new_tokens: 0,
        });
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].tokens.is_empty());
        assert_eq!(engine.stats().steps, 0);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_single_engine() {
        let (q, srcs) = setup(8);
        let cfg = EngineConfig::with_max_batch(4);
        let mut single = ContinuousBatcher::new(&q, cfg);
        for r in requests(&srcs, 8) {
            single.submit(r);
        }
        let want = single.run_to_completion();
        for shards in [1usize, 2, 3, 8] {
            let (got, stats) = run_sharded(&q, cfg, requests(&srcs, 8), shards);
            assert_eq!(got, want, "shards {shards}");
            assert_eq!(stats.len(), shards);
            let mut total = ServingStats::default();
            for s in &stats {
                total.merge(s);
            }
            assert_eq!(total.retired, srcs.len());
        }
    }

    #[test]
    #[should_panic(expected = "at least one decode slot")]
    fn zero_slots_rejected() {
        let (q, _) = setup(2);
        let _ = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_source_rejected() {
        let (q, _) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::default());
        engine.submit(Request {
            id: 0,
            src: vec![],
            max_new_tokens: 4,
        });
    }
}
