//! Continuous-batching inference over the INT8 KV-cached decoder.
//!
//! The paper's accelerator cuts per-block latency; this layer keeps the
//! array busy across *requests*. A [`ContinuousBatcher`] owns a fixed
//! number of decode **slots**. Waiting requests queue up, are admitted in
//! length-sorted buckets ([`PaddedBatch::buckets`]), and every
//! [`ContinuousBatcher::step`] advances *all* in-flight sessions together
//! through one batched layer pass
//! ([`QuantSeq2Seq::step_sessions`]) — one multi-row GEMM per weight
//! matrix per step instead of one GEMM per request per layer. A request
//! that emits `EOS` (or exhausts its token budget) retires its slot and
//! the queue refills it on the next step, so the batch never drains just
//! because one sentence finished early.
//!
//! **Bit-identity guarantee:** the batched datapath is row-independent,
//! so every response is bit-identical to decoding that request alone
//! with [`QuantSeq2Seq::greedy_decode_incremental`] — regardless of
//! batch size, arrival order, or which requests it shared steps with.
//! Tests (including a property test over random arrival orders) assert
//! this.
//!
//! **Graceful degradation:** invalid inputs return typed
//! [`ServingError`]s instead of panicking. When the `faults` crate's
//! ABFT checker is live ([`faults::checker_enabled`]), every batched
//! step is bracketed by the process-wide detection counter: a
//! checker-flagged step is rolled back
//! ([`QuantIncrementalSession::rollback_step`]) and recomputed up to
//! [`EngineConfig::max_step_retries`] times — a transient upset fires
//! once per GEMM-pass index, so the replay is clean and the affected
//! request still completes bit-identically. Steps that stay flagged
//! after all retries charge every slot that shared them; a slot charged
//! [`EngineConfig::quarantine_after`] times is **quarantined** (its
//! occupant retires degraded and the slot never refills). Per-request
//! **deadlines** ([`Request::deadline_steps`] /
//! [`EngineConfig::deadline_steps`]) bound how many engine steps a
//! request may hold a slot. For multi-instance deployments,
//! [`run_sharded`] fans length buckets out across `N` engine instances
//! on scoped threads (`tensor::par`), and a panicking shard is isolated:
//! its requests are reported in [`ShardedRun::failures`] while every
//! other shard's responses come back unaffected.
//!
//! Under the hood every decode step runs the shared cached-KV operator
//! graph (`graph::mha_cached_graph`) through the `Executor` seam:
//! [`QuantSeq2Seq::step_sessions`] drives `quantized::QuantRowExec`
//! over one stacked row per slot, so this layer is a *consumer* of the
//! executor abstraction rather than a fifth hand-written forward path —
//! swapping in another `graph::Executor` backend would not change any
//! scheduling logic here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use quantized::incremental::QuantIncrementalSession;
use quantized::QuantSeq2Seq;
use transformer::batching::PaddedBatch;
use transformer::tasks::{BOS, EOS};

/// Why the serving layer rejected an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// `EngineConfig::max_batch` was zero.
    ZeroSlots,
    /// `run_sharded` was asked for zero shards.
    ZeroShards,
    /// A request's source sentence was empty.
    EmptySource {
        /// The offending request's id.
        id: u64,
    },
    /// A request reused an id this engine has already accepted.
    DuplicateId {
        /// The reused id.
        id: u64,
    },
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::ZeroSlots => write!(f, "need at least one decode slot"),
            ServingError::ZeroShards => write!(f, "need at least one shard"),
            ServingError::EmptySource { id } => {
                write!(f, "request {id}: source must be non-empty")
            }
            ServingError::DuplicateId { id } => {
                write!(f, "request id {id} already submitted")
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// One translation/generation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier; responses are returned sorted by it.
    /// Must be unique within an engine's lifetime.
    pub id: u64,
    /// Source-token sentence (must be non-empty).
    pub src: Vec<usize>,
    /// Maximum number of tokens to generate.
    pub max_new_tokens: usize,
    /// Optional per-request deadline: the maximum number of engine steps
    /// this request may hold a slot (overrides
    /// [`EngineConfig::deadline_steps`]). A request cut off by its
    /// deadline retires with the tokens generated so far and
    /// `hit_eos == false`.
    pub deadline_steps: Option<usize>,
}

impl Request {
    /// A request with no per-request deadline.
    pub fn new(id: u64, src: Vec<usize>, max_new_tokens: usize) -> Self {
        Self {
            id,
            src,
            max_new_tokens,
            deadline_steps: None,
        }
    }
}

/// A finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's identifier.
    pub id: u64,
    /// Generated tokens (no BOS; no EOS unless EOS is being ignored).
    pub tokens: Vec<usize>,
    /// Whether decoding stopped on `EOS` (as opposed to the budget, a
    /// deadline, or slot quarantine).
    pub hit_eos: bool,
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of decode slots — the maximum rows stacked per step.
    pub max_batch: usize,
    /// Padding-waste budget handed to [`PaddedBatch::buckets`] during
    /// admission and sharding.
    pub bucket_max_waste: usize,
    /// When `true`, `EOS` neither stops a request nor is stripped from
    /// its output: every request generates exactly `max_new_tokens`
    /// tokens. Benchmarks use this so each batch size does identical
    /// work.
    pub ignore_eos: bool,
    /// Default per-request deadline in engine steps (`None` = no
    /// deadline). [`Request::deadline_steps`] overrides this per
    /// request.
    pub deadline_steps: Option<usize>,
    /// How many times a checker-flagged step is rolled back and
    /// recomputed before its output is accepted as-is and the slots
    /// involved are charged with a persistent fault.
    pub max_step_retries: usize,
    /// Quarantine a slot after this many persistent-fault charges
    /// (`0` disables quarantine). A quarantined slot evicts its
    /// occupant (degraded response, `hit_eos == false`) and never
    /// admits another request.
    pub quarantine_after: usize,
}

impl EngineConfig {
    /// A config with `max_batch` slots and default policies.
    pub fn with_max_batch(max_batch: usize) -> Self {
        Self {
            max_batch,
            bucket_max_waste: 4,
            ignore_eos: false,
            deadline_steps: None,
            max_step_retries: 2,
            quarantine_after: 2,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::with_max_batch(16)
    }
}

/// Counters accumulated across an engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Batched decode steps executed.
    pub steps: usize,
    /// Total active rows summed over all steps (`≤ steps · max_batch`).
    pub rows: usize,
    /// Tokens appended to responses.
    pub tokens_generated: usize,
    /// Largest number of rows any single step carried.
    pub peak_batch: usize,
    /// Requests admitted into slots.
    pub admitted: usize,
    /// Requests retired (EOS, budget, deadline, or quarantine).
    pub retired: usize,
    /// Steps the ABFT checker flagged (counting each failed attempt).
    pub faulty_steps: usize,
    /// Rollback-and-recompute retries performed.
    pub retries: usize,
    /// Slots quarantined after repeated persistent faults.
    pub quarantined: usize,
    /// Requests cut off by a deadline.
    pub deadline_expired: usize,
}

impl ServingStats {
    /// Mean slot occupancy: the fraction of the engine's row capacity
    /// that carried real requests, `rows / (steps · max_batch)`. This is
    /// the serving-level analogue of array utilization — idle slots are
    /// idle array rows.
    pub fn occupancy(&self, max_batch: usize) -> f64 {
        if self.steps == 0 || max_batch == 0 {
            return 0.0;
        }
        self.rows as f64 / (self.steps * max_batch) as f64
    }

    /// Accumulates another engine's counters (used to roll up shards).
    pub fn merge(&mut self, other: &ServingStats) {
        self.steps += other.steps;
        self.rows += other.rows;
        self.tokens_generated += other.tokens_generated;
        self.peak_batch = self.peak_batch.max(other.peak_batch);
        self.admitted += other.admitted;
        self.retired += other.retired;
        self.faulty_steps += other.faulty_steps;
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.deadline_expired += other.deadline_expired;
    }
}

/// An in-flight request occupying a decode slot.
#[derive(Debug, Clone)]
struct Slot {
    id: u64,
    session: QuantIncrementalSession,
    next_token: usize,
    out: Vec<usize>,
    budget: usize,
    /// Engine steps this request has participated in.
    age: usize,
    /// Effective deadline (request override, else config default).
    deadline: Option<usize>,
}

/// Why a slot retired this step.
enum Retire {
    Eos,
    Budget,
    Deadline,
}

/// The continuous-batching engine (one model instance).
#[derive(Debug)]
pub struct ContinuousBatcher<'m> {
    model: &'m QuantSeq2Seq,
    cfg: EngineConfig,
    pending: VecDeque<Request>,
    slots: Vec<Option<Slot>>,
    /// Slots withdrawn from service after repeated persistent faults.
    quarantined: Vec<bool>,
    /// Persistent-fault charges per slot index.
    slot_faults: Vec<usize>,
    /// Every id this engine has ever accepted (duplicate rejection).
    seen_ids: HashSet<u64>,
    finished: Vec<Response>,
    stats: ServingStats,
}

impl<'m> ContinuousBatcher<'m> {
    /// Creates an engine with `cfg.max_batch` empty slots.
    ///
    /// # Errors
    ///
    /// [`ServingError::ZeroSlots`] if `cfg.max_batch == 0`.
    pub fn new(model: &'m QuantSeq2Seq, cfg: EngineConfig) -> Result<Self, ServingError> {
        if cfg.max_batch == 0 {
            return Err(ServingError::ZeroSlots);
        }
        Ok(Self {
            model,
            cfg,
            pending: VecDeque::new(),
            slots: (0..cfg.max_batch).map(|_| None).collect(),
            quarantined: vec![false; cfg.max_batch],
            slot_faults: vec![0; cfg.max_batch],
            seen_ids: HashSet::new(),
            finished: Vec::new(),
            stats: ServingStats::default(),
        })
    }

    /// Queues a request (it enters a slot at the next refill).
    ///
    /// # Errors
    ///
    /// [`ServingError::EmptySource`] if the source sentence is empty,
    /// [`ServingError::DuplicateId`] if the id was already accepted.
    pub fn submit(&mut self, req: Request) -> Result<(), ServingError> {
        if req.src.is_empty() {
            return Err(ServingError::EmptySource { id: req.id });
        }
        if !self.seen_ids.insert(req.id) {
            return Err(ServingError::DuplicateId { id: req.id });
        }
        if req.max_new_tokens == 0 {
            // Nothing to generate; finish without occupying a slot.
            self.finished.push(Response {
                id: req.id,
                tokens: Vec::new(),
                hit_eos: false,
            });
            return Ok(());
        }
        self.pending.push_back(req);
        Ok(())
    }

    /// Requests waiting for a slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Requests currently holding a slot.
    pub fn active_len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Slots withdrawn from service after repeated persistent faults.
    pub fn quarantined_len(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    /// The engine's lifetime counters so far.
    pub fn stats(&self) -> ServingStats {
        self.stats
    }

    /// Length-bucketed admission: fills free (non-quarantined) slots
    /// from the queue, admitting the bucket containing the oldest
    /// waiting request first (so similar-length prefills land together
    /// and no request starves).
    fn refill(&mut self) {
        while self.pending.front().is_some() {
            let free: Vec<usize> = (0..self.slots.len())
                .filter(|&i| self.slots[i].is_none() && !self.quarantined[i])
                .collect();
            if free.is_empty() {
                return;
            }
            let seqs: Vec<Vec<usize>> = self.pending.iter().map(|r| r.src.clone()).collect();
            let buckets = PaddedBatch::buckets(&seqs, self.cfg.bucket_max_waste);
            let oldest_bucket = buckets
                .iter()
                .find(|b| b.indices.contains(&0))
                .expect("queue position 0 is in some bucket");
            // Admit the bucket's members in arrival (queue) order,
            // bounded by the free slots. Positions are removed ascending,
            // so each removal shifts the later ones left by one.
            let whole_bucket = oldest_bucket.indices.len() <= free.len();
            let mut queue_positions: Vec<usize> = oldest_bucket.indices.clone();
            queue_positions.sort_unstable();
            queue_positions.truncate(free.len());
            for (removed, (slot_i, qpos)) in free.iter().zip(queue_positions).enumerate() {
                let req = self
                    .pending
                    .remove(qpos - removed)
                    .expect("position in range");
                self.slots[*slot_i] = Some(Slot {
                    id: req.id,
                    session: self.model.start_session(&req.src),
                    next_token: BOS,
                    out: Vec::new(),
                    budget: req.max_new_tokens,
                    age: 0,
                    deadline: req.deadline_steps.or(self.cfg.deadline_steps),
                });
                self.stats.admitted += 1;
            }
            if whole_bucket {
                continue; // whole bucket admitted; maybe room for another
            }
            return; // slots exhausted mid-bucket
        }
    }

    /// Advances every in-flight session by one token (admitting queued
    /// requests into free slots first). Returns `false` when there is
    /// nothing left to do — queue and slots are both empty, or every
    /// remaining slot is quarantined (check
    /// [`ContinuousBatcher::pending_len`] for stranded requests).
    ///
    /// When the ABFT checker is live, a step that raises the
    /// process-wide detection counter is rolled back and recomputed (up
    /// to `max_step_retries` times); the transient-upset replay is
    /// bit-identical to a fault-free step, so detected faults are
    /// invisible in the output stream.
    pub fn step(&mut self) -> bool {
        self.refill();
        let mut active: Vec<(usize, &mut Slot)> = self
            .slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|s| (i, s)))
            .collect();
        if active.is_empty() {
            return false;
        }
        let tokens: Vec<usize> = active.iter().map(|(_, s)| s.next_token).collect();
        let verify = faults::hooks_active() && faults::checker_enabled();
        let mut persistent_fault = false;
        let logits = if verify {
            let mut attempt = 0;
            loop {
                let before = faults::counters().detected;
                let mut sessions: Vec<&mut QuantIncrementalSession> =
                    active.iter_mut().map(|(_, s)| &mut s.session).collect();
                let logits = self.model.step_sessions(&mut sessions, &tokens);
                if faults::counters().detected == before {
                    break logits;
                }
                self.stats.faulty_steps += 1;
                if attempt >= self.cfg.max_step_retries {
                    // Still flagged after every retry: accept the output
                    // (better degraded than lost) and charge the slots.
                    persistent_fault = true;
                    break logits;
                }
                attempt += 1;
                self.stats.retries += 1;
                // step_sessions advanced every session exactly one row;
                // rewind them all and replay the step.
                for (_, slot) in active.iter_mut() {
                    slot.session.rollback_step();
                }
            }
        } else {
            let mut sessions: Vec<&mut QuantIncrementalSession> =
                active.iter_mut().map(|(_, s)| &mut s.session).collect();
            self.model.step_sessions(&mut sessions, &tokens)
        };
        let b = active.len();
        let mut retire: Vec<(usize, Retire)> = Vec::new();
        for ((slot_i, slot), row) in active.iter_mut().zip(&logits) {
            let next = tensor::ops::argmax(row);
            slot.age += 1;
            if next == EOS && !self.cfg.ignore_eos {
                retire.push((*slot_i, Retire::Eos));
                continue;
            }
            slot.out.push(next);
            slot.next_token = next;
            self.stats.tokens_generated += 1;
            if slot.out.len() >= slot.budget {
                retire.push((*slot_i, Retire::Budget));
            } else if slot.deadline.is_some_and(|d| slot.age >= d) {
                retire.push((*slot_i, Retire::Deadline));
            }
        }
        drop(active);
        if persistent_fault {
            // The checker cannot attribute a mismatch to a row, so every
            // slot that shared the flagged step is charged; repeat
            // offenders are withdrawn from service below.
            for i in 0..self.slots.len() {
                if self.slots[i].is_some() {
                    self.slot_faults[i] += 1;
                    if self.cfg.quarantine_after > 0
                        && self.slot_faults[i] >= self.cfg.quarantine_after
                        && !self.quarantined[i]
                    {
                        self.quarantined[i] = true;
                        self.stats.quarantined += 1;
                    }
                }
            }
        }
        for (i, why) in retire {
            let slot = self.slots[i].take().expect("retiring an occupied slot");
            if matches!(why, Retire::Deadline) {
                self.stats.deadline_expired += 1;
            }
            self.finished.push(Response {
                id: slot.id,
                tokens: slot.out,
                hit_eos: matches!(why, Retire::Eos),
            });
            self.stats.retired += 1;
        }
        // Evict occupants of freshly quarantined slots with whatever
        // they have generated so far (degraded, not lost).
        for i in 0..self.slots.len() {
            if self.quarantined[i] {
                if let Some(slot) = self.slots[i].take() {
                    self.finished.push(Response {
                        id: slot.id,
                        tokens: slot.out,
                        hit_eos: false,
                    });
                    self.stats.retired += 1;
                }
            }
        }
        self.stats.steps += 1;
        self.stats.rows += b;
        self.stats.peak_batch = self.stats.peak_batch.max(b);
        true
    }

    /// Steps until every submitted request has finished, then returns
    /// the responses sorted by request id. If every slot ends up
    /// quarantined while requests still wait, the stranded requests
    /// remain in [`ContinuousBatcher::pending_len`] (they were never
    /// started, so nothing of theirs is lost).
    pub fn run_to_completion(&mut self) -> Vec<Response> {
        while self.step() {}
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|r| r.id);
        out
    }
}

/// A shard that panicked during [`run_sharded`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Index of the shard that panicked.
    pub shard: usize,
    /// Ids of the requests routed to that shard (their responses are
    /// lost; every other shard is unaffected).
    pub lost_ids: Vec<u64>,
    /// The panic payload, when it carried a message.
    pub message: String,
}

/// Everything [`run_sharded`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRun {
    /// Responses from all surviving shards, sorted by request id.
    pub responses: Vec<Response>,
    /// Per-shard engine counters (a failed shard reports defaults).
    pub stats: Vec<ServingStats>,
    /// Shards that panicked, with the request ids they took down.
    pub failures: Vec<ShardFailure>,
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Runs `requests` across `shards` engine instances on scoped threads:
/// requests are length-bucketed ([`PaddedBatch::buckets`]), buckets are
/// dealt to the least-loaded shard (by total member count), and each
/// shard runs its own [`ContinuousBatcher`] over the shared model.
/// Responses are bit-identical to a single engine (and to sequential
/// decoding) and come back sorted by id, alongside each shard's
/// counters.
///
/// Shards are **fault-isolated**: a panic inside one shard (poisoned
/// weights, out-of-range tokens, a wedged datapath) is caught on that
/// shard's thread; its requests are reported in
/// [`ShardedRun::failures`] and every other shard completes normally.
///
/// # Errors
///
/// [`ServingError::ZeroShards`] / [`ServingError::ZeroSlots`] for
/// degenerate shapes, [`ServingError::EmptySource`] /
/// [`ServingError::DuplicateId`] if any request is invalid (validated
/// up front, before any shard starts).
pub fn run_sharded(
    model: &QuantSeq2Seq,
    cfg: EngineConfig,
    requests: Vec<Request>,
    shards: usize,
) -> Result<ShardedRun, ServingError> {
    if shards == 0 {
        return Err(ServingError::ZeroShards);
    }
    if cfg.max_batch == 0 {
        return Err(ServingError::ZeroSlots);
    }
    let mut ids = HashSet::new();
    for r in &requests {
        if r.src.is_empty() {
            return Err(ServingError::EmptySource { id: r.id });
        }
        if !ids.insert(r.id) {
            return Err(ServingError::DuplicateId { id: r.id });
        }
    }
    if requests.is_empty() {
        return Ok(ShardedRun {
            responses: Vec::new(),
            stats: vec![ServingStats::default(); shards],
            failures: Vec::new(),
        });
    }
    let seqs: Vec<Vec<usize>> = requests.iter().map(|r| r.src.clone()).collect();
    let buckets = PaddedBatch::buckets(&seqs, cfg.bucket_max_waste);
    let mut workloads: Vec<Vec<Request>> = (0..shards).map(|_| Vec::new()).collect();
    for bucket in &buckets {
        let lightest = (0..shards)
            .min_by_key(|&s| workloads[s].len())
            .expect("at least one shard");
        for &i in &bucket.indices {
            workloads[lightest].push(requests[i].clone());
        }
    }
    let results = tensor::par::map_with_threads(&workloads, shards, |reqs| {
        catch_unwind(AssertUnwindSafe(|| {
            let mut engine = ContinuousBatcher::new(model, cfg).expect("config validated above");
            for r in reqs {
                engine.submit(r.clone()).expect("requests validated above");
            }
            (engine.run_to_completion(), engine.stats())
        }))
        .map_err(panic_message)
    });
    let mut run = ShardedRun {
        responses: Vec::with_capacity(requests.len()),
        stats: Vec::with_capacity(shards),
        failures: Vec::new(),
    };
    for (shard, (result, reqs)) in results.into_iter().zip(&workloads).enumerate() {
        match result {
            Ok((responses, stats)) => {
                run.responses.extend(responses);
                run.stats.push(stats);
            }
            Err(message) => {
                run.stats.push(ServingStats::default());
                run.failures.push(ShardFailure {
                    shard,
                    lost_ids: reqs.iter().map(|r| r.id).collect(),
                    message,
                });
            }
        }
    }
    run.responses.sort_by_key(|r| r.id);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::model::Seq2SeqTransformer;
    use transformer::tasks::{Task, TaskGen};

    fn setup(n: usize) -> (QuantSeq2Seq, Vec<Vec<usize>>) {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(91);
        let model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
        let corpus = gen.corpus(n, &mut StdRng::seed_from_u64(92));
        let srcs = corpus.iter().map(|(s, _)| s.clone()).collect();
        (
            QuantSeq2Seq::from_trained(&model, &corpus, quantized::SoftmaxMode::Hardware),
            srcs,
        )
    }

    fn requests(srcs: &[Vec<usize>], max_new: usize) -> Vec<Request> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Request::new(i as u64, s.clone(), max_new))
            .collect()
    }

    #[test]
    fn continuous_batch_matches_sequential_greedy() {
        let (q, srcs) = setup(6);
        for max_batch in [1usize, 2, 4, 16] {
            let mut engine =
                ContinuousBatcher::new(&q, EngineConfig::with_max_batch(max_batch)).unwrap();
            for r in requests(&srcs, 8) {
                engine.submit(r).unwrap();
            }
            let responses = engine.run_to_completion();
            assert_eq!(responses.len(), srcs.len());
            for (resp, src) in responses.iter().zip(&srcs) {
                let want = q.greedy_decode_incremental(src, 8);
                assert_eq!(resp.tokens, want, "batch {max_batch}, id {}", resp.id);
            }
        }
    }

    #[test]
    fn slots_are_refilled_after_retirement() {
        let (q, srcs) = setup(6);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(2)).unwrap();
        for r in requests(&srcs, 8) {
            engine.submit(r).unwrap();
        }
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 6);
        let stats = engine.stats();
        assert_eq!(stats.admitted, 6);
        assert_eq!(stats.retired, 6);
        assert!(stats.peak_batch <= 2);
        // 6 requests through 2 slots requires several waves of admission.
        assert!(stats.steps >= 3, "steps {}", stats.steps);
        assert!(stats.occupancy(2) > 0.0);
    }

    #[test]
    fn ignore_eos_generates_exactly_the_budget() {
        let (q, srcs) = setup(3);
        let mut cfg = EngineConfig::with_max_batch(4);
        cfg.ignore_eos = true;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        for r in requests(&srcs, 5) {
            engine.submit(r).unwrap();
        }
        for resp in engine.run_to_completion() {
            assert_eq!(resp.tokens.len(), 5);
            assert!(!resp.hit_eos);
        }
    }

    #[test]
    fn zero_budget_requests_finish_immediately() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::default()).unwrap();
        engine.submit(Request::new(7, srcs[0].clone(), 0)).unwrap();
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].tokens.is_empty());
        assert_eq!(engine.stats().steps, 0);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_single_engine() {
        let (q, srcs) = setup(8);
        let cfg = EngineConfig::with_max_batch(4);
        let mut single = ContinuousBatcher::new(&q, cfg).unwrap();
        for r in requests(&srcs, 8) {
            single.submit(r).unwrap();
        }
        let want = single.run_to_completion();
        for shards in [1usize, 2, 3, 8] {
            let run = run_sharded(&q, cfg, requests(&srcs, 8), shards).unwrap();
            assert_eq!(run.responses, want, "shards {shards}");
            assert_eq!(run.stats.len(), shards);
            assert!(run.failures.is_empty());
            let mut total = ServingStats::default();
            for s in &run.stats {
                total.merge(s);
            }
            assert_eq!(total.retired, srcs.len());
        }
    }

    #[test]
    fn zero_slots_rejected() {
        let (q, _) = setup(2);
        assert_eq!(
            ContinuousBatcher::new(&q, EngineConfig::with_max_batch(0)).err(),
            Some(ServingError::ZeroSlots)
        );
        assert_eq!(
            run_sharded(&q, EngineConfig::with_max_batch(0), Vec::new(), 2).err(),
            Some(ServingError::ZeroSlots)
        );
    }

    #[test]
    fn zero_shards_rejected() {
        let (q, srcs) = setup(2);
        assert_eq!(
            run_sharded(&q, EngineConfig::default(), requests(&srcs, 4), 0).err(),
            Some(ServingError::ZeroShards)
        );
    }

    #[test]
    fn empty_source_rejected() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::default()).unwrap();
        assert_eq!(
            engine.submit(Request::new(0, vec![], 4)).err(),
            Some(ServingError::EmptySource { id: 0 })
        );
        let bad = vec![
            Request::new(3, srcs[0].clone(), 4),
            Request::new(4, vec![], 4),
        ];
        assert_eq!(
            run_sharded(&q, EngineConfig::default(), bad, 2).err(),
            Some(ServingError::EmptySource { id: 4 })
        );
    }

    #[test]
    fn duplicate_ids_rejected() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::default()).unwrap();
        engine.submit(Request::new(5, srcs[0].clone(), 4)).unwrap();
        assert_eq!(
            engine.submit(Request::new(5, srcs[1].clone(), 4)).err(),
            Some(ServingError::DuplicateId { id: 5 })
        );
        let dup = vec![
            Request::new(9, srcs[0].clone(), 4),
            Request::new(9, srcs[1].clone(), 4),
        ];
        assert_eq!(
            run_sharded(&q, EngineConfig::default(), dup, 2).err(),
            Some(ServingError::DuplicateId { id: 9 })
        );
    }

    #[test]
    fn deadline_cuts_a_request_short() {
        let (q, srcs) = setup(3);
        let mut cfg = EngineConfig::with_max_batch(4);
        cfg.ignore_eos = true; // make every request want its full budget
        cfg.deadline_steps = Some(2);
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        for r in requests(&srcs, 8) {
            engine.submit(r).unwrap();
        }
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), srcs.len());
        for resp in &responses {
            assert_eq!(resp.tokens.len(), 2, "id {}", resp.id);
            assert!(!resp.hit_eos);
        }
        assert_eq!(engine.stats().deadline_expired, srcs.len());
        // The generated prefix is still bit-identical to an undeadlined
        // decode — the deadline truncates, it never perturbs.
        for (resp, src) in responses.iter().zip(&srcs) {
            let want = q.greedy_decode_incremental(src, 8);
            let n = resp.tokens.len().min(want.len());
            assert_eq!(&resp.tokens[..n], &want[..n]);
        }
    }

    #[test]
    fn per_request_deadline_overrides_config() {
        let (q, srcs) = setup(2);
        let mut cfg = EngineConfig::with_max_batch(2);
        cfg.ignore_eos = true;
        cfg.deadline_steps = Some(6);
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        let mut tight = Request::new(0, srcs[0].clone(), 8);
        tight.deadline_steps = Some(1);
        engine.submit(tight).unwrap();
        engine.submit(Request::new(1, srcs[1].clone(), 8)).unwrap();
        let responses = engine.run_to_completion();
        assert_eq!(responses[0].tokens.len(), 1);
        assert_eq!(responses[1].tokens.len(), 6);
    }

    #[test]
    fn panicking_shard_is_isolated() {
        let (q, srcs) = setup(4);
        let cfg = EngineConfig::with_max_batch(2);
        // An out-of-vocab token panics inside that shard's embedding
        // lookup; the huge length keeps it in its own bucket (and so its
        // own shard) away from the well-formed requests.
        let mut reqs = requests(&srcs, 6);
        reqs.push(Request::new(99, vec![usize::MAX / 2; 64], 6));
        let run = run_sharded(&q, cfg, reqs, 2).unwrap();
        assert_eq!(run.failures.len(), 1);
        assert!(run.failures[0].lost_ids.contains(&99));
        let lost: HashSet<u64> = run.failures[0].lost_ids.iter().copied().collect();
        // Every request outside the failed shard came back, bit-identical
        // to a sequential decode.
        for (i, src) in srcs.iter().enumerate() {
            if lost.contains(&(i as u64)) {
                continue;
            }
            let resp = run
                .responses
                .iter()
                .find(|r| r.id == i as u64)
                .expect("surviving shard's response");
            assert_eq!(resp.tokens, q.greedy_decode_incremental(src, 6));
        }
        assert_eq!(run.responses.len() + lost.len(), srcs.len() + 1);
    }
}
