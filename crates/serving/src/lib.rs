//! Continuous-batching inference over the INT8 paged-KV decoder, with
//! chunked prefill for long prompts.
//!
//! The paper's accelerator cuts per-block latency; this layer keeps the
//! array busy across *requests*. A [`ContinuousBatcher`] owns a fixed
//! number of decode **slots** and one [`KvArena`] — the shared pool of
//! fixed-size KV pages every in-flight session's caches live in. Pages
//! are allocated on demand as tokens are consumed and go back to the
//! free list the moment a request retires, so the engine's KV footprint
//! tracks the tokens actually resident
//! ([`ServingStats::kv_bytes_in_use`]) instead of a per-slot
//! `max_len` reservation.
//!
//! Waiting requests queue up, are admitted in length-sorted buckets
//! ([`PaddedBatch::buckets`]), and every [`ContinuousBatcher::step`]
//! advances *all* in-flight sessions together through one batched layer
//! pass ([`QuantSeq2Seq::prefill_sessions`]) — one multi-row GEMM per
//! weight matrix per step instead of one GEMM per request per layer.
//!
//! **Chunked prefill:** a request may carry a target-side *prompt*
//! ([`Request::with_prompt`]) that must be ingested before generation.
//! Instead of feeding it one token per step (L steps for an L-token
//! prompt), the engine consumes it in chunks of up to
//! [`EngineConfig::prefill_chunk`] rows, and a length-1 chunk *is* a
//! decode step — so one batched model call mixes prefill chunks from
//! ramping-up requests with single decode rows from requests already
//! generating. A per-step budget ([`EngineConfig::max_prefill_rows`])
//! bounds how many prefill rows may share a step with decode rows, so a
//! burst of long prompts cannot starve in-flight decodes; the first
//! prefilling slot always makes progress even when the budget is
//! exhausted.
//!
//! **Bit-identity guarantee:** the batched datapath is row-independent
//! and the executor's intra-chunk causal mask produces exactly-zero
//! probability codes for masked columns, so every response is
//! bit-identical to decoding that request alone token-at-a-time
//! ([`QuantSeq2Seq::greedy_decode_incremental`] /
//! [`QuantSeq2Seq::greedy_decode_with_prompt`]) — regardless of batch
//! size, chunk size, arrival order, or which requests shared its steps.
//! Tests (including a property test over random arrival orders) assert
//! this.
//!
//! **Graceful degradation:** invalid inputs return typed
//! [`ServingError`]s instead of panicking. When the `faults` crate's
//! ABFT checker is live ([`faults::checker_enabled`]), every batched
//! step is bracketed by the process-wide detection counter: a
//! checker-flagged step is rolled back chunk-for-chunk
//! ([`QuantIncrementalSession::rollback_rows`] — paged truncation frees
//! any page the rollback empties) and recomputed up to
//! [`EngineConfig::max_step_retries`] times — a transient upset fires
//! once per GEMM-pass index, so the replay is clean and the affected
//! request still completes bit-identically. Steps that stay flagged
//! after all retries charge every slot that shared them; a slot charged
//! [`EngineConfig::quarantine_after`] times is **quarantined** (its
//! occupant retires degraded and the slot never refills). Per-request
//! **deadlines** ([`Request::deadline_steps`] /
//! [`EngineConfig::deadline_steps`]) bound how many engine steps a
//! request may hold a slot. For multi-instance deployments,
//! [`run_sharded`] fans length buckets out across `N` engine instances
//! on scoped threads (`tensor::par`), each with its own arena, and a
//! panicking shard is isolated: its requests are reported in
//! [`ShardedRun::failures`] while every other shard's responses come
//! back unaffected.
//!
//! Under the hood every step runs the shared cached-KV operator graph
//! (`graph::mha_cached_graph`) through the `Executor` seam:
//! [`QuantSeq2Seq::prefill_sessions`] drives `quantized::QuantRowExec`
//! over the stacked chunk rows, so this layer is a *consumer* of the
//! executor abstraction rather than a fifth hand-written forward path —
//! swapping in another `graph::Executor` backend would not change any
//! scheduling logic here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prefix;

use std::any::Any;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use quantized::incremental::{KvArena, QuantIncrementalSession};

use crate::prefix::PrefixIndex;
use quantized::QuantSeq2Seq;
use transformer::batching::PaddedBatch;
use transformer::tasks::{BOS, EOS};

/// Why the serving layer rejected an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServingError {
    /// `EngineConfig::max_batch` was zero.
    ZeroSlots,
    /// `run_sharded` was asked for zero shards.
    ZeroShards,
    /// A request's source sentence was empty.
    EmptySource {
        /// The offending request's id.
        id: u64,
    },
    /// A request reused an id this engine has already accepted.
    DuplicateId {
        /// The reused id.
        id: u64,
    },
    /// The bounded waiting queue ([`EngineConfig::max_queue`]) is full;
    /// the request was **shed** at admission instead of growing the
    /// queue without limit. The id is *not* recorded, so the caller may
    /// retry the same id after backoff.
    QueueFull {
        /// The shed request's id.
        id: u64,
    },
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::ZeroSlots => write!(f, "need at least one decode slot"),
            ServingError::ZeroShards => write!(f, "need at least one shard"),
            ServingError::EmptySource { id } => {
                write!(f, "request {id}: source must be non-empty")
            }
            ServingError::DuplicateId { id } => {
                write!(f, "request id {id} already submitted")
            }
            ServingError::QueueFull { id } => {
                write!(f, "request {id}: waiting queue full, shed at admission")
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// One translation/generation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier; responses are returned sorted by it.
    /// Must be unique within an engine's lifetime.
    pub id: u64,
    /// Source-token sentence (must be non-empty).
    pub src: Vec<usize>,
    /// Target-side prompt consumed (after `BOS`) before generation
    /// begins — the long-context prefill workload. May be empty. Prompt
    /// tokens are ingested in chunks and never appear in the response.
    pub prompt: Vec<usize>,
    /// Maximum number of tokens to generate.
    pub max_new_tokens: usize,
    /// Optional per-request deadline: the maximum number of engine steps
    /// this request may hold a slot (overrides
    /// [`EngineConfig::deadline_steps`]). A request cut off by its
    /// deadline retires with the tokens generated so far and
    /// [`FinishReason::Deadline`].
    pub deadline_steps: Option<usize>,
    /// Optional **wall-clock** deadline in milliseconds, measured from
    /// [`ContinuousBatcher::submit`]. A request still waiting in the
    /// queue when its deadline passes retires immediately with
    /// [`FinishReason::Deadline`] and zero tokens — it never consumes a
    /// slot or a KV page. A request already in a slot is preempted at
    /// the first step past the deadline, keeping the tokens generated
    /// so far (the wall-clock analogue of `deadline_steps`).
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request with no prompt and no per-request deadline.
    pub fn new(id: u64, src: Vec<usize>, max_new_tokens: usize) -> Self {
        Self {
            id,
            src,
            prompt: Vec::new(),
            max_new_tokens,
            deadline_steps: None,
            deadline_ms: None,
        }
    }

    /// Attaches a target-side prompt to prefill before generating.
    pub fn with_prompt(mut self, prompt: Vec<usize>) -> Self {
        self.prompt = prompt;
        self
    }

    /// Attaches a wall-clock deadline (milliseconds from submission).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }
}

/// Why a request's lifetime ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Decoding produced `EOS` (normal completion).
    Eos,
    /// The `max_new_tokens` budget was spent (also the reason reported
    /// for zero-budget requests, which finish at submission).
    Budget,
    /// A step-count or wall-clock deadline preempted the request; the
    /// tokens generated before the cutoff are kept. A request whose
    /// wall-clock deadline passed while it was still queued retires
    /// this way with zero tokens, without ever touching a slot.
    Deadline,
    /// The request's slot was quarantined after repeated persistent
    /// faults; the tokens generated so far are returned degraded.
    Quarantine,
}

/// A finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's identifier.
    pub id: u64,
    /// Generated tokens (no BOS, no prompt; no EOS unless EOS is being
    /// ignored).
    pub tokens: Vec<usize>,
    /// Why the request finished (EOS, budget, deadline, quarantine).
    pub finish: FinishReason,
    /// Engine step index (0-based) at which this request's first token
    /// was generated — the time-to-first-token in steps. `None` if the
    /// request produced no tokens. Scheduling metadata: it depends on
    /// queueing and chunk policy, not on the decoded content.
    pub first_token_step: Option<usize>,
}

impl Response {
    /// Whether decoding stopped on `EOS` (as opposed to the budget, a
    /// deadline, or slot quarantine).
    pub fn hit_eos(&self) -> bool {
        self.finish == FinishReason::Eos
    }
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of decode slots — the maximum number of *requests*
    /// stacked per step (a prefilling request may contribute several
    /// rows).
    pub max_batch: usize,
    /// Padding-waste budget handed to [`PaddedBatch::buckets`] during
    /// admission and sharding.
    pub bucket_max_waste: usize,
    /// Maximum prompt rows one prefilling request consumes per step.
    /// `1` degenerates to token-at-a-time prefill.
    pub prefill_chunk: usize,
    /// Per-step budget of prefill rows summed over all prefilling
    /// slots, so prompt ingestion cannot starve in-flight decodes. The
    /// first prefilling slot always progresses even when the budget is
    /// already spent by a smaller value than its chunk.
    pub max_prefill_rows: usize,
    /// When `true`, `EOS` neither stops a request nor is stripped from
    /// its output: every request generates exactly `max_new_tokens`
    /// tokens. Benchmarks use this so each batch size does identical
    /// work.
    pub ignore_eos: bool,
    /// Default per-request deadline in engine steps (`None` = no
    /// deadline). [`Request::deadline_steps`] overrides this per
    /// request.
    pub deadline_steps: Option<usize>,
    /// How many times a checker-flagged step is rolled back and
    /// recomputed before its output is accepted as-is and the slots
    /// involved are charged with a persistent fault.
    pub max_step_retries: usize,
    /// Quarantine a slot after this many persistent-fault charges
    /// (`0` disables quarantine). A quarantined slot evicts its
    /// occupant (degraded response, `hit_eos == false`) and never
    /// admits another request.
    pub quarantine_after: usize,
    /// Byte budget for the shared-prefix KV cache
    /// ([`prefix::PrefixIndex`]): completed prefills are snapshotted at
    /// a page boundary and later requests sharing a `(src, prompt)`
    /// prefix fork the snapshot instead of re-running its prefill. `0`
    /// disables the cache (the default unless `ACCEL_PREFIX_CACHE` is
    /// set). The budget counts *logical* entry bytes; physical pages
    /// are shared copy-on-write, so the true footprint is at most — and
    /// with overlapping entries less than — this figure.
    pub prefix_cache_bytes: usize,
    /// Bound on the waiting queue: [`ContinuousBatcher::submit`] returns
    /// [`ServingError::QueueFull`] (a typed **shed**, counted in
    /// [`ServingStats::shed`]) once this many requests are queued,
    /// instead of growing the queue without limit. `0` means unbounded
    /// (the pre-front-door behaviour; default unless `ACCEL_MAX_QUEUE`
    /// is set).
    pub max_queue: usize,
}

impl EngineConfig {
    /// A config with `max_batch` slots and default policies.
    pub fn with_max_batch(max_batch: usize) -> Self {
        Self {
            max_batch,
            bucket_max_waste: 4,
            prefill_chunk: 16,
            max_prefill_rows: 64,
            ignore_eos: false,
            deadline_steps: None,
            max_step_retries: 2,
            quarantine_after: 2,
            prefix_cache_bytes: tensor::envcfg::prefix_cache_bytes(0),
            max_queue: tensor::envcfg::max_queue(0),
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::with_max_batch(16)
    }
}

/// Counters accumulated across an engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Batched steps executed.
    pub steps: usize,
    /// Total active requests summed over all steps
    /// (`≤ steps · max_batch`).
    pub rows: usize,
    /// Prompt rows consumed by chunked prefill (including each
    /// request's `BOS` row), summed over all steps.
    pub prefill_rows: usize,
    /// Tokens appended to responses.
    pub tokens_generated: usize,
    /// Largest number of requests any single step carried.
    pub peak_batch: usize,
    /// Requests admitted into slots.
    pub admitted: usize,
    /// Requests retired (EOS, budget, deadline, or quarantine).
    pub retired: usize,
    /// Resident KV-pool bytes after the most recent step (whole pages
    /// held by live sessions; retired sessions' pages are already back
    /// on the free list).
    pub kv_bytes_in_use: usize,
    /// High-water mark of resident KV-pool bytes across all steps,
    /// measured before retirement releases — the budget a deployment
    /// must actually provision.
    pub kv_bytes_peak: usize,
    /// Steps the ABFT checker flagged (counting each failed attempt).
    pub faulty_steps: usize,
    /// Rollback-and-recompute retries performed.
    pub retries: usize,
    /// Slots quarantined after repeated persistent faults.
    pub quarantined: usize,
    /// Requests cut off by a deadline.
    pub deadline_expired: usize,
    /// Requests shed at submission because the bounded waiting queue
    /// ([`EngineConfig::max_queue`]) was full.
    pub shed: usize,
    /// Requests whose wall-clock deadline expired while they were still
    /// queued — retired with [`FinishReason::Deadline`] and zero tokens
    /// without ever consuming a slot or a KV page (a subset of
    /// [`Self::deadline_expired`]).
    pub expired_in_queue: usize,
    /// Requests cancelled via [`ContinuousBatcher::cancel`] (client
    /// disconnect, caller abort); a cancelled request produces no
    /// [`Response`] and its KV pages return to the free list at once.
    pub cancelled: usize,
    /// Fused graph nodes executed by this engine's steps (`LinearRelu`,
    /// `LinearAdd`, and the row executors' hand-fused drains). Zero when
    /// `ACCEL_NO_FUSE=1`.
    pub ops_fused: usize,
    /// Bytes of intermediate tensors fusion never materialized across
    /// this engine's steps — the memory traffic the fused drains
    /// removed, the fusion analogue of [`Self::kv_bytes_in_use`].
    pub intermediates_elided_bytes: usize,
    /// Admissions that attached to a cached prefix (skipping its
    /// prefill). Zero when the prefix cache is disabled.
    pub prefix_hits: usize,
    /// Admissions that searched the prefix cache and found nothing
    /// reusable. Zero when the prefix cache is disabled.
    pub prefix_misses: usize,
    /// Prompt rows (including `BOS`) that prefix hits did **not**
    /// re-ingest — prefill work the cache saved. `prefill_rows` shrinks
    /// by exactly this amount relative to a cold engine.
    pub prefix_rows_reused: usize,
    /// Logical KV bytes prefix hits attached to instead of
    /// re-materializing (whole resident pages of the reused rows;
    /// physically shared copy-on-write, so the arena pays them once).
    pub prefix_bytes_shared: usize,
}

impl ServingStats {
    /// Mean slot occupancy: the fraction of the engine's request
    /// capacity that carried real requests, `rows / (steps · max_batch)`.
    /// This is the serving-level analogue of array utilization — idle
    /// slots are idle array rows.
    pub fn occupancy(&self, max_batch: usize) -> f64 {
        if self.steps == 0 || max_batch == 0 {
            return 0.0;
        }
        self.rows as f64 / (self.steps * max_batch) as f64
    }

    /// Accumulates another engine's counters (used to roll up shards;
    /// KV byte counters add because each shard owns its own arena).
    pub fn merge(&mut self, other: &ServingStats) {
        self.steps += other.steps;
        self.rows += other.rows;
        self.prefill_rows += other.prefill_rows;
        self.tokens_generated += other.tokens_generated;
        self.peak_batch = self.peak_batch.max(other.peak_batch);
        self.admitted += other.admitted;
        self.retired += other.retired;
        self.kv_bytes_in_use += other.kv_bytes_in_use;
        self.kv_bytes_peak += other.kv_bytes_peak;
        self.faulty_steps += other.faulty_steps;
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.deadline_expired += other.deadline_expired;
        self.shed += other.shed;
        self.expired_in_queue += other.expired_in_queue;
        self.cancelled += other.cancelled;
        self.ops_fused += other.ops_fused;
        self.intermediates_elided_bytes += other.intermediates_elided_bytes;
        self.prefix_hits += other.prefix_hits;
        self.prefix_misses += other.prefix_misses;
        self.prefix_rows_reused += other.prefix_rows_reused;
        self.prefix_bytes_shared += other.prefix_bytes_shared;
    }
}

/// An in-flight request occupying a decode slot.
#[derive(Debug)]
struct Slot {
    id: u64,
    session: QuantIncrementalSession,
    /// Tokens still to feed the model: the un-ingested tail of
    /// `[BOS] + prompt` while prefilling, then exactly the one
    /// last-generated token while decoding.
    pending: VecDeque<usize>,
    /// `true` until the first token is generated — while set, consumed
    /// rows count as prefill and intermediate logits are discarded.
    in_prefill: bool,
    out: Vec<usize>,
    budget: usize,
    first_token_step: Option<usize>,
    /// Full prefix-cache key (`src ++ SEP ++ [BOS] + prompt`), kept so
    /// the completed prefill can be snapshotted into the index. Empty
    /// when the prefix cache is disabled.
    prefix_key: Vec<usize>,
    /// Engine steps this request has participated in.
    age: usize,
    /// Effective deadline (request override, else config default).
    deadline: Option<usize>,
    /// Absolute wall-clock deadline (from [`Request::deadline_ms`]).
    wall_deadline: Option<Instant>,
}

/// Why a slot retired this step.
enum Retire {
    Eos,
    Budget,
    Deadline,
}

/// A request waiting for a slot, with its wall-clock deadline resolved
/// to an absolute instant at submission.
#[derive(Debug)]
struct Queued {
    req: Request,
    wall_deadline: Option<Instant>,
}

/// Borrows the planned slots' sessions in slot order. `plan` holds
/// ascending slot indices, so one pass over `slots` suffices.
fn planned_sessions<'a>(
    slots: &'a mut [Option<Slot>],
    plan: &[(usize, Vec<usize>)],
) -> Vec<&'a mut QuantIncrementalSession> {
    let mut want = plan.iter().map(|(i, _)| *i).peekable();
    slots
        .iter_mut()
        .enumerate()
        .filter_map(|(i, slot)| {
            if want.peek() == Some(&i) {
                want.next();
                slot.as_mut().map(|s| &mut s.session)
            } else {
                None
            }
        })
        .collect()
}

/// The continuous-batching engine (one model instance). Owns the
/// [`KvArena`] all of its sessions page their KV caches into.
#[derive(Debug)]
pub struct ContinuousBatcher<'m> {
    model: &'m QuantSeq2Seq,
    cfg: EngineConfig,
    arena: KvArena,
    pending: VecDeque<Queued>,
    slots: Vec<Option<Slot>>,
    /// Slots withdrawn from service after repeated persistent faults.
    quarantined: Vec<bool>,
    /// Persistent-fault charges per slot index.
    slot_faults: Vec<usize>,
    /// Every id this engine has ever accepted (duplicate rejection).
    seen_ids: HashSet<u64>,
    finished: Vec<Response>,
    /// `(id, token)` pairs in generation order since the last
    /// [`ContinuousBatcher::drain_emitted`] — the streaming feed the
    /// network front door forwards token-by-token.
    emitted: Vec<(u64, usize)>,
    stats: ServingStats,
    /// Shared-prefix KV cache (disabled at budget 0 — see
    /// [`EngineConfig::prefix_cache_bytes`]).
    prefix: PrefixIndex,
}

impl<'m> ContinuousBatcher<'m> {
    /// Creates an engine with `cfg.max_batch` empty slots and a fresh
    /// KV arena sized for `model`.
    ///
    /// # Errors
    ///
    /// [`ServingError::ZeroSlots`] if `cfg.max_batch == 0`.
    pub fn new(model: &'m QuantSeq2Seq, cfg: EngineConfig) -> Result<Self, ServingError> {
        if cfg.max_batch == 0 {
            return Err(ServingError::ZeroSlots);
        }
        Ok(Self {
            model,
            cfg,
            arena: KvArena::for_model(model),
            pending: VecDeque::new(),
            slots: (0..cfg.max_batch).map(|_| None).collect(),
            quarantined: vec![false; cfg.max_batch],
            slot_faults: vec![0; cfg.max_batch],
            seen_ids: HashSet::new(),
            finished: Vec::new(),
            emitted: Vec::new(),
            stats: ServingStats::default(),
            prefix: PrefixIndex::new(cfg.prefix_cache_bytes),
        })
    }

    /// Queues a request (it enters a slot at the next refill).
    ///
    /// # Errors
    ///
    /// [`ServingError::EmptySource`] if the source sentence is empty,
    /// [`ServingError::DuplicateId`] if the id was already accepted,
    /// [`ServingError::QueueFull`] if the bounded queue is full — the
    /// request is **shed** (counted in [`ServingStats::shed`]) and its
    /// id stays unrecorded so the caller may retry it after backoff.
    pub fn submit(&mut self, req: Request) -> Result<(), ServingError> {
        if req.src.is_empty() {
            return Err(ServingError::EmptySource { id: req.id });
        }
        if self.seen_ids.contains(&req.id) {
            return Err(ServingError::DuplicateId { id: req.id });
        }
        if self.cfg.max_queue > 0 && self.pending.len() >= self.cfg.max_queue {
            self.stats.shed += 1;
            return Err(ServingError::QueueFull { id: req.id });
        }
        self.seen_ids.insert(req.id);
        if req.max_new_tokens == 0 {
            // Nothing to generate; finish without occupying a slot.
            self.finished.push(Response {
                id: req.id,
                tokens: Vec::new(),
                finish: FinishReason::Budget,
                first_token_step: None,
            });
            return Ok(());
        }
        let wall_deadline = req
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        self.pending.push_back(Queued { req, wall_deadline });
        Ok(())
    }

    /// Cancels a request by id — a queued request is dropped before it
    /// ever touches a slot; an in-flight request is evicted and its KV
    /// pages go straight back to the arena's free list. No [`Response`]
    /// is produced (the canonical caller is a client that disconnected
    /// mid-stream, so there is nobody to answer). Returns `false` when
    /// the id is unknown or already finished.
    pub fn cancel(&mut self, id: u64) -> bool {
        if let Some(qpos) = self.pending.iter().position(|q| q.req.id == id) {
            self.pending.remove(qpos);
            self.stats.cancelled += 1;
            return true;
        }
        for slot in &mut self.slots {
            if slot.as_ref().is_some_and(|s| s.id == id) {
                let mut s = slot.take().expect("checked occupied");
                s.session.release(&mut self.arena);
                self.stats.cancelled += 1;
                self.stats.kv_bytes_in_use = self.arena.kv_bytes_in_use();
                return true;
            }
        }
        false
    }

    /// Takes the `(id, token)` pairs generated since the last call, in
    /// generation order — the per-step streaming feed (a front door
    /// forwards these as they appear; batch callers may ignore them and
    /// read whole [`Response`]s instead).
    pub fn drain_emitted(&mut self) -> Vec<(u64, usize)> {
        std::mem::take(&mut self.emitted)
    }

    /// Takes the responses finished since the last call (arrival order,
    /// not id order). [`ContinuousBatcher::run_to_completion`] is the
    /// batch alternative that sorts by id.
    pub fn drain_finished(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.finished)
    }

    /// Requests waiting for a slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Requests currently holding a slot.
    pub fn active_len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Slots withdrawn from service after repeated persistent faults.
    pub fn quarantined_len(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    /// The engine's lifetime counters so far.
    pub fn stats(&self) -> ServingStats {
        self.stats
    }

    /// Resident KV-pool bytes right now (whole pages held by live
    /// sessions *and* by cached prefix snapshots; shared pages count
    /// once).
    pub fn kv_bytes_in_use(&self) -> usize {
        self.arena.kv_bytes_in_use()
    }

    /// Cached prefixes currently held by the prefix index.
    pub fn prefix_cache_entries(&self) -> usize {
        self.prefix.entries()
    }

    /// Logical bytes charged against the prefix-cache budget.
    pub fn prefix_cache_bytes(&self) -> usize {
        self.prefix.bytes()
    }

    /// Drops every cached prefix, returning unshared pages to the
    /// arena's free lists.
    pub fn clear_prefix_cache(&mut self) {
        self.prefix.clear(&mut self.arena);
    }

    /// Length-bucketed admission: fills free (non-quarantined) slots
    /// from the queue, admitting the bucket containing the oldest
    /// waiting request first (so similar-length sources land together
    /// and no request starves). Buckets are formed on source length;
    /// prompts only shape the prefill schedule, not admission.
    fn refill(&mut self) {
        // Retire queued requests whose wall-clock deadline has already
        // passed — they finish with zero tokens and never consume a
        // slot or a KV page (the answer would be dead on arrival).
        if self.pending.iter().any(|q| q.wall_deadline.is_some()) {
            let now = Instant::now();
            let mut keep = VecDeque::with_capacity(self.pending.len());
            for q in self.pending.drain(..) {
                if q.wall_deadline.is_some_and(|d| now >= d) {
                    self.stats.deadline_expired += 1;
                    self.stats.expired_in_queue += 1;
                    self.finished.push(Response {
                        id: q.req.id,
                        tokens: Vec::new(),
                        finish: FinishReason::Deadline,
                        first_token_step: None,
                    });
                } else {
                    keep.push_back(q);
                }
            }
            self.pending = keep;
        }
        while self.pending.front().is_some() {
            let free: Vec<usize> = (0..self.slots.len())
                .filter(|&i| self.slots[i].is_none() && !self.quarantined[i])
                .collect();
            if free.is_empty() {
                return;
            }
            let seqs: Vec<Vec<usize>> = self.pending.iter().map(|q| q.req.src.clone()).collect();
            let buckets = PaddedBatch::buckets(&seqs, self.cfg.bucket_max_waste);
            let oldest_bucket = buckets
                .iter()
                .find(|b| b.indices.contains(&0))
                .expect("queue position 0 is in some bucket");
            // Admit the bucket's members in arrival (queue) order,
            // bounded by the free slots. Positions are removed ascending,
            // so each removal shifts the later ones left by one.
            let whole_bucket = oldest_bucket.indices.len() <= free.len();
            let mut queue_positions: Vec<usize> = oldest_bucket.indices.clone();
            queue_positions.sort_unstable();
            queue_positions.truncate(free.len());
            for (removed, (slot_i, qpos)) in free.iter().zip(queue_positions).enumerate() {
                let Queued { req, wall_deadline } = self
                    .pending
                    .remove(qpos - removed)
                    .expect("position in range");
                let model = self.model;
                let mut target = Vec::with_capacity(1 + req.prompt.len());
                target.push(BOS);
                target.extend(req.prompt.iter().copied());
                // Shared-prefix fast path: attach to the longest cached
                // page-aligned prefix of (src, target) and prefill only
                // the suffix. Capped at `target.len() - 1` rows so the
                // session always re-ingests the row whose logits seed
                // generation — decode from a fork is bit-identical to a
                // cold prefill, so hits change scheduling, never tokens.
                let (session, reused, prefix_key) = if self.prefix.enabled() {
                    let key = prefix::prefix_key(&req.src, &target);
                    match self.prefix.lookup(&key, target.len() - 1) {
                        Some((snap, rows)) => {
                            // The snapshot may hold more rows than this
                            // prompt shares with it (diverged-tail
                            // reuse): roll the *fork* back to the
                            // matched depth — copy-on-write keeps the
                            // cached entry's pages intact.
                            let mut session = snap.fork(&mut self.arena);
                            if session.pos() > rows {
                                let extra = session.pos() - rows;
                                session.rollback_rows(&mut self.arena, extra);
                            }
                            self.stats.prefix_hits += 1;
                            self.stats.prefix_rows_reused += rows;
                            self.stats.prefix_bytes_shared +=
                                session.resident_kv_bytes(&self.arena);
                            (session, rows, key)
                        }
                        None => {
                            self.stats.prefix_misses += 1;
                            (model.start_session(&mut self.arena, &req.src), 0, key)
                        }
                    }
                } else {
                    (
                        model.start_session(&mut self.arena, &req.src),
                        0,
                        Vec::new(),
                    )
                };
                let pending: VecDeque<usize> = target[reused..].iter().copied().collect();
                self.slots[*slot_i] = Some(Slot {
                    id: req.id,
                    session,
                    pending,
                    in_prefill: true,
                    prefix_key,
                    out: Vec::new(),
                    budget: req.max_new_tokens,
                    first_token_step: None,
                    age: 0,
                    deadline: req.deadline_steps.or(self.cfg.deadline_steps),
                    wall_deadline,
                });
                self.stats.admitted += 1;
            }
            if whole_bucket {
                continue; // whole bucket admitted; maybe room for another
            }
            return; // slots exhausted mid-bucket
        }
    }

    /// Plans this step's per-slot chunks: a prefilling slot takes up to
    /// `prefill_chunk` of its remaining prompt rows, bounded by the
    /// shared `max_prefill_rows` budget (the first prefilling slot
    /// always progresses, so prefill can never stall outright; slots
    /// the budget squeezes to zero rows sit the step out). A decoding
    /// slot always takes its single pending token. Returns ascending
    /// `(slot index, chunk)` pairs.
    fn plan_step(&self) -> Vec<(usize, Vec<usize>)> {
        let chunk_cap = self.cfg.prefill_chunk.max(1);
        let mut budget = self.cfg.max_prefill_rows;
        let mut granted = false;
        let mut plan = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let take = if slot.in_prefill {
                let want = slot.pending.len().min(chunk_cap);
                let take = want.min(budget);
                if take == 0 && !granted {
                    want
                } else {
                    take
                }
            } else {
                1
            };
            if take == 0 {
                continue;
            }
            if slot.in_prefill {
                budget = budget.saturating_sub(take);
                granted = true;
            }
            plan.push((i, slot.pending.iter().take(take).copied().collect()));
        }
        plan
    }

    /// Advances every in-flight session — prefilling slots by one
    /// prompt chunk, decoding slots by one token — in a single batched
    /// model call (admitting queued requests into free slots first).
    /// Returns `false` when there is nothing left to do — queue and
    /// slots are both empty, or every remaining slot is quarantined
    /// (check [`ContinuousBatcher::pending_len`] for stranded
    /// requests).
    ///
    /// When the ABFT checker is live, a step that raises the
    /// process-wide detection counter is rolled back chunk-for-chunk
    /// and recomputed (up to `max_step_retries` times); the
    /// transient-upset replay is bit-identical to a fault-free step, so
    /// detected faults are invisible in the output stream.
    pub fn step(&mut self) -> bool {
        self.refill();
        let plan = self.plan_step();
        if plan.is_empty() {
            return false;
        }
        let fusion0 = graph::fusion_tally();
        let model = self.model;
        let chunk_refs: Vec<&[usize]> = plan.iter().map(|(_, c)| c.as_slice()).collect();
        let verify = faults::hooks_active() && faults::checker_enabled();
        let mut persistent_fault = false;
        let logits = if verify {
            let mut attempt = 0;
            loop {
                let before = faults::counters().detected;
                let mut sessions = planned_sessions(&mut self.slots, &plan);
                let logits = model.prefill_sessions(&mut self.arena, &mut sessions, &chunk_refs);
                if faults::counters().detected == before {
                    break logits;
                }
                self.stats.faulty_steps += 1;
                if attempt >= self.cfg.max_step_retries {
                    // Still flagged after every retry: accept the output
                    // (better degraded than lost) and charge the slots.
                    persistent_fault = true;
                    break logits;
                }
                attempt += 1;
                self.stats.retries += 1;
                // prefill_sessions advanced every planned session by its
                // whole chunk; rewind exactly those rows (freeing any
                // page the rollback empties) and replay the step.
                for (i, chunk) in &plan {
                    let slot = self.slots[*i].as_mut().expect("planned slot is occupied");
                    slot.session.rollback_rows(&mut self.arena, chunk.len());
                }
            }
        } else {
            let mut sessions = planned_sessions(&mut self.slots, &plan);
            model.prefill_sessions(&mut self.arena, &mut sessions, &chunk_refs)
        };
        // High-water mark before retirement hands pages back.
        self.stats.kv_bytes_peak = self.stats.kv_bytes_peak.max(self.arena.kv_bytes_in_use());
        if persistent_fault {
            // The checker cannot attribute a mismatch to a row, so every
            // slot that shared the flagged step is charged; repeat
            // offenders are withdrawn from service below.
            for (i, _) in &plan {
                self.slot_faults[*i] += 1;
                if self.cfg.quarantine_after > 0
                    && self.slot_faults[*i] >= self.cfg.quarantine_after
                    && !self.quarantined[*i]
                {
                    self.quarantined[*i] = true;
                    self.stats.quarantined += 1;
                }
            }
        }
        let b = plan.len();
        // One clock read per step covers every wall-clock deadline
        // check; a deadline-free workload never branches on it.
        let wall_now = Instant::now();
        let past_wall = |slot: &Slot| slot.wall_deadline.is_some_and(|d| wall_now >= d);
        let mut retire: Vec<(usize, Retire)> = Vec::new();
        for ((i, chunk), row) in plan.iter().zip(&logits) {
            let slot = self.slots[*i].as_mut().expect("planned slot is occupied");
            slot.age += 1;
            for _ in 0..chunk.len() {
                slot.pending.pop_front();
            }
            if slot.in_prefill {
                self.stats.prefill_rows += chunk.len();
            }
            if !slot.pending.is_empty() {
                // Mid-prefill: the chunk's last-row logits are an
                // intermediate position, not the generation frontier.
                if slot.deadline.is_some_and(|d| slot.age >= d) || past_wall(slot) {
                    retire.push((*i, Retire::Deadline));
                }
                continue;
            }
            let next = tensor::ops::argmax(row);
            if next == EOS && !self.cfg.ignore_eos {
                retire.push((*i, Retire::Eos));
                continue;
            }
            if slot.in_prefill {
                slot.in_prefill = false;
                slot.first_token_step = Some(self.stats.steps);
                // Prefill just completed: snapshot it for future
                // requests sharing this (src, prompt) prefix. Rolled
                // back to a page boundary, the fork shares every page
                // it keeps with this live session; `insert` LRU-evicts
                // under the byte budget and drops the fork if the key
                // is already cached.
                if self.prefix.enabled() {
                    let pos = slot.session.pos();
                    let page = self.arena.page_rows();
                    // Align over `pos - 1`, not `pos`: an exact-repeat
                    // request may reuse at most `pos - 1` rows (it must
                    // re-ingest the row whose logits seed generation),
                    // so a snapshot at full page-aligned length would
                    // be unreachable for the very requests it is for.
                    let aligned = ((pos - 1) / page) * page;
                    let key_at = slot.prefix_key.len() - (pos - aligned);
                    if aligned > 0 && !self.prefix.contains(&slot.prefix_key[..key_at]) {
                        let mut snap = slot.session.fork(&mut self.arena);
                        if pos > aligned {
                            snap.rollback_rows(&mut self.arena, pos - aligned);
                        }
                        self.prefix
                            .insert(&slot.prefix_key[..key_at], snap, &mut self.arena);
                    }
                }
            }
            slot.out.push(next);
            self.emitted.push((slot.id, next));
            self.stats.tokens_generated += 1;
            if slot.out.len() >= slot.budget {
                retire.push((*i, Retire::Budget));
            } else if slot.deadline.is_some_and(|d| slot.age >= d) || past_wall(slot) {
                retire.push((*i, Retire::Deadline));
            } else {
                slot.pending.push_back(next);
            }
        }
        for (i, why) in retire {
            let mut slot = self.slots[i].take().expect("retiring an occupied slot");
            slot.session.release(&mut self.arena);
            if matches!(why, Retire::Deadline) {
                self.stats.deadline_expired += 1;
            }
            self.finished.push(Response {
                id: slot.id,
                tokens: slot.out,
                finish: match why {
                    Retire::Eos => FinishReason::Eos,
                    Retire::Budget => FinishReason::Budget,
                    Retire::Deadline => FinishReason::Deadline,
                },
                first_token_step: slot.first_token_step,
            });
            self.stats.retired += 1;
        }
        // Evict occupants of freshly quarantined slots with whatever
        // they have generated so far (degraded, not lost).
        for i in 0..self.slots.len() {
            if self.quarantined[i] {
                if let Some(mut slot) = self.slots[i].take() {
                    slot.session.release(&mut self.arena);
                    self.finished.push(Response {
                        id: slot.id,
                        tokens: slot.out,
                        finish: FinishReason::Quarantine,
                        first_token_step: slot.first_token_step,
                    });
                    self.stats.retired += 1;
                }
            }
        }
        self.stats.steps += 1;
        self.stats.rows += b;
        self.stats.peak_batch = self.stats.peak_batch.max(b);
        self.stats.kv_bytes_in_use = self.arena.kv_bytes_in_use();
        // Fused-op work this step performed, read as a delta of the
        // process-wide tally (retried attempts count — they ran).
        let fusion = graph::fusion_tally().since(&fusion0);
        self.stats.ops_fused += fusion.ops_fused as usize;
        self.stats.intermediates_elided_bytes += fusion.intermediates_elided_bytes as usize;
        true
    }

    /// Steps until every submitted request has finished, then returns
    /// the responses sorted by request id. If every slot ends up
    /// quarantined while requests still wait, the stranded requests
    /// remain in [`ContinuousBatcher::pending_len`] (they were never
    /// started, so nothing of theirs is lost).
    pub fn run_to_completion(&mut self) -> Vec<Response> {
        while self.step() {}
        self.emitted.clear(); // batch callers read Responses, not the stream
        let mut out = std::mem::take(&mut self.finished);
        out.sort_by_key(|r| r.id);
        out
    }
}

/// A shard that panicked during [`run_sharded`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Index of the shard that panicked.
    pub shard: usize,
    /// Ids of the requests routed to that shard (their responses are
    /// lost; every other shard is unaffected).
    pub lost_ids: Vec<u64>,
    /// The panic payload, when it carried a message.
    pub message: String,
}

/// Everything [`run_sharded`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRun {
    /// Responses from all surviving shards, sorted by request id.
    pub responses: Vec<Response>,
    /// Per-shard engine counters (a failed shard reports defaults).
    pub stats: Vec<ServingStats>,
    /// Shards that panicked, with the request ids they took down.
    pub failures: Vec<ShardFailure>,
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Runs `requests` across `shards` engine instances on scoped threads:
/// requests are length-bucketed ([`PaddedBatch::buckets`]), buckets are
/// dealt to the least-loaded shard (by total member count), and each
/// shard runs its own [`ContinuousBatcher`] (with its own KV arena)
/// over the shared model. Token streams are bit-identical to a single
/// engine (and to sequential decoding) and come back sorted by id,
/// alongside each shard's counters.
///
/// Shards are **fault-isolated**: a panic inside one shard (poisoned
/// weights, out-of-range tokens, a wedged datapath) is caught on that
/// shard's thread; its requests are reported in
/// [`ShardedRun::failures`] and every other shard completes normally.
///
/// # Errors
///
/// [`ServingError::ZeroShards`] / [`ServingError::ZeroSlots`] for
/// degenerate shapes, [`ServingError::EmptySource`] /
/// [`ServingError::DuplicateId`] if any request is invalid (validated
/// up front, before any shard starts).
pub fn run_sharded(
    model: &QuantSeq2Seq,
    cfg: EngineConfig,
    requests: Vec<Request>,
    shards: usize,
) -> Result<ShardedRun, ServingError> {
    if shards == 0 {
        return Err(ServingError::ZeroShards);
    }
    if cfg.max_batch == 0 {
        return Err(ServingError::ZeroSlots);
    }
    let mut ids = HashSet::new();
    for r in &requests {
        if r.src.is_empty() {
            return Err(ServingError::EmptySource { id: r.id });
        }
        if !ids.insert(r.id) {
            return Err(ServingError::DuplicateId { id: r.id });
        }
    }
    if requests.is_empty() {
        return Ok(ShardedRun {
            responses: Vec::new(),
            stats: vec![ServingStats::default(); shards],
            failures: Vec::new(),
        });
    }
    let seqs: Vec<Vec<usize>> = requests.iter().map(|r| r.src.clone()).collect();
    let buckets = PaddedBatch::buckets(&seqs, cfg.bucket_max_waste);
    let mut workloads: Vec<Vec<Request>> = (0..shards).map(|_| Vec::new()).collect();
    for bucket in &buckets {
        let lightest = (0..shards)
            .min_by_key(|&s| workloads[s].len())
            .expect("at least one shard");
        for &i in &bucket.indices {
            workloads[lightest].push(requests[i].clone());
        }
    }
    let results = tensor::par::map_with_threads(&workloads, shards, |reqs| {
        catch_unwind(AssertUnwindSafe(|| {
            let mut engine = ContinuousBatcher::new(model, cfg).expect("config validated above");
            for r in reqs {
                engine.submit(r.clone()).expect("requests validated above");
            }
            (engine.run_to_completion(), engine.stats())
        }))
        .map_err(panic_message)
    });
    let mut run = ShardedRun {
        responses: Vec::with_capacity(requests.len()),
        stats: Vec::with_capacity(shards),
        failures: Vec::new(),
    };
    for (shard, (result, reqs)) in results.into_iter().zip(&workloads).enumerate() {
        match result {
            Ok((responses, stats)) => {
                run.responses.extend(responses);
                run.stats.push(stats);
            }
            Err(message) => {
                run.stats.push(ServingStats::default());
                run.failures.push(ShardFailure {
                    shard,
                    lost_ids: reqs.iter().map(|r| r.id).collect(),
                    message,
                });
            }
        }
    }
    run.responses.sort_by_key(|r| r.id);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::model::Seq2SeqTransformer;
    use transformer::tasks::{Task, TaskGen};

    fn setup(n: usize) -> (QuantSeq2Seq, Vec<Vec<usize>>) {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(91);
        let model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
        let corpus = gen.corpus(n, &mut StdRng::seed_from_u64(92));
        let srcs = corpus.iter().map(|(s, _)| s.clone()).collect();
        (
            QuantSeq2Seq::from_trained(&model, &corpus, quantized::SoftmaxMode::Hardware),
            srcs,
        )
    }

    fn requests(srcs: &[Vec<usize>], max_new: usize) -> Vec<Request> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| Request::new(i as u64, s.clone(), max_new))
            .collect()
    }

    /// The decoded content of a response set — everything except the
    /// scheduling metadata (`first_token_step` depends on queueing).
    fn decoded(responses: &[Response]) -> Vec<(u64, Vec<usize>, bool)> {
        responses
            .iter()
            .map(|r| (r.id, r.tokens.clone(), r.hit_eos()))
            .collect()
    }

    #[test]
    fn continuous_batch_matches_sequential_greedy() {
        let (q, srcs) = setup(6);
        for max_batch in [1usize, 2, 4, 16] {
            let mut engine =
                ContinuousBatcher::new(&q, EngineConfig::with_max_batch(max_batch)).unwrap();
            for r in requests(&srcs, 8) {
                engine.submit(r).unwrap();
            }
            let responses = engine.run_to_completion();
            assert_eq!(responses.len(), srcs.len());
            for (resp, src) in responses.iter().zip(&srcs) {
                let want = q.greedy_decode_incremental(src, 8);
                assert_eq!(resp.tokens, want, "batch {max_batch}, id {}", resp.id);
            }
        }
    }

    #[test]
    fn prompted_requests_match_sequential_prompt_decode() {
        // Chunked prefill at several chunk sizes (and a tight per-step
        // prefill-row budget) must generate exactly what token-at-a-time
        // prompt ingestion generates — bit for bit.
        let (q, srcs) = setup(4);
        let prompts: Vec<Vec<usize>> = srcs
            .iter()
            .map(|s| s.iter().cycle().take(11).copied().collect())
            .collect();
        let want: Vec<Vec<usize>> = srcs
            .iter()
            .zip(&prompts)
            .map(|(s, p)| q.greedy_decode_with_prompt(s, p, 6))
            .collect();
        for (prefill_chunk, max_prefill_rows) in [(1, 64), (4, 64), (16, 64), (16, 5), (5, 0)] {
            let mut cfg = EngineConfig::with_max_batch(4);
            cfg.prefill_chunk = prefill_chunk;
            cfg.max_prefill_rows = max_prefill_rows;
            let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
            for (i, (s, p)) in srcs.iter().zip(&prompts).enumerate() {
                engine
                    .submit(Request::new(i as u64, s.clone(), 6).with_prompt(p.clone()))
                    .unwrap();
            }
            let responses = engine.run_to_completion();
            assert_eq!(responses.len(), srcs.len());
            for (resp, want) in responses.iter().zip(&want) {
                assert_eq!(
                    &resp.tokens, want,
                    "chunk {prefill_chunk}, budget {max_prefill_rows}, id {}",
                    resp.id
                );
            }
            let stats = engine.stats();
            // Every [BOS]+prompt row went through chunked prefill.
            let total_prefill: usize = prompts.iter().map(|p| 1 + p.len()).sum();
            assert_eq!(stats.prefill_rows, total_prefill);
        }
    }

    #[test]
    fn prefix_hits_skip_prefill_and_decode_bit_identically() {
        // Two engines over the same request stream — prefix cache off
        // vs on — must emit identical tokens; the warm engine's saved
        // prefill rows must be exactly its reported reuse.
        let (q, srcs) = setup(2);
        // Long enough that the prefill spans full KV pages under the
        // default 16-row page (and the CI page-stress 4-row page).
        let prompt: Vec<usize> = srcs[0].iter().cycle().take(35).copied().collect();
        let reqs = |n: usize| -> Vec<Request> {
            (0..n)
                .map(|i| Request::new(i as u64, srcs[0].clone(), 6).with_prompt(prompt.clone()))
                .collect()
        };
        let run = |prefix_budget: usize| -> (Vec<(u64, Vec<usize>, bool)>, ServingStats) {
            let mut cfg = EngineConfig::with_max_batch(1);
            cfg.prefix_cache_bytes = prefix_budget;
            let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
            // max_batch 1 serializes the requests, so every request
            // after the first finds the full prefix cached.
            for r in reqs(3) {
                engine.submit(r).unwrap();
            }
            (decoded(&engine.run_to_completion()), engine.stats())
        };
        let (cold_tokens, cold) = run(0);
        let (warm_tokens, warm) = run(usize::MAX);
        assert_eq!(warm_tokens, cold_tokens, "hits must not change tokens");
        assert_eq!(cold.prefix_hits + cold.prefix_misses, 0);
        assert_eq!(
            warm.prefix_hits, 2,
            "requests 2 and 3 attach to request 1's prefill"
        );
        assert_eq!(warm.prefix_misses, 1);
        assert!(warm.prefix_rows_reused > 0);
        assert!(warm.prefix_bytes_shared > 0);
        assert_eq!(
            cold.prefill_rows - warm.prefill_rows,
            warm.prefix_rows_reused,
            "saved prefill rows must be exactly the reported reuse"
        );
        // The sequential greedy reference pins absolute correctness.
        let want = q.greedy_decode_with_prompt(&srcs[0], &prompt, 6);
        for (_, tokens, _) in &warm_tokens {
            assert_eq!(tokens, &want);
        }
    }

    #[test]
    fn cached_prefixes_share_pages_and_obey_the_budget() {
        let (q, srcs) = setup(2);
        let prompt: Vec<usize> = srcs[0].iter().cycle().take(35).copied().collect();
        let mut cfg = EngineConfig::with_max_batch(1);
        cfg.prefix_cache_bytes = usize::MAX;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        engine
            .submit(Request::new(0, srcs[0].clone(), 4).with_prompt(prompt.clone()))
            .unwrap();
        let _ = engine.run_to_completion();
        assert!(engine.prefix_cache_entries() >= 1);
        let resident_one = engine.kv_bytes_in_use();
        assert!(resident_one > 0, "the cached snapshot holds pages");
        assert_eq!(resident_one, engine.prefix_cache_bytes());

        // A second identical request forks the snapshot: its prefill
        // attaches to the cached pages instead of re-materializing
        // them, so the high-water mark stays far below 2x.
        let peak_before = engine.stats().kv_bytes_peak;
        engine
            .submit(Request::new(1, srcs[0].clone(), 4).with_prompt(prompt.clone()))
            .unwrap();
        let _ = engine.run_to_completion();
        assert_eq!(engine.stats().prefix_hits, 1);
        let peak_after = engine.stats().kv_bytes_peak;
        assert!(
            peak_after < peak_before + resident_one,
            "shared prefix must not pay its KV bytes twice (peak {peak_before} -> {peak_after}, entry {resident_one})"
        );

        // Dropping the cache returns every page not held by a live
        // session.
        engine.clear_prefix_cache();
        assert_eq!(engine.prefix_cache_entries(), 0);
        assert_eq!(engine.kv_bytes_in_use(), 0);

        // A zero budget behaves exactly like the seed engine.
        let mut cfg = EngineConfig::with_max_batch(1);
        cfg.prefix_cache_bytes = 0;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        engine
            .submit(Request::new(0, srcs[0].clone(), 4).with_prompt(prompt))
            .unwrap();
        let _ = engine.run_to_completion();
        assert_eq!(engine.prefix_cache_entries(), 0);
        assert_eq!(engine.kv_bytes_in_use(), 0);
    }

    #[test]
    fn prefill_budget_paces_prompt_ingestion() {
        // With a 4-row/step budget, 2 prompts of 11 (+BOS = 24 rows)
        // need at least 6 steps of prefill; with chunk 1 a lone request
        // records its first token at exactly step `1 + prompt len`.
        let (q, srcs) = setup(2);
        let prompt: Vec<usize> = srcs[0].iter().cycle().take(11).copied().collect();
        let mut cfg = EngineConfig::with_max_batch(2);
        cfg.prefill_chunk = 4;
        cfg.max_prefill_rows = 4;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        for (i, s) in srcs.iter().enumerate() {
            engine
                .submit(Request::new(i as u64, s.clone(), 4).with_prompt(prompt.clone()))
                .unwrap();
        }
        let _ = engine.run_to_completion();
        assert!(engine.stats().steps >= 6, "steps {}", engine.stats().steps);

        let mut cfg = EngineConfig::with_max_batch(1);
        cfg.prefill_chunk = 1;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        engine
            .submit(Request::new(9, srcs[0].clone(), 4).with_prompt(prompt.clone()))
            .unwrap();
        let responses = engine.run_to_completion();
        assert_eq!(responses[0].first_token_step, Some(prompt.len()));
    }

    #[test]
    fn kv_pages_are_recycled_after_retirement() {
        let (q, srcs) = setup(6);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(2)).unwrap();
        for r in requests(&srcs, 8) {
            engine.submit(r).unwrap();
        }
        assert_eq!(engine.kv_bytes_in_use(), 0);
        let _ = engine.run_to_completion();
        let stats = engine.stats();
        assert!(stats.kv_bytes_peak > 0, "decoding must page KV in");
        assert_eq!(
            stats.kv_bytes_in_use, 0,
            "every retired session's pages go back to the free list"
        );
        assert_eq!(engine.kv_bytes_in_use(), 0);
    }

    #[test]
    fn fusion_counters_surface_alongside_kv_bytes() {
        let (q, srcs) = setup(6);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(2)).unwrap();
        for r in requests(&srcs, 4) {
            engine.submit(r).unwrap();
        }
        let _ = engine.run_to_completion();
        let stats = engine.stats();
        if tensor::envcfg::fuse_enabled() {
            // Every decode ResBlock pass fuses at least the Wo → residual
            // drain, so a full run must report fused work and the bytes
            // its elided intermediates would have cost.
            assert!(stats.ops_fused > 0, "fused drains must be counted");
            assert!(stats.intermediates_elided_bytes > 0);
        } else {
            assert_eq!(stats.ops_fused, 0, "ACCEL_NO_FUSE must zero the counters");
            assert_eq!(stats.intermediates_elided_bytes, 0);
        }
        // merge() rolls the new counters up like the KV byte counters.
        let mut merged = ServingStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.ops_fused, 2 * stats.ops_fused);
        assert_eq!(
            merged.intermediates_elided_bytes,
            2 * stats.intermediates_elided_bytes
        );
    }

    #[test]
    fn slots_are_refilled_after_retirement() {
        let (q, srcs) = setup(6);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(2)).unwrap();
        for r in requests(&srcs, 8) {
            engine.submit(r).unwrap();
        }
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 6);
        let stats = engine.stats();
        assert_eq!(stats.admitted, 6);
        assert_eq!(stats.retired, 6);
        assert!(stats.peak_batch <= 2);
        // 6 requests through 2 slots requires several waves of admission.
        assert!(stats.steps >= 3, "steps {}", stats.steps);
        assert!(stats.occupancy(2) > 0.0);
    }

    #[test]
    fn ignore_eos_generates_exactly_the_budget() {
        let (q, srcs) = setup(3);
        let mut cfg = EngineConfig::with_max_batch(4);
        cfg.ignore_eos = true;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        for r in requests(&srcs, 5) {
            engine.submit(r).unwrap();
        }
        for resp in engine.run_to_completion() {
            assert_eq!(resp.tokens.len(), 5);
            assert!(!resp.hit_eos());
            assert_eq!(resp.first_token_step, Some(0));
        }
    }

    #[test]
    fn zero_budget_requests_finish_immediately() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::default()).unwrap();
        engine.submit(Request::new(7, srcs[0].clone(), 0)).unwrap();
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].tokens.is_empty());
        assert_eq!(engine.stats().steps, 0);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_single_engine() {
        let (q, srcs) = setup(8);
        let cfg = EngineConfig::with_max_batch(4);
        let mut single = ContinuousBatcher::new(&q, cfg).unwrap();
        for r in requests(&srcs, 8) {
            single.submit(r).unwrap();
        }
        let want = decoded(&single.run_to_completion());
        for shards in [1usize, 2, 3, 8] {
            let run = run_sharded(&q, cfg, requests(&srcs, 8), shards).unwrap();
            assert_eq!(decoded(&run.responses), want, "shards {shards}");
            assert_eq!(run.stats.len(), shards);
            assert!(run.failures.is_empty());
            let mut total = ServingStats::default();
            for s in &run.stats {
                total.merge(s);
            }
            assert_eq!(total.retired, srcs.len());
        }
    }

    #[test]
    fn zero_slots_rejected() {
        let (q, _) = setup(2);
        assert_eq!(
            ContinuousBatcher::new(&q, EngineConfig::with_max_batch(0)).err(),
            Some(ServingError::ZeroSlots)
        );
        assert_eq!(
            run_sharded(&q, EngineConfig::with_max_batch(0), Vec::new(), 2).err(),
            Some(ServingError::ZeroSlots)
        );
    }

    #[test]
    fn zero_shards_rejected() {
        let (q, srcs) = setup(2);
        assert_eq!(
            run_sharded(&q, EngineConfig::default(), requests(&srcs, 4), 0).err(),
            Some(ServingError::ZeroShards)
        );
    }

    #[test]
    fn empty_source_rejected() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::default()).unwrap();
        assert_eq!(
            engine.submit(Request::new(0, vec![], 4)).err(),
            Some(ServingError::EmptySource { id: 0 })
        );
        let bad = vec![
            Request::new(3, srcs[0].clone(), 4),
            Request::new(4, vec![], 4),
        ];
        assert_eq!(
            run_sharded(&q, EngineConfig::default(), bad, 2).err(),
            Some(ServingError::EmptySource { id: 4 })
        );
    }

    #[test]
    fn duplicate_ids_rejected() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::default()).unwrap();
        engine.submit(Request::new(5, srcs[0].clone(), 4)).unwrap();
        assert_eq!(
            engine.submit(Request::new(5, srcs[1].clone(), 4)).err(),
            Some(ServingError::DuplicateId { id: 5 })
        );
        let dup = vec![
            Request::new(9, srcs[0].clone(), 4),
            Request::new(9, srcs[1].clone(), 4),
        ];
        assert_eq!(
            run_sharded(&q, EngineConfig::default(), dup, 2).err(),
            Some(ServingError::DuplicateId { id: 9 })
        );
    }

    #[test]
    fn deadline_cuts_a_request_short() {
        let (q, srcs) = setup(3);
        let mut cfg = EngineConfig::with_max_batch(4);
        cfg.ignore_eos = true; // make every request want its full budget
        cfg.deadline_steps = Some(2);
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        for r in requests(&srcs, 8) {
            engine.submit(r).unwrap();
        }
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), srcs.len());
        for resp in &responses {
            assert_eq!(resp.tokens.len(), 2, "id {}", resp.id);
            assert!(!resp.hit_eos());
        }
        assert_eq!(engine.stats().deadline_expired, srcs.len());
        // The generated prefix is still bit-identical to an undeadlined
        // decode — the deadline truncates, it never perturbs.
        for (resp, src) in responses.iter().zip(&srcs) {
            let want = q.greedy_decode_incremental(src, 8);
            let n = resp.tokens.len().min(want.len());
            assert_eq!(&resp.tokens[..n], &want[..n]);
        }
    }

    #[test]
    fn per_request_deadline_overrides_config() {
        let (q, srcs) = setup(2);
        let mut cfg = EngineConfig::with_max_batch(2);
        cfg.ignore_eos = true;
        cfg.deadline_steps = Some(6);
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        let mut tight = Request::new(0, srcs[0].clone(), 8);
        tight.deadline_steps = Some(1);
        engine.submit(tight).unwrap();
        engine.submit(Request::new(1, srcs[1].clone(), 8)).unwrap();
        let responses = engine.run_to_completion();
        assert_eq!(responses[0].tokens.len(), 1);
        assert_eq!(responses[1].tokens.len(), 6);
    }

    #[test]
    fn panicking_shard_is_isolated() {
        let (q, srcs) = setup(4);
        let cfg = EngineConfig::with_max_batch(2);
        // An out-of-vocab token panics inside that shard's embedding
        // lookup; the huge length keeps it in its own bucket (and so its
        // own shard) away from the well-formed requests.
        let mut reqs = requests(&srcs, 6);
        reqs.push(Request::new(99, vec![usize::MAX / 2; 64], 6));
        let run = run_sharded(&q, cfg, reqs, 2).unwrap();
        assert_eq!(run.failures.len(), 1);
        assert!(run.failures[0].lost_ids.contains(&99));
        let lost: HashSet<u64> = run.failures[0].lost_ids.iter().copied().collect();
        // Every request outside the failed shard came back, bit-identical
        // to a sequential decode.
        for (i, src) in srcs.iter().enumerate() {
            if lost.contains(&(i as u64)) {
                continue;
            }
            let resp = run
                .responses
                .iter()
                .find(|r| r.id == i as u64)
                .expect("surviving shard's response");
            assert_eq!(resp.tokens, q.greedy_decode_incremental(src, 6));
        }
        assert_eq!(run.responses.len() + lost.len(), srcs.len() + 1);
    }

    #[test]
    fn bounded_queue_sheds_instead_of_growing() {
        let (q, srcs) = setup(4);
        let mut cfg = EngineConfig::with_max_batch(1);
        cfg.max_queue = 2;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        engine.submit(Request::new(0, srcs[0].clone(), 4)).unwrap();
        engine.submit(Request::new(1, srcs[1].clone(), 4)).unwrap();
        assert_eq!(
            engine.submit(Request::new(2, srcs[2].clone(), 4)).err(),
            Some(ServingError::QueueFull { id: 2 }),
            "third request must be shed, not queued"
        );
        assert_eq!(engine.stats().shed, 1);
        assert_eq!(engine.pending_len(), 2);
        // A shed id is not burned: once the queue drains, the same id
        // resubmits cleanly (retry-after-backoff).
        let _ = engine.run_to_completion();
        engine.submit(Request::new(2, srcs[2].clone(), 4)).unwrap();
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].id, 2);
        assert_eq!(
            responses[0].tokens,
            q.greedy_decode_incremental(&srcs[2], 4)
        );
        assert_eq!(engine.kv_bytes_in_use(), 0);
    }

    #[test]
    fn expired_in_queue_retires_without_touching_a_slot() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(2)).unwrap();
        engine
            .submit(Request::new(0, srcs[0].clone(), 4).with_deadline_ms(0))
            .unwrap();
        engine.submit(Request::new(1, srcs[1].clone(), 4)).unwrap();
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].finish, FinishReason::Deadline);
        assert!(responses[0].tokens.is_empty());
        assert_eq!(responses[0].first_token_step, None);
        assert_ne!(responses[1].finish, FinishReason::Deadline);
        let stats = engine.stats();
        assert_eq!(stats.expired_in_queue, 1);
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.admitted, 1, "the expired request never held a slot");
        assert_eq!(engine.kv_bytes_in_use(), 0, "no KV page was ever charged");
        // The survivor decodes bit-identically to running alone.
        assert_eq!(
            responses[1].tokens,
            q.greedy_decode_incremental(&srcs[1], 4)
        );
    }

    #[test]
    fn generous_wall_deadline_never_preempts() {
        let (q, srcs) = setup(2);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(2)).unwrap();
        for (i, s) in srcs.iter().enumerate() {
            engine
                .submit(Request::new(i as u64, s.clone(), 6).with_deadline_ms(3_600_000))
                .unwrap();
        }
        let responses = engine.run_to_completion();
        for (resp, src) in responses.iter().zip(&srcs) {
            assert_eq!(resp.tokens, q.greedy_decode_incremental(src, 6));
        }
        assert_eq!(engine.stats().deadline_expired, 0);
    }

    #[test]
    fn cancel_drops_queued_and_inflight_without_responses() {
        let (q, srcs) = setup(3);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(1)).unwrap();
        for (i, s) in srcs.iter().enumerate() {
            engine.submit(Request::new(i as u64, s.clone(), 8)).unwrap();
        }
        // One step admits request 0 into the single slot; 1 and 2 wait.
        assert!(engine.step());
        assert!(engine.kv_bytes_in_use() > 0);
        assert!(engine.cancel(0), "in-flight request cancels");
        assert_eq!(
            engine.kv_bytes_in_use(),
            0,
            "cancelling the only in-flight request frees its KV pages"
        );
        assert!(engine.cancel(1), "queued request cancels");
        assert!(!engine.cancel(99), "unknown id is a no-op");
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), 1, "cancelled requests answer nobody");
        assert_eq!(responses[0].id, 2);
        assert_eq!(
            responses[0].tokens,
            q.greedy_decode_incremental(&srcs[2], 8)
        );
        assert_eq!(engine.stats().cancelled, 2);
        assert_eq!(engine.kv_bytes_in_use(), 0);
        assert!(!engine.cancel(2), "finished id is a no-op");
    }

    #[test]
    fn emitted_stream_matches_responses() {
        let (q, srcs) = setup(3);
        let mut engine = ContinuousBatcher::new(&q, EngineConfig::with_max_batch(2)).unwrap();
        for (i, s) in srcs.iter().enumerate() {
            engine.submit(Request::new(i as u64, s.clone(), 5)).unwrap();
        }
        let mut streamed: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        let mut finished = Vec::new();
        while engine.step() {
            for (id, tok) in engine.drain_emitted() {
                streamed.entry(id).or_default().push(tok);
            }
            finished.extend(engine.drain_finished());
        }
        finished.extend(engine.drain_finished());
        assert_eq!(finished.len(), srcs.len());
        for resp in &finished {
            let got = streamed.remove(&resp.id).unwrap_or_default();
            assert_eq!(got, resp.tokens, "id {}", resp.id);
        }
        assert!(streamed.is_empty(), "no tokens for unknown ids");
    }

    #[test]
    fn merge_round_trips_every_counter() {
        // Each field gets a distinct value so a merge that drops or
        // cross-wires any counter — including the front-door additions
        // (shed / expired_in_queue / cancelled) — fails loudly.
        let a = ServingStats {
            steps: 1,
            rows: 2,
            prefill_rows: 3,
            tokens_generated: 4,
            peak_batch: 5,
            admitted: 6,
            retired: 7,
            kv_bytes_in_use: 8,
            kv_bytes_peak: 9,
            faulty_steps: 10,
            retries: 11,
            quarantined: 12,
            deadline_expired: 13,
            shed: 14,
            expired_in_queue: 15,
            cancelled: 16,
            ops_fused: 17,
            intermediates_elided_bytes: 18,
            prefix_hits: 19,
            prefix_misses: 20,
            prefix_rows_reused: 21,
            prefix_bytes_shared: 22,
        };
        let mut m = ServingStats::default();
        m.merge(&a);
        assert_eq!(m, a, "merging into zero must reproduce the source");
        m.merge(&a);
        let mut want = a;
        // Everything is additive except the high-water mark.
        want.steps *= 2;
        want.rows *= 2;
        want.prefill_rows *= 2;
        want.tokens_generated *= 2;
        want.admitted *= 2;
        want.retired *= 2;
        want.kv_bytes_in_use *= 2;
        want.kv_bytes_peak *= 2;
        want.faulty_steps *= 2;
        want.retries *= 2;
        want.quarantined *= 2;
        want.deadline_expired *= 2;
        want.shed *= 2;
        want.expired_in_queue *= 2;
        want.cancelled *= 2;
        want.ops_fused *= 2;
        want.intermediates_elided_bytes *= 2;
        want.prefix_hits *= 2;
        want.prefix_misses *= 2;
        want.prefix_rows_reused *= 2;
        want.prefix_bytes_shared *= 2;
        assert_eq!(m, want);
    }
}
