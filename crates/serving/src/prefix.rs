//! Radix (token-trie) index of reusable KV-cache prefixes.
//!
//! Serving workloads repeat prompt prefixes constantly — shared system
//! prompts, few-shot templates, multi-turn histories. Recomputing the
//! prefill for a prefix the engine already ran wastes both array cycles
//! and KV-pool bytes. This module caches **page-aligned session
//! snapshots** keyed on token ids: an entry is a forked
//! [`QuantIncrementalSession`] whose paged self-attention K/V rows are
//! *shared* (refcounted, copy-on-write — see `tensor::kvpool`) with the
//! live session it was forked from, so a cached prefix costs ~1× its KV
//! bytes no matter how many sessions later attach to it.
//!
//! Keys are `src ++ [SRC_SEP] ++ consumed-target-tokens`. The source
//! sentence participates because every decoder layer's **cross**-
//! attention K/V derive from the encoder memory: a target prefix is
//! only reusable under the *exact* source that produced it. The
//! separator keeps `src = [a, b]` + target `[c]` distinct from
//! `src = [a]` + target `[b, c]`.
//!
//! Entries are stored only at **page-aligned** target depths (the
//! engine rolls snapshots back to a page boundary before inserting), so
//! a whole-entry hit shares pages and copies nothing. Lookup walks the
//! trie along the request's key to the deepest *matched* node — the
//! longest common prefix with anything cached — and then reuses **any**
//! entry in that node's subtree: an entry whose key extends the matched
//! prefix agrees with the request on every matched row, so the caller
//! forks it and rolls the fork back to the divergence point
//! (copy-on-write protects the entry's pages; rolled-back rows merely
//! drop refcounts). This is what makes the classic shared-preamble
//! workload (common system prompt, distinct per-request tails) hit: the
//! first request's snapshot serves every later request up to the
//! divergence. Eviction is LRU over entries under a byte budget
//! ([`PrefixIndex::new`]); evicting an entry releases its fork, which
//! only returns pages whose refcount drops to zero — pages still shared
//! with live sessions survive untouched.

use std::collections::HashMap;

use quantized::incremental::{KvArena, QuantIncrementalSession};

/// Separator token between the source sentence and the consumed
/// target-side tokens in a prefix key. `usize::MAX` cannot collide with
/// a vocabulary id (token ids index embedding rows).
pub const SRC_SEP: usize = usize::MAX;

/// Builds the trie key for a request: `src ++ [SRC_SEP] ++ target`,
/// where `target` is the consumed target-side row stream
/// (`[BOS] + prompt`).
pub fn prefix_key(src: &[usize], target: &[usize]) -> Vec<usize> {
    let mut key = Vec::with_capacity(src.len() + 1 + target.len());
    key.extend_from_slice(src);
    key.push(SRC_SEP);
    key.extend_from_slice(target);
    key
}

/// One cached prefix: a page-aligned forked session plus bookkeeping.
struct Entry {
    session: QuantIncrementalSession,
    /// Consumed target rows (`session.pos()`), page-aligned.
    rows: usize,
    /// Logical resident KV bytes charged against the budget.
    bytes: usize,
    /// LRU stamp (monotone per index; unique, so it doubles as an
    /// entry id during eviction).
    last_used: u64,
}

/// A trie node, one child per token id.
#[derive(Default)]
struct Node {
    children: HashMap<usize, Node>,
    entry: Option<Entry>,
}

/// The prefix cache: a token trie whose nodes may hold session
/// snapshots, bounded by a byte budget with LRU eviction.
pub struct PrefixIndex {
    root: Node,
    /// Byte budget; `0` disables the index entirely.
    budget: usize,
    bytes: usize,
    entries: usize,
    tick: u64,
}

impl std::fmt::Debug for PrefixIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixIndex")
            .field("budget", &self.budget)
            .field("bytes", &self.bytes)
            .field("entries", &self.entries)
            .finish()
    }
}

impl PrefixIndex {
    /// An index bounded to `budget` logical KV bytes (`0` disables it:
    /// every lookup misses and every insert is dropped).
    pub fn new(budget: usize) -> Self {
        Self {
            root: Node::default(),
            budget,
            bytes: 0,
            entries: 0,
            tick: 0,
        }
    }

    /// Whether the index accepts entries at all.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// Logical KV bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Cached prefixes currently held.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Longest reusable cached prefix of `key`, bumping the serving
    /// entry's LRU stamp. Returns the snapshot to fork and the number of
    /// its leading target rows that are valid for this request — the
    /// snapshot may hold *more* rows (it came from a prompt that shares
    /// only a preamble with this one); the caller must roll the fork
    /// back to the returned count before ingesting its suffix.
    /// Copy-on-write makes that safe for the entry's own pages.
    ///
    /// Callers cap `max_rows` at one *less* than the full consumed-row
    /// count: a session must re-ingest at least one row to produce the
    /// logits the next token is sampled from.
    pub fn lookup(
        &mut self,
        key: &[usize],
        max_rows: usize,
    ) -> Option<(&QuantIncrementalSession, usize)> {
        if max_rows == 0 {
            return None;
        }
        let sep = key.iter().position(|&t| t == SRC_SEP)?;
        // Pass 1 (shared): walk the longest stored prefix of `key`.
        let mut node = &self.root;
        let mut depth = 0;
        while depth < key.len() {
            match node.children.get(&key[depth]) {
                Some(next) => {
                    node = next;
                    depth += 1;
                }
                None => break,
            }
        }
        // Matching must reach past the separator: a target row is only
        // reusable under the exact source that produced it.
        let usable = depth.saturating_sub(sep + 1).min(max_rows);
        if usable == 0 {
            return None;
        }
        // Every entry in the matched node's subtree agrees with this
        // request on its first `usable` rows (entry keys extend the
        // matched prefix, and entries at or below the matched node hold
        // at least that many rows). The shallowest one minimizes the
        // caller's rollback.
        let rel = shallowest_entry(node)?;
        // Pass 2 (exclusive): walk to it, stamp, hand the session out.
        self.tick += 1;
        let mut node = &mut self.root;
        for tok in key[..depth].iter().chain(rel.iter()) {
            node = node.children.get_mut(tok).expect("walked in pass 1");
        }
        let e = node.entry.as_mut().expect("found in pass 1");
        debug_assert!(e.rows >= usable, "subtree entries hold >= matched rows");
        e.last_used = self.tick;
        Some((&e.session, usable))
    }

    /// Whether an entry is stored at exactly `key`.
    pub fn contains(&self, key: &[usize]) -> bool {
        let mut node = &self.root;
        for tok in key {
            match node.children.get(tok) {
                Some(next) => node = next,
                None => return false,
            }
        }
        node.entry.is_some()
    }

    /// Inserts a page-aligned snapshot at `key`, evicting LRU entries
    /// until the budget holds. The snapshot is released (not stored) if
    /// the index is disabled, the snapshot holds no rows, it alone
    /// exceeds the budget, or `key` is already present — the caller
    /// never has to clean up. Returns whether the snapshot was kept.
    pub fn insert(
        &mut self,
        key: &[usize],
        mut session: QuantIncrementalSession,
        arena: &mut KvArena,
    ) -> bool {
        let rows = session.pos();
        let bytes = session.resident_kv_bytes(arena);
        if !self.enabled() || rows == 0 || bytes > self.budget || self.contains(key) {
            session.release(arena);
            return false;
        }
        self.tick += 1;
        let mut node = &mut self.root;
        for tok in key {
            node = node.children.entry(*tok).or_default();
        }
        debug_assert!(node.entry.is_none(), "contains() checked above");
        node.entry = Some(Entry {
            session,
            rows,
            bytes,
            last_used: self.tick,
        });
        self.bytes += bytes;
        self.entries += 1;
        // The fresh entry carries the newest stamp, so eviction reaches
        // it last — and never needs to, since bytes <= budget held.
        while self.bytes > self.budget {
            self.evict_lru(arena);
        }
        true
    }

    /// Evicts the least-recently-used entry, releasing its fork into
    /// `arena` (shared pages survive via their refcounts) and pruning
    /// the trie path it occupied. No-op on an empty index.
    fn evict_lru(&mut self, arena: &mut KvArena) {
        let Some(tick) = min_tick(&self.root) else {
            return;
        };
        let mut entry = remove_tick(&mut self.root, tick).expect("min tick exists");
        entry.session.release(arena);
        self.bytes -= entry.bytes;
        self.entries -= 1;
    }

    /// Drops every entry, releasing all forks into `arena`.
    pub fn clear(&mut self, arena: &mut KvArena) {
        while self.entries > 0 {
            self.evict_lru(arena);
        }
    }
}

/// Path (token sequence) from `node` down to its shallowest entry,
/// ties broken toward smaller tokens so the choice is deterministic.
/// `None` only for an entry-free subtree, which the pruning in
/// [`remove_tick`] never leaves behind below the root.
fn shallowest_entry(node: &Node) -> Option<Vec<usize>> {
    if node.entry.is_some() {
        return Some(Vec::new());
    }
    let mut toks: Vec<usize> = node.children.keys().copied().collect();
    toks.sort_unstable();
    let mut best: Option<Vec<usize>> = None;
    for t in toks {
        if let Some(mut p) = shallowest_entry(&node.children[&t]) {
            p.insert(0, t);
            if best.as_ref().is_none_or(|b| p.len() < b.len()) {
                best = Some(p);
            }
        }
    }
    best
}

/// Smallest LRU stamp in the subtree, if any entry exists.
fn min_tick(node: &Node) -> Option<u64> {
    let mut m = node.entry.as_ref().map(|e| e.last_used);
    for child in node.children.values() {
        m = match (m, min_tick(child)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
    }
    m
}

/// Removes the entry stamped `tick` (stamps are unique) and prunes any
/// node chain the removal leaves empty.
fn remove_tick(node: &mut Node, tick: u64) -> Option<Entry> {
    if node.entry.as_ref().is_some_and(|e| e.last_used == tick) {
        return node.entry.take();
    }
    let mut found = None;
    let mut empty_child = None;
    for (tok, child) in node.children.iter_mut() {
        if let Some(e) = remove_tick(child, tick) {
            if child.entry.is_none() && child.children.is_empty() {
                empty_child = Some(*tok);
            }
            found = Some(e);
            break;
        }
    }
    if let Some(tok) = empty_child {
        node.children.remove(&tok);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use quantized::QuantSeq2Seq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::model::Seq2SeqTransformer;
    use transformer::tasks::{Task, TaskGen, BOS};

    fn tiny_model() -> QuantSeq2Seq {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(5);
        let model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 6);
        let corpus = gen.corpus(4, &mut StdRng::seed_from_u64(6));
        QuantSeq2Seq::from_trained(&model, &corpus, quantized::SoftmaxMode::Hardware)
    }

    /// Runs `target` rows into a fresh session and rolls back to a page
    /// boundary — the exact snapshot shape the engine inserts.
    fn aligned_snapshot(
        model: &QuantSeq2Seq,
        arena: &mut KvArena,
        src: &[usize],
        target: &[usize],
    ) -> (QuantIncrementalSession, usize) {
        let mut s = model.start_session(arena, src);
        let mut sess = vec![&mut s];
        let _ = model.prefill_sessions(arena, &mut sess, &[target]);
        let page = arena.page_rows();
        let aligned = (target.len() / page) * page;
        if target.len() > aligned {
            s.rollback_rows(arena, target.len() - aligned);
        }
        (s, aligned)
    }

    #[test]
    fn key_separator_disambiguates_src_target_split() {
        let a = prefix_key(&[1, 2], &[3]);
        let b = prefix_key(&[1], &[2, 3]);
        assert_ne!(a, b);
        assert_eq!(a, vec![1, 2, SRC_SEP, 3]);
    }

    #[test]
    fn lookup_finds_longest_aligned_prefix_and_caps_rows() {
        let model = tiny_model();
        let mut arena = KvArena::with_page_rows(model.tgt_embedding().d_model(), 2);
        let mut index = PrefixIndex::new(usize::MAX);
        let src = vec![1, 2, 3];
        let target = vec![BOS, 7, 8, 9, 7, 8]; // 6 rows, pages of 2
        for rows in [2usize, 4] {
            let (snap, aligned) = aligned_snapshot(&model, &mut arena, &src, &target[..rows]);
            assert_eq!(aligned, rows);
            assert!(index.insert(&prefix_key(&src, &target[..rows]), snap, &mut arena));
        }
        assert_eq!(index.entries(), 2);

        // The deepest stored prefix wins.
        let key = prefix_key(&src, &target);
        let (_, rows) = index.lookup(&key, target.len() - 1).expect("hit");
        assert_eq!(rows, 4);
        // Capping trims the reuse below the deepest entry's rows: the
        // caller forks the snapshot and rolls it back to the cap.
        let (snap, rows) = index.lookup(&key, 3).expect("hit");
        assert_eq!(rows, 3);
        assert!(
            snap.pos() >= rows,
            "snapshot holds at least the reused rows"
        );
        // A different source misses even with an identical target: the
        // cross-attention K/V under the hood belong to `src` alone.
        assert!(index.lookup(&prefix_key(&[2, 2, 2], &target), 5).is_none());

        index.clear(&mut arena);
        assert_eq!(arena.kv_bytes_in_use(), 0, "clear released every fork");
    }

    #[test]
    fn diverged_tails_reuse_the_shared_preamble() {
        let model = tiny_model();
        let mut arena = KvArena::with_page_rows(model.tgt_embedding().d_model(), 2);
        let mut index = PrefixIndex::new(usize::MAX);
        let src = vec![1, 2, 3];
        let a = vec![BOS, 7, 8, 9, 7, 8]; // cached in full (6 rows)
        let b = vec![BOS, 7, 8, 9, 5, 5, 5]; // shares only 4 leading rows
        let (snap, aligned) = aligned_snapshot(&model, &mut arena, &src, &a);
        assert_eq!(aligned, 6);
        assert!(index.insert(&prefix_key(&src, &a), snap, &mut arena));

        // The walk diverges after `[BOS, 7, 8, 9]`; the cached deeper
        // snapshot still serves those four rows (fork + roll back).
        let (snap, rows) = index
            .lookup(&prefix_key(&src, &b), b.len() - 1)
            .expect("preamble must hit");
        assert_eq!(rows, 4);
        assert_eq!(snap.pos(), 6, "entry itself is untrimmed");

        index.clear(&mut arena);
        assert_eq!(arena.kv_bytes_in_use(), 0);
    }

    #[test]
    fn disabled_index_stores_nothing_and_releases_the_offered_fork() {
        let model = tiny_model();
        let mut arena = KvArena::with_page_rows(model.tgt_embedding().d_model(), 2);
        let mut index = PrefixIndex::new(0);
        assert!(!index.enabled());
        let (snap, _) = aligned_snapshot(&model, &mut arena, &[1, 2], &[BOS, 5, 6, 7]);
        assert!(!index.insert(&prefix_key(&[1, 2], &[BOS, 5, 6, 7]), snap, &mut arena));
        assert_eq!(index.entries(), 0);
        assert_eq!(arena.kv_bytes_in_use(), 0, "rejected fork must be released");
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let model = tiny_model();
        let mut arena = KvArena::with_page_rows(model.tgt_embedding().d_model(), 2);
        let src = vec![4, 5, 6];
        let target = vec![BOS, 3, 9, 3, 9, 3];
        // Budget sized for exactly two 2-row entries.
        let (probe, _) = aligned_snapshot(&model, &mut arena, &src, &target[..2]);
        let entry_bytes = probe.resident_kv_bytes(&arena);
        {
            let mut probe = probe;
            probe.release(&mut arena);
        }
        let mut index = PrefixIndex::new(2 * entry_bytes);

        let srcs = [vec![4, 5, 6], vec![5, 6, 7], vec![6, 7, 8]];
        for s in &srcs {
            let (snap, _) = aligned_snapshot(&model, &mut arena, s, &target[..2]);
            assert!(index.insert(&prefix_key(s, &target[..2]), snap, &mut arena));
        }
        // Third insert evicted the first (LRU) entry.
        assert_eq!(index.entries(), 2);
        assert!(index.bytes() <= 2 * entry_bytes);
        assert!(index.lookup(&prefix_key(&srcs[0], &target), 5).is_none());
        assert!(index.lookup(&prefix_key(&srcs[1], &target), 5).is_some());

        // Touching srcs[1] then inserting again must evict srcs[2].
        let (snap, _) = aligned_snapshot(&model, &mut arena, &[7, 8, 9], &target[..2]);
        assert!(index.insert(&prefix_key(&[7, 8, 9], &target[..2]), snap, &mut arena));
        assert!(index.lookup(&prefix_key(&srcs[1], &target), 5).is_some());
        assert!(index.lookup(&prefix_key(&srcs[2], &target), 5).is_none());

        index.clear(&mut arena);
        assert_eq!(arena.kv_bytes_in_use(), 0);
    }
}
