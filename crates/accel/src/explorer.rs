//! Cross-backend design-space explorer: evaluates every configured
//! [`Backend`] on the shared MHA/FFN graphs and extracts the
//! cycles × area × accuracy Pareto front.
//!
//! This generalises [`crate::sweep`] (which walks the paper backend's
//! own `(model, s)` grid) to *heterogeneous* backends: each candidate is
//! lowered from the same [`graph::mha_graph`] / [`graph::ffn_graph`]
//! builders, costed with its own cycle and area models, and — for the
//! lossy circulant backend — scored against the bit-exact quantized
//! reference through the SQNR harness. Dominance runs over three
//! minimised objectives via [`crate::pareto`]:
//!
//! 1. `cycles` — the backend's cycle count for the ResBlock;
//! 2. `lut` — total LUTs of the backend instance;
//! 3. `noise_power` — relative noise power vs the reference
//!    (`10^(-SQNR/10)`; exactly `0.0` for bit-exact backends).
//!
//! The `backends` bench binary serialises an [`ExplorerReport`] to
//! `results/BENCH_backends.json` (schema documented in the README).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use transformer::ffn::FfnResBlock;

use graph::{ffn_graph, mha_graph, GraphConfig};
use quantized::sqnr::sqnr_db;
use quantized::QuantFfnResBlock;

use crate::backend::{Backend, BackendProgram};
use crate::circulant::{circulantize_ffn, CirculantBackend, CirculantConfig};
use crate::config::AccelConfig;
use crate::tiled::{TiledBackend, TiledConfig};
use crate::PaperBackend;

/// One evaluated (backend, ResBlock) candidate.
#[derive(Debug, Clone, Serialize)]
pub struct BackendPoint {
    /// Backend name (`caps().name`).
    pub backend: String,
    /// `"mha"` or `"ffn"`.
    pub workload: String,
    /// Human-readable configuration summary.
    pub config: String,
    /// PE-grid rows (FFT lanes for the circulant unit).
    pub rows: usize,
    /// PE-grid columns.
    pub cols: usize,
    /// Cycle count of the lowered program.
    pub cycles: u64,
    /// Latency at the configuration's clock (µs).
    pub latency_us: f64,
    /// Total LUTs.
    pub lut: f64,
    /// Total flip-flops.
    pub ff: f64,
    /// Total BRAM36 blocks.
    pub bram: f64,
    /// Total DSP slices.
    pub dsp: f64,
    /// DDR traffic of the program (bytes; `0` for backends with the
    /// working set resident on chip).
    pub ddr_bytes: u64,
    /// Weight-parameter compression factor (`1.0` = dense).
    pub weight_compression: f64,
    /// Whether the backend is bit-exact against the quantized
    /// reference.
    pub exact: bool,
    /// Measured SQNR vs the reference (dB) for lossy backends.
    pub sqnr_db: Option<f64>,
    /// Relative noise power (`10^(-SQNR/10)`, `0.0` when exact) — the
    /// accuracy objective.
    pub noise_power: f64,
}

/// The explorer's output: every candidate plus the per-ResBlock Pareto
/// fronts.
#[derive(Debug, Clone, Serialize)]
pub struct ExplorerReport {
    /// All evaluated candidates.
    pub points: Vec<BackendPoint>,
    /// Front over the MHA candidates (cycles × LUT × noise).
    pub mha_front: Vec<BackendPoint>,
    /// Front over the FFN candidates.
    pub ffn_front: Vec<BackendPoint>,
}

impl ExplorerReport {
    /// Distinct backend names appearing on a front.
    pub fn front_backends(front: &[BackendPoint]) -> Vec<String> {
        let mut names: Vec<String> = front.iter().map(|p| p.backend.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

/// What to explore.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Model, workload length (`base.s`), clock and policy shared by
    /// every candidate.
    pub base: AccelConfig,
    /// Square tiled-SA grids to evaluate (`R = C`).
    pub tiled_grids: Vec<usize>,
    /// DDR bandwidths (bytes/cycle) crossed with the grids.
    pub tiled_bandwidths: Vec<u64>,
    /// On-chip weight-cache capacities (bytes) crossed with the grids
    /// and bandwidths (`0` = the pure-streaming design).
    pub tiled_weight_caches: Vec<u64>,
    /// Circulant block sizes to evaluate.
    pub circ_blocks: Vec<usize>,
    /// Seed for the circulant accuracy measurement's weights/input.
    pub seed: u64,
}

impl ExploreConfig {
    /// The default survey at the paper's design point: the paper
    /// backend, 8/16/32-wide tiled grids at nominal and starved DDR
    /// bandwidth with and without a 256 KiB weight cache, and circulant
    /// blocks 4/8/16.
    pub fn paper_default() -> Self {
        Self {
            base: AccelConfig::paper_default(),
            tiled_grids: vec![8, 16, 32],
            tiled_bandwidths: vec![4, 8],
            tiled_weight_caches: vec![0, 256 << 10],
            circ_blocks: vec![4, 8, 16],
            seed: 0xF7A25,
        }
    }
}

fn point(
    be: &dyn Backend,
    base: &AccelConfig,
    workload: &str,
    config: String,
    cycles: u64,
    ddr_bytes: u64,
    sqnr: Option<f64>,
) -> BackendPoint {
    let caps = be.caps();
    let a = be.area();
    BackendPoint {
        backend: caps.name.to_string(),
        workload: workload.to_string(),
        config,
        rows: caps.array.0,
        cols: caps.array.1,
        cycles,
        latency_us: base.clock.cycles_to_us(hwsim::cycles::Cycle(cycles)),
        lut: a.lut,
        ff: a.ff,
        bram: a.bram,
        dsp: a.dsp,
        ddr_bytes,
        weight_compression: caps.weight_compression,
        exact: caps.exact,
        sqnr_db: sqnr,
        noise_power: sqnr.map_or(0.0, |db| 10f64.powf(-db / 10.0)),
    }
}

/// Measures the circulant backend's end-to-end FFN SQNR against the
/// bit-exact reference, on block-circulant (FTRANS-regime) weights
/// generated from `seed`.
pub fn measure_circulant_ffn_sqnr(be: &CirculantBackend, seed: u64) -> f64 {
    let base = &be.config().base;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut block = FfnResBlock::new(&base.model, &mut rng);
    circulantize_ffn(&mut block, be.config().block);
    let calib: Vec<tensor::Mat<f32>> = (0..2)
        .map(|_| tensor::init::normal(&mut rng, base.s, base.model.d_model, 1.0))
        .collect();
    let q = QuantFfnResBlock::from_f32(&block, &calib);
    let xq = q.quantize_input(&calib[0]);
    let prog = be.lower_ffn(&ffn_graph(&q.graph_config()));
    let got = be.run_ffn(&prog, &q, &xq);
    let (want, _) = q.forward(&xq);
    sqnr_db(&q.dequantize_output(&want), &q.dequantize_output(&got))
}

fn tiled_ddr_bytes(prog: &BackendProgram) -> u64 {
    match prog {
        BackendProgram::Tiled(p) => p.ddr_bytes(),
        _ => 0,
    }
}

/// Runs the survey: lowers the shared graphs on every candidate,
/// costs them, and extracts the per-ResBlock fronts.
pub fn explore(cfg: &ExploreConfig) -> ExplorerReport {
    let base = &cfg.base;
    let gcfg = GraphConfig {
        d_model: base.model.d_model,
        d_ff: base.model.d_ff,
        h: base.model.h,
    };
    let mha_g = mha_graph(&gcfg);
    let ffn_g = ffn_graph(&gcfg);
    let s_kv = base.s;
    let mut points = Vec::new();

    // paper backend: one point per ResBlock
    let paper = PaperBackend::new(base.clone());
    let pm = paper.lower_mha(&mha_g, s_kv);
    points.push(point(
        &paper,
        base,
        "mha",
        format!("s={} full array", base.s),
        paper.cycles(&pm, s_kv),
        0,
        None,
    ));
    let pf = paper.lower_ffn(&ffn_g);
    points.push(point(
        &paper,
        base,
        "ffn",
        format!("s={} full array", base.s),
        paper.cycles(&pf, s_kv),
        0,
        None,
    ));

    // tiled-SA: grid × bandwidth × weight-cache cross product
    for &rc in &cfg.tiled_grids {
        for &bw in &cfg.tiled_bandwidths {
            for &wc in &cfg.tiled_weight_caches {
                let be = TiledBackend::new(TiledConfig {
                    base: base.clone(),
                    rows: rc,
                    cols: rc,
                    tile_k: 512,
                    ddr_bytes_per_cycle: bw,
                    weight_cache_bytes: wc,
                });
                let desc = if wc == 0 {
                    format!("{rc}x{rc} grid, {bw} B/cyc DDR")
                } else {
                    format!("{rc}x{rc} grid, {bw} B/cyc DDR, {} KiB wcache", wc >> 10)
                };
                let m = be.lower_mha(&mha_g, s_kv);
                points.push(point(
                    &be,
                    base,
                    "mha",
                    desc.clone(),
                    be.cycles(&m, s_kv),
                    tiled_ddr_bytes(&m),
                    None,
                ));
                let f = be.lower_ffn(&ffn_g);
                points.push(point(
                    &be,
                    base,
                    "ffn",
                    desc,
                    be.cycles(&f, s_kv),
                    tiled_ddr_bytes(&f),
                    None,
                ));
            }
        }
    }

    // block-circulant: FFN only, accuracy measured
    for &b in &cfg.circ_blocks {
        let be = CirculantBackend::new(CirculantConfig {
            base: base.clone(),
            block: b,
            lanes: 16,
        });
        let prog = be.lower_ffn(&ffn_g);
        let sqnr = measure_circulant_ffn_sqnr(&be, cfg.seed);
        points.push(point(
            &be,
            base,
            "ffn",
            format!("b={b} circulant blocks"),
            be.cycles(&prog, s_kv),
            0,
            Some(sqnr),
        ));
    }

    let front = |workload: &str| {
        let cand: Vec<BackendPoint> = points
            .iter()
            .filter(|p| p.workload == workload)
            .cloned()
            .collect();
        crate::pareto::front_by(&cand, |p| vec![p.cycles as f64, p.lut, p.noise_power])
    };
    let mha_front = front("mha");
    let ffn_front = front("ffn");
    ExplorerReport {
        points,
        mha_front,
        ffn_front,
    }
}

/// The survey at [`ExploreConfig::paper_default`] — what the `backends`
/// bench binary serialises.
pub fn explore_default() -> ExplorerReport {
    explore(&ExploreConfig::paper_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use transformer::config::ModelConfig;

    fn tiny_survey() -> ExplorerReport {
        let mut base = AccelConfig::paper_default();
        base.model = ModelConfig::tiny_for_tests();
        base.s = 8;
        explore(&ExploreConfig {
            base,
            tiled_grids: vec![4, 8],
            tiled_bandwidths: vec![8],
            tiled_weight_caches: vec![0, 4 << 10],
            circ_blocks: vec![4, 8],
            seed: 7,
        })
    }

    #[test]
    fn survey_covers_every_candidate() {
        let r = tiny_survey();
        // paper 2 + tiled 2 grids × 1 bw × 2 caches × 2 workloads
        // + circulant 2
        assert_eq!(r.points.len(), 2 + 8 + 2);
        assert!(r.points.iter().all(|p| p.cycles > 0 && p.lut > 0.0));
        // exact backends carry zero noise, circulant a measured SQNR
        for p in &r.points {
            match p.backend.as_str() {
                "ftrans-circulant" => {
                    assert!(p.sqnr_db.is_some() && p.noise_power > 0.0 && !p.exact)
                }
                _ => assert!(p.sqnr_db.is_none() && p.noise_power == 0.0 && p.exact),
            }
        }
    }

    #[test]
    fn fronts_are_nondegenerate_across_backends() {
        let r = tiny_survey();
        let mha = ExplorerReport::front_backends(&r.mha_front);
        let ffn = ExplorerReport::front_backends(&r.ffn_front);
        assert!(mha.len() >= 2, "MHA front collapsed to {mha:?}");
        assert!(ffn.len() >= 2, "FFN front collapsed to {ffn:?}");
        assert!(ffn.contains(&"ftrans-circulant".to_string()), "{ffn:?}");
    }

    #[test]
    fn front_points_are_members_of_the_survey() {
        let r = tiny_survey();
        for p in r.mha_front.iter().chain(&r.ffn_front) {
            assert!(r.points.iter().any(|q| q.backend == p.backend
                && q.config == p.config
                && q.workload == p.workload));
        }
    }
}
