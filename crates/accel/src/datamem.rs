//! The Data Memory of Fig. 5 — capacity and bandwidth planning.
//!
//! Table II accounts the *weight* memory's BRAMs but carries no row for
//! the activation buffers, although Fig. 5 shows them explicitly
//! (`Q or X: s × 64h`, `K = V: s × 64h`, `Temp1: s × max(s, 64)`,
//! `Temp2: s × 64`, `P or ReLU(XW1): s × 256h`). On a VU13P the natural
//! home for these megabit-scale buffers is **URAM** (4,096 × 72-bit
//! blocks, 1,280 of them on-chip), which Vivado reports in a separate
//! column — consistent with the paper's table listing only 498 BRAM.
//! This module sizes those buffers for any configuration and checks the
//! URAM budget, completing the on-chip memory story.

use serde::Serialize;

use crate::config::AccelConfig;
use crate::partition::PANEL_COLS;

/// Bits per UltraRAM block (4,096 words × 72 bits).
pub const URAM_BITS: u64 = 4_096 * 72;

/// URAM blocks available on the paper's VU13P.
pub const VU13P_URAM: u64 = 1_280;

/// One activation buffer of Fig. 5.
#[derive(Debug, Clone, Serialize)]
pub struct BufferSpec {
    /// Fig. 5 label.
    pub name: String,
    /// Rows (always `s`).
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Bits per element (8 for INT8 activations, 32 for raw score
    /// accumulators held for the softmax's second pass).
    pub bits_per_elem: u64,
}

impl BufferSpec {
    /// Total bits stored.
    pub fn bits(&self) -> u64 {
        self.rows as u64 * self.cols as u64 * self.bits_per_elem
    }

    /// URAM blocks needed: the datapath reads one `s`-element column per
    /// cycle, so the buffer is banked `ceil(s·bits/72)` wide; depth then
    /// rides within one block for every Table-I configuration.
    pub fn uram_blocks(&self) -> u64 {
        let width_bits = self.rows as u64 * self.bits_per_elem;
        let columns = width_bits.div_ceil(72);
        let depth_per_block = 4_096u64;
        let rows_of_blocks = (self.cols as u64).div_ceil(depth_per_block);
        columns * rows_of_blocks
    }
}

/// The full Fig. 5 buffer inventory for a configuration.
pub fn buffers(cfg: &AccelConfig) -> Vec<BufferSpec> {
    let s = cfg.s;
    let d_model = cfg.model.d_model;
    let d_ff = cfg.model.d_ff;
    vec![
        BufferSpec {
            name: "Q or X".into(),
            rows: s,
            cols: d_model,
            bits_per_elem: 8,
        },
        BufferSpec {
            name: "K = V".into(),
            rows: s,
            cols: d_model,
            bits_per_elem: 8,
        },
        BufferSpec {
            // Temp1 holds Q_i W_Qi, and doubles as the softmax's score
            // store (s x max(s, 64)); scores are kept at accumulator
            // width for the second EXP pass.
            name: "Temp1".into(),
            rows: s,
            cols: s.max(PANEL_COLS),
            bits_per_elem: 32,
        },
        BufferSpec {
            name: "Temp2".into(),
            rows: s,
            cols: PANEL_COLS,
            bits_per_elem: 8,
        },
        BufferSpec {
            name: "P or ReLU(XW1)".into(),
            rows: s,
            cols: d_ff,
            bits_per_elem: 8,
        },
    ]
}

/// Data-memory plan: buffers, totals, and the URAM budget check.
#[derive(Debug, Clone, Serialize)]
pub struct DataMemoryPlan {
    /// Individual buffers.
    pub buffers: Vec<BufferSpec>,
    /// Total bits across buffers.
    pub total_bits: u64,
    /// Total URAM blocks.
    pub total_uram: u64,
    /// Whether the plan fits the VU13P's 1,280 URAMs.
    pub fits_vu13p: bool,
}

/// Plans the data memory for a configuration.
pub fn plan(cfg: &AccelConfig) -> DataMemoryPlan {
    cfg.validate();
    let buffers = buffers(cfg);
    let total_bits = buffers.iter().map(|b| b.bits()).sum();
    let total_uram = buffers.iter().map(|b| b.uram_blocks()).sum();
    DataMemoryPlan {
        buffers,
        total_bits,
        total_uram,
        fits_vu13p: total_uram <= VU13P_URAM,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;

    #[test]
    fn paper_point_fits_comfortably_in_uram() {
        let p = plan(&AccelConfig::paper_default());
        assert!(p.fits_vu13p, "needs {} URAM", p.total_uram);
        // base model at s = 64: well under a quarter of the device
        assert!(p.total_uram < 320, "{}", p.total_uram);
    }

    #[test]
    fn buffer_shapes_match_fig5() {
        let p = plan(&AccelConfig::paper_default());
        let by_name = |n: &str| p.buffers.iter().find(|b| b.name == n).unwrap();
        assert_eq!(by_name("Q or X").cols, 512); // s x 64h
        assert_eq!(by_name("P or ReLU(XW1)").cols, 2048); // s x 256h
        assert_eq!(by_name("Temp1").cols, 64); // s x max(s, 64), s = 64
        assert_eq!(by_name("Temp2").cols, 64);
        assert_eq!(p.buffers.len(), 5);
    }

    #[test]
    fn p_buffer_dominates() {
        // "P or ReLU(XW1)" is 4x the input buffers — the FFN's hidden
        // activations are the data-memory driver, mirroring the FFN's
        // dominance in weights.
        let p = plan(&AccelConfig::paper_default());
        let p_bits = p
            .buffers
            .iter()
            .find(|b| b.name.starts_with('P'))
            .unwrap()
            .bits();
        assert!(p_bits * 2 > p.total_bits - p_bits);
    }

    #[test]
    fn long_sequence_grows_the_score_buffer() {
        let mut cfg = AccelConfig::paper_default();
        cfg.s = 128;
        let p = plan(&cfg);
        let temp1 = p.buffers.iter().find(|b| b.name == "Temp1").unwrap();
        assert_eq!(temp1.cols, 128);
        assert_eq!(temp1.bits_per_elem, 32);
        assert!(p.fits_vu13p);
    }

    #[test]
    fn big_model_still_fits() {
        let mut cfg = AccelConfig::paper_default();
        cfg.model = transformer::config::ModelConfig::transformer_big();
        let p = plan(&cfg);
        assert!(p.fits_vu13p, "needs {} URAM", p.total_uram);
    }

    #[test]
    fn uram_banking_respects_column_bandwidth() {
        // one s-element INT8 column per cycle needs ceil(64*8/72) = 8
        // parallel URAMs for the input buffers at s = 64
        let p = plan(&AccelConfig::paper_default());
        let q = p.buffers.iter().find(|b| b.name == "Q or X").unwrap();
        assert_eq!(q.uram_blocks(), 8);
    }
}
