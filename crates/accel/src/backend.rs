//! The backend seam: one trait over the graph IR, many accelerator
//! architectures behind it.
//!
//! The paper's `s × 64` systolic design used to be the *only* way a
//! [`graph::Graph`] could reach hardware; this module turns it into one
//! of several [`Backend`]s. A backend is four things:
//!
//! 1. a **capability descriptor** ([`BackendCaps`]) — name, PE-grid
//!    geometry, which ResBlocks it can run, whether it is bit-exact
//!    against the quantized reference, and its weight-compression
//!    factor;
//! 2. a **lowering** from the *shared* graph builders
//!    ([`graph::mha_graph`] / [`graph::ffn_graph`]) to a
//!    backend-specific [`BackendProgram`] — no backend constructs its
//!    own graphs;
//! 3. a **cycle model** interpreting that program on the backend's
//!    units ([`Backend::cycles`]) and an **area model**
//!    ([`Backend::area`]);
//! 4. a **bit-level executor** ([`Backend::run_mha`] /
//!    [`Backend::run_ffn`]) whose output either equals the quantized
//!    reference exactly (`caps().exact`) or lands within the backend's
//!    documented SQNR bound (the FTRANS-style circulant backend).
//!
//! Implementations:
//!
//! * [`PaperBackend`] — the SOCC'20 engine, byte-for-byte the
//!   pre-refactor lowering/ISA/scheduler/area stack (golden ISA
//!   programs and the MHA 20998 / FFN 35846 cycle pins are asserted
//!   unchanged by `tests/isa_golden.rs`);
//! * [`crate::tiled::TiledBackend`] — a KV260-style small tiled array
//!   with explicit DDR tile traffic and a bandwidth-aware cycle model;
//! * [`crate::circulant::CirculantBackend`] — FTRANS-style
//!   block-circulant FFN weights executed via a fixed-point FFT unit.
//!
//! The cross-backend design-space explorer ([`crate::explorer`]) walks
//! `Vec<Box<dyn Backend>>` and emits a cycles × area × accuracy Pareto
//! front.

use graph::Graph;
use hwsim::resources::Resources;
use quantized::{QuantFfnResBlock, QuantMhaResBlock};
use tensor::Mat;

use crate::area::AreaModel;
use crate::config::AccelConfig;
use crate::isa::{self, Command};

/// What a backend can do and how it is built — the static half of the
/// trait, used by the explorer to route work and label points.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendCaps {
    /// Short stable identifier (`"paper-sa"`, `"tiled-sa"`,
    /// `"ftrans-circulant"`).
    pub name: &'static str,
    /// PE-grid geometry `(rows, cols)`; for the circulant backend this
    /// is the FFT unit's butterfly count expressed as a `(lanes, 1)`
    /// grid.
    pub array: (usize, usize),
    /// Whether [`Backend::lower_mha`] / [`Backend::run_mha`] are
    /// implemented.
    pub supports_mha: bool,
    /// Whether [`Backend::lower_ffn`] / [`Backend::run_ffn`] are
    /// implemented.
    pub supports_ffn: bool,
    /// `true` iff the executor is bit-identical to the quantized
    /// reference datapath on every input.
    pub exact: bool,
    /// Weight-storage compression factor (`1.0` = uncompressed; a
    /// block-circulant backend with block size `b` stores `b×` fewer
    /// weights).
    pub weight_compression: f64,
}

/// A lowered program, backend-tagged. Keeping this an enum (rather than
/// an associated type) keeps [`Backend`] object-safe so the explorer
/// can hold heterogeneous `Box<dyn Backend>` collections.
#[derive(Debug, Clone)]
pub enum BackendProgram {
    /// The paper backend's Algorithm-1 command stream.
    Isa(Vec<Command>),
    /// The tiled-SA backend's tile schedule (ISA commands expanded into
    /// DDR-tile traffic).
    Tiled(crate::tiled::TiledProgram),
    /// The circulant backend's FFT-unit schedule.
    Circulant(crate::circulant::CircProgram),
}

impl BackendProgram {
    /// Number of top-level operations in the program.
    pub fn len(&self) -> usize {
        match self {
            BackendProgram::Isa(p) => p.len(),
            BackendProgram::Tiled(p) => p.ops.len(),
            BackendProgram::Circulant(p) => p.ops.len(),
        }
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One accelerator architecture behind the graph IR. See the module
/// docs for the contract; all methods take `&self` — backends are
/// stateless descriptions, and execution carries no cross-run state.
pub trait Backend {
    /// The capability descriptor.
    fn caps(&self) -> BackendCaps;

    /// Resource cost of instantiating this backend.
    fn area(&self) -> Resources;

    /// Lowers the shared [`graph::mha_graph`] dataflow at key/value
    /// length `s_kv`.
    ///
    /// # Panics
    ///
    /// Panics if `caps().supports_mha` is `false` or the graph is not
    /// an MHA graph.
    fn lower_mha(&self, g: &Graph, s_kv: usize) -> BackendProgram;

    /// Lowers the shared [`graph::ffn_graph`] dataflow.
    ///
    /// # Panics
    ///
    /// Panics if `caps().supports_ffn` is `false` or the graph is not
    /// an FFN graph.
    fn lower_ffn(&self, g: &Graph) -> BackendProgram;

    /// Cycle count of a lowered program on this backend's units
    /// (`s_kv` = sequence length of the workload, as in
    /// [`crate::isa::schedule_program`]).
    ///
    /// # Panics
    ///
    /// Panics if the program was lowered by a different backend.
    fn cycles(&self, prog: &BackendProgram, s_kv: usize) -> u64;

    /// Executes a lowered MHA program against a quantized block.
    ///
    /// # Panics
    ///
    /// Panics if MHA is unsupported or the program is foreign.
    fn run_mha(
        &self,
        prog: &BackendProgram,
        block: &QuantMhaResBlock,
        xq: &Mat<i8>,
        xkv: &Mat<i8>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<i8>;

    /// Executes a lowered FFN program against a quantized block.
    ///
    /// # Panics
    ///
    /// Panics if FFN is unsupported or the program is foreign.
    fn run_ffn(&self, prog: &BackendProgram, block: &QuantFfnResBlock, x: &Mat<i8>) -> Mat<i8>;
}

/// The SOCC'20 design as a [`Backend`]: a thin adapter over the
/// existing lowering ([`crate::exec::lower_mha`] /
/// [`crate::exec::lower_ffn`]), the bit-exact ISA interpreter
/// ([`crate::isa::execute_mha`] / [`crate::isa::execute_ffn`]), the
/// timing interpreter ([`crate::isa::schedule_program`]) and the
/// Table-II area model. Every call delegates to the exact functions the
/// golden tests pin, so wrapping the paper engine in the trait cannot
/// move a single cycle or bit.
#[derive(Debug, Clone)]
pub struct PaperBackend {
    cfg: AccelConfig,
}

impl PaperBackend {
    /// Wraps a configuration (usually [`AccelConfig::paper_default`]).
    pub fn new(cfg: AccelConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The paper's published design point.
    pub fn paper_default() -> Self {
        Self::new(AccelConfig::paper_default())
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    fn isa<'p>(&self, prog: &'p BackendProgram) -> &'p [Command] {
        match prog {
            BackendProgram::Isa(p) => p,
            other => panic!("paper backend fed a foreign program ({} ops)", other.len()),
        }
    }
}

impl Backend for PaperBackend {
    fn caps(&self) -> BackendCaps {
        BackendCaps {
            name: "paper-sa",
            array: (self.cfg.s, crate::partition::PANEL_COLS),
            supports_mha: true,
            supports_ffn: true,
            exact: true,
            weight_compression: 1.0,
        }
    }

    fn area(&self) -> Resources {
        AreaModel::new(self.cfg.clone()).top()
    }

    fn lower_mha(&self, g: &Graph, s_kv: usize) -> BackendProgram {
        BackendProgram::Isa(crate::exec::lower_mha(g, s_kv))
    }

    fn lower_ffn(&self, g: &Graph) -> BackendProgram {
        BackendProgram::Isa(crate::exec::lower_ffn(g))
    }

    fn cycles(&self, prog: &BackendProgram, s_kv: usize) -> u64 {
        isa::schedule_program(&self.cfg, self.isa(prog), s_kv).get()
    }

    fn run_mha(
        &self,
        prog: &BackendProgram,
        block: &QuantMhaResBlock,
        xq: &Mat<i8>,
        xkv: &Mat<i8>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<i8> {
        isa::execute_mha(self.isa(prog), block, xq, xkv, mask)
    }

    fn run_ffn(&self, prog: &BackendProgram, block: &QuantFfnResBlock, x: &Mat<i8>) -> Mat<i8> {
        isa::execute_ffn(self.isa(prog), block, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{ffn_graph, mha_graph, GraphConfig};
    use quantized::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::ffn::FfnResBlock;
    use transformer::mha::MhaResBlock;

    #[test]
    fn paper_backend_lowering_and_timing_equal_the_unwrapped_stack() {
        // The trait adapter must be a zero-cost rename: identical
        // command streams and identical cycle counts, including the
        // pinned paper point (MHA 20998 / FFN 35846).
        let be = PaperBackend::paper_default();
        let cfg = be.config().clone();
        let gcfg = GraphConfig {
            d_model: cfg.model.d_model,
            d_ff: cfg.model.d_ff,
            h: cfg.model.h,
        };
        let mha = be.lower_mha(&mha_graph(&gcfg), cfg.s);
        let ffn = be.lower_ffn(&ffn_graph(&gcfg));
        match (&mha, &ffn) {
            (BackendProgram::Isa(m), BackendProgram::Isa(f)) => {
                assert_eq!(*m, isa::mha_program(cfg.model.h, cfg.s));
                assert_eq!(*f, isa::ffn_program(cfg.model.d_model, cfg.model.d_ff));
            }
            _ => panic!("paper backend must lower to ISA programs"),
        }
        assert_eq!(be.cycles(&mha, cfg.s), 20_998);
        assert_eq!(be.cycles(&ffn, cfg.s), 35_846);
        let caps = be.caps();
        assert_eq!(caps.array, (64, 64));
        assert!(caps.exact && caps.supports_mha && caps.supports_ffn);
        assert_eq!(caps.weight_compression, 1.0);
        // Area passes through the Table-II model untouched.
        let top = be.area();
        assert!((top.lut - AreaModel::new(cfg).top().lut).abs() < 1e-9);
    }

    #[test]
    fn paper_backend_execution_is_bit_identical() {
        let mcfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0xBE);
        let mha = MhaResBlock::new(&mcfg, &mut rng);
        let ffn = FfnResBlock::new(&mcfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..3)
            .map(|_| tensor::init::normal(&mut rng, 8, mcfg.d_model, 1.0))
            .collect();
        let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
        let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
        let xq = qmha.quantize_input_q(&calib[0]);

        let mut acfg = AccelConfig::paper_default();
        acfg.model = mcfg.clone();
        acfg.s = 8;
        let be = PaperBackend::new(acfg);
        let gcfg = GraphConfig {
            d_model: mcfg.d_model,
            d_ff: mcfg.d_ff,
            h: mcfg.h,
        };
        let prog = be.lower_mha(&mha_graph(&gcfg), 8);
        let got = be.run_mha(&prog, &qmha, &xq, &xq, None);
        let (want, _) = qmha.forward(&xq, &xq, None);
        assert_eq!(got, want);

        let x = qffn.quantize_input(&calib[1]);
        let prog = be.lower_ffn(&ffn_graph(&gcfg));
        let got = be.run_ffn(&prog, &qffn, &x);
        let (want, _) = qffn.forward(&x);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "foreign program")]
    fn foreign_program_rejected() {
        let be = PaperBackend::paper_default();
        let prog = BackendProgram::Tiled(crate::tiled::TiledProgram { ops: vec![] });
        let _ = be.cycles(&prog, 64);
    }
}
