//! Timing model of the LayerNorm module (Figs. 7 and 8).
//!
//! `G` arrives column-serially from the systolic-array drain (`d_model`
//! columns of `s` elements). The module has `s` parallel lanes; the
//! output phase emits one column per cycle (`Output(i, t)` for all `i`
//! simultaneously, `t` sweeping `1..64h` — Fig. 8), so the output phase
//! is `d_model` cycles in every variant. What the Fig. 7 optimisation
//! changes is the **added latency between the last input column and the
//! first output column**:
//!
//! | variant | after last G column |
//! |---|---|
//! | straightforward | mean pass (`d_model`) + variance pass (`d_model`) + rsqrt |
//! | step one        | variance pass (`d_model`) + rsqrt |
//! | step one + two  | rsqrt only (Eq. 9 from inline `ΣG`, `ΣG⊙G`) |

use hwsim::cycles::Cycle;

use crate::config::LayerNormMode;

/// Pipeline latency of the `x^(-1/2)` ROM lookup plus the mean/variance
/// combine (Fig. 8's subtract/multiply chain).
pub const RSQRT_LATENCY: u64 = 6;

/// Cycles between the last input column of `G` and the first output
/// column, for the given optimisation level (Fig. 7).
pub fn added_latency(mode: LayerNormMode, d_model: usize) -> Cycle {
    let d = d_model as u64;
    match mode {
        LayerNormMode::Straightforward => Cycle(2 * d + RSQRT_LATENCY),
        LayerNormMode::InlineMean => Cycle(d + RSQRT_LATENCY),
        LayerNormMode::InlineMeanAndVariance => Cycle(RSQRT_LATENCY),
    }
}

/// Output-phase duration: one column of `s` outputs per cycle over
/// `d_model` columns (identical across variants).
pub fn output_cycles(d_model: usize) -> Cycle {
    Cycle(d_model as u64)
}

/// End-to-end added cost of the LayerNorm module once `G` is complete.
pub fn total_tail(mode: LayerNormMode, d_model: usize) -> Cycle {
    added_latency(mode, d_model) + output_cycles(d_model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claims_128h_added_for_straightforward() {
        // "To calculate E(G) and var(G), at least 128h cycles are added
        // to the whole system latency" — with d_model = 64h, the two
        // passes are 2·64h = 128h.
        let d_model = 512; // h = 8
        let added = added_latency(LayerNormMode::Straightforward, d_model);
        assert_eq!(added.get() - RSQRT_LATENCY, 128 * 8);
    }

    #[test]
    fn each_step_removes_one_pass() {
        let d = 512;
        let sf = added_latency(LayerNormMode::Straightforward, d).get();
        let s1 = added_latency(LayerNormMode::InlineMean, d).get();
        let s12 = added_latency(LayerNormMode::InlineMeanAndVariance, d).get();
        assert_eq!(sf - s1, d as u64);
        assert_eq!(s1 - s12, d as u64);
        assert_eq!(s12, RSQRT_LATENCY);
    }

    #[test]
    fn output_phase_is_variant_independent() {
        for mode in [
            LayerNormMode::Straightforward,
            LayerNormMode::InlineMean,
            LayerNormMode::InlineMeanAndVariance,
        ] {
            assert_eq!(total_tail(mode, 512) - added_latency(mode, 512), Cycle(512));
        }
    }

    #[test]
    fn fully_optimized_tail_is_nearly_just_output() {
        // "very few cycles are required between the system finishing
        // calculating all the elements of matrix G and starting the
        // output"
        let tail = total_tail(LayerNormMode::InlineMeanAndVariance, 512);
        assert!(tail.get() < 512 + 10);
    }
}
