//! Timing model of the Softmax module (Fig. 6).
//!
//! The module has `s` parallel row lanes; score columns arrive serially
//! from the systolic-array drain. Its four stages map to cycles as:
//!
//! 1. **max tracking** — runs *during* input arrival (one comparator per
//!    lane), so it adds no latency after the last column;
//! 2. **EXP + SUM** — one pass over the `s_cols` stored columns;
//! 3. **LN unit** — a short pipeline ([`LN_LATENCY`] cycles);
//! 4. **final EXP** — a second pass over the columns, emitting output.
//!
//! Total latency after the last input column: `2·s_cols + LN_LATENCY`.
//! The paper's schedulability condition (Section IV) is that this
//! finishes before the systolic array completes `V·W_Vi + Bias_Vi`
//! (`d_model` cycles) — [`hides_behind_vw`] checks it.

use hwsim::cycles::Cycle;

/// Pipeline latency of the LN unit (leading-one detect + shift-add).
pub const LN_LATENCY: u64 = 4;

/// Latency from the last input column to the last output column.
pub fn latency_after_last_input(s_cols: usize) -> Cycle {
    Cycle(2 * s_cols as u64 + LN_LATENCY)
}

/// The paper's overlap condition: "As long as the Softmax module can
/// give the output no later than the SA module finishing calculating
/// `VW_Vi + Bias_Vi`" — i.e. softmax latency ≤ the `d_model`-deep GEMM
/// stream (plus its drain).
pub fn hides_behind_vw(s_cols: usize, d_model: usize) -> bool {
    latency_after_last_input(s_cols).get() <= (d_model + crate::partition::PANEL_COLS) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_two_passes_plus_ln() {
        assert_eq!(latency_after_last_input(64), Cycle(128 + LN_LATENCY));
        assert_eq!(latency_after_last_input(1), Cycle(2 + LN_LATENCY));
    }

    #[test]
    fn paper_configuration_hides_softmax() {
        // s = 64, d_model = 512: 132 <= 576 with slack — the paper's
        // design condition holds comfortably.
        assert!(hides_behind_vw(64, 512));
    }

    #[test]
    fn all_table1_configs_hide_softmax_at_s64() {
        for cfg in transformer::config::ModelConfig::table1() {
            assert!(hides_behind_vw(64, cfg.d_model), "{}", cfg.name);
        }
    }

    #[test]
    fn very_long_sequences_break_the_overlap() {
        // At s = 512 on Transformer-base the two softmax passes (1028)
        // exceed the V-projection stream (576): the array would stall.
        assert!(!hides_behind_vw(512, 512));
    }
}
