//! Full-model inference scheduling — the paper's future work ("build a
//! FPGA or ASIC accelerator for the complete Transformer inference"),
//! projected from the calibrated single-ResBlock models.
//!
//! Adds the one system-level constraint a multi-layer run introduces:
//! **weight traffic**. The weight memory is double-buffered (that is
//! what its 456 BRAMs buy, see [`crate::area`]), so the next block's
//! weights load while the current block computes; a layer only stalls
//! when its weight-load time exceeds the previous block's compute time.

use hwsim::cycles::Cycle;
use hwsim::traffic::{Direction, TrafficLedger};
use serde::Serialize;

use crate::config::AccelConfig;
use crate::scheduler;

/// System-level parameters of a multi-layer run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PipelineConfig {
    /// Sustained external bandwidth into the weight memory, bytes per
    /// clock cycle (64 B/cycle at 200 MHz = 12.8 GB/s — a single DDR4
    /// channel's worth, conservative for the VU13P board class).
    pub weight_bandwidth_bytes_per_cycle: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            weight_bandwidth_bytes_per_cycle: 64,
        }
    }
}

/// INT8 weight bytes of one MHA ResBlock (four projections + biases).
pub fn mha_weight_bytes(cfg: &AccelConfig) -> u64 {
    let d = cfg.model.d_model as u64;
    4 * (d * d + d)
}

/// INT8 weight bytes of one FFN ResBlock (two sublayers + biases).
pub fn ffn_weight_bytes(cfg: &AccelConfig) -> u64 {
    let d = cfg.model.d_model as u64;
    let f = cfg.model.d_ff as u64;
    2 * d * f + f + d
}

fn load_cycles(bytes: u64, pcfg: &PipelineConfig) -> Cycle {
    Cycle(bytes.div_ceil(pcfg.weight_bandwidth_bytes_per_cycle))
}

/// External-memory traffic of one encoder layer at sequence length
/// `cfg.s`: weights in (the dominant term), input activations in and
/// output activations back out. Everything between the two ResBlocks
/// stays on chip (the Fig. 5 data memory).
pub fn layer_traffic(cfg: &AccelConfig) -> TrafficLedger {
    let mut t = TrafficLedger::new();
    let act_bytes = (cfg.s * cfg.model.d_model) as u64; // INT8
    t.record("mha weights", Direction::In, mha_weight_bytes(cfg));
    t.record("ffn weights", Direction::In, ffn_weight_bytes(cfg));
    t.record("input activations", Direction::In, act_bytes);
    t.record("output activations", Direction::Out, act_bytes);
    t
}

/// The layer's arithmetic intensity (MACs per external byte): the
/// roofline x-coordinate. Transformer-base at s = 64 lands near 65
/// MAC/B — weight-bound at batch 1 (every weight byte is used exactly
/// `s` times).
pub fn layer_arithmetic_intensity(cfg: &AccelConfig) -> f64 {
    let macs = crate::analysis::mha_macs(&cfg.model, cfg.s).total()
        + crate::analysis::ffn_macs(&cfg.model, cfg.s);
    layer_traffic(cfg).arithmetic_intensity(macs)
}

/// Latency breakdown of one encoder layer in steady state.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LayerLatency {
    /// MHA ResBlock compute cycles.
    pub mha: Cycle,
    /// FFN ResBlock compute cycles.
    pub ffn: Cycle,
    /// Stall cycles waiting for weights (0 when the double buffer keeps
    /// up).
    pub weight_stall: Cycle,
}

impl LayerLatency {
    /// Total cycles for the layer.
    pub fn total(&self) -> Cycle {
        self.mha + self.ffn + self.weight_stall
    }
}

/// Steady-state latency of one encoder layer, including weight traffic.
pub fn encoder_layer(cfg: &AccelConfig, pcfg: &PipelineConfig) -> LayerLatency {
    let mha = scheduler::schedule_mha(cfg).cycles;
    let ffn = scheduler::schedule_ffn(cfg).cycles;
    // FFN weights load while the MHA computes; the next layer's MHA
    // weights load while the FFN computes.
    let ffn_load = load_cycles(ffn_weight_bytes(cfg), pcfg);
    let mha_load = load_cycles(mha_weight_bytes(cfg), pcfg);
    let stall = ffn_load.saturating_sub(mha) + mha_load.saturating_sub(ffn);
    LayerLatency {
        mha,
        ffn,
        weight_stall: stall,
    }
}

/// Latency report of a full stack / full inference.
#[derive(Debug, Clone, Serialize)]
pub struct InferenceReport {
    /// Encoder-stack cycles (all layers).
    pub encoder_cycles: Cycle,
    /// Decoder cycles across every autoregressive step.
    pub decoder_cycles: Cycle,
    /// Number of decode steps.
    pub decode_steps: usize,
    /// Total cycles.
    pub total_cycles: Cycle,
    /// Total latency in microseconds at the configured clock.
    pub total_us: f64,
}

/// Schedules the `n_layers`-deep encoder stack at `s = cfg.s`.
pub fn encoder_stack(cfg: &AccelConfig, pcfg: &PipelineConfig, n_layers: usize) -> Cycle {
    let per_layer = encoder_layer(cfg, pcfg).total();
    // First layer additionally waits for its own MHA weights.
    let prologue = load_cycles(mha_weight_bytes(cfg), pcfg);
    prologue + per_layer * n_layers as u64
}

/// One autoregressive decoder step at target position `t` (1-based):
/// causal self-attention over `t` cached positions, cross-attention
/// over `s_src` encoder positions, plus the FFN.
pub fn decoder_step(cfg: &AccelConfig, t: usize, s_src: usize) -> Cycle {
    let t = t.min(cfg.s);
    let self_mha = scheduler::schedule_mha_cross(cfg, t, t).cycles;
    let cross_mha = scheduler::schedule_mha_cross(cfg, t, s_src).cycles;
    let ffn = scheduler::schedule_ffn_len(cfg, t).cycles;
    self_mha + cross_mha + ffn
}

/// One autoregressive decoder step *with KV caching*.
///
/// A notable negative result of the timing model: on this
/// weight-streaming architecture a KV cache barely helps. Every GEMM
/// costs its reduction depth `k` in stream cycles regardless of how
/// many array rows are occupied, so projecting K/V for *one* new row
/// costs exactly what projecting them for the whole prefix costs. The
/// only GEMMs a cache removes are the **cross-attention K/V
/// projections** (computable once at encode time) — `2h` GEMMs of
/// `k = d_model` per layer per step, roughly 30% of the step's MHA
/// cycles. Contrast with GPUs, where KV caching changes the
/// asymptotics.
pub fn decoder_step_cached(cfg: &AccelConfig, t: usize, s_src: usize) -> Cycle {
    let t = t.min(cfg.s);
    let self_mha = scheduler::schedule_mha_cross(cfg, t, t).cycles;
    let cross_full = scheduler::schedule_mha_cross(cfg, t, s_src).cycles;
    // Remove the cached K and V projections: 2 GEMMs x (d_model stream +
    // 64 drain) per head under the paper policy (blocking drain).
    let kv_proj = Cycle(2 * cfg.model.h as u64 * (cfg.model.d_model as u64 + 64));
    let cross_mha = cross_full.saturating_sub(kv_proj);
    let ffn = scheduler::schedule_ffn_len(cfg, t).cycles;
    self_mha + cross_mha + ffn
}

/// Full encoder–decoder inference: encode `s_src` tokens once, then
/// `s_tgt` greedy decode steps, each running every decoder layer.
///
/// # Panics
///
/// Panics if lengths are zero or exceed `cfg.s`.
///
/// # Example
///
/// ```
/// use accel::pipeline::{full_inference, PipelineConfig};
/// use accel::AccelConfig;
/// let rep = full_inference(
///     &AccelConfig::paper_default(),
///     &PipelineConfig::default(),
///     64,
///     8,
/// );
/// assert!(rep.decoder_cycles > rep.encoder_cycles);
/// ```
pub fn full_inference(
    cfg: &AccelConfig,
    pcfg: &PipelineConfig,
    s_src: usize,
    s_tgt: usize,
) -> InferenceReport {
    assert!(s_src > 0 && s_src <= cfg.s, "s_src out of range");
    assert!(s_tgt > 0 && s_tgt <= cfg.s, "s_tgt out of range");
    let n = cfg.model.n_layers;
    let encoder_cycles = encoder_stack(cfg, pcfg, n);
    let mut decoder_cycles = Cycle::ZERO;
    for t in 1..=s_tgt {
        decoder_cycles += decoder_step(cfg, t, s_src) * n as u64;
    }
    let total_cycles = encoder_cycles + decoder_cycles;
    InferenceReport {
        encoder_cycles,
        decoder_cycles,
        decode_steps: s_tgt,
        total_cycles,
        total_us: cfg.clock.cycles_to_us(total_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (AccelConfig, PipelineConfig) {
        (AccelConfig::paper_default(), PipelineConfig::default())
    }

    #[test]
    fn weight_byte_counts_match_model_dimensions() {
        let (cfg, _) = base();
        assert_eq!(mha_weight_bytes(&cfg), 4 * (512 * 512 + 512));
        assert_eq!(ffn_weight_bytes(&cfg), 2 * 512 * 2048 + 2048 + 512);
    }

    #[test]
    fn single_ddr4_channel_stalls_slightly_on_ffn_weights() {
        // A real finding of the system-level model: at 64 B/cycle
        // (12.8 GB/s) the FFN's 2.1 MB of weights take ~32.8k cycles,
        // which does NOT hide behind the MHA's ~21k compute — the base
        // model stalls ~11.8k cycles per layer on one DDR4 channel.
        let (cfg, pcfg) = base();
        let layer = encoder_layer(&cfg, &pcfg);
        assert!(
            layer.weight_stall > Cycle::ZERO && layer.weight_stall < Cycle(15_000),
            "stall {}",
            layer.weight_stall
        );
        assert_eq!(layer.total(), layer.mha + layer.ffn + layer.weight_stall);
    }

    #[test]
    fn doubling_bandwidth_removes_the_stall() {
        let (cfg, _) = base();
        let fast = PipelineConfig {
            weight_bandwidth_bytes_per_cycle: 128,
        };
        assert_eq!(encoder_layer(&cfg, &fast).weight_stall, Cycle::ZERO);
        let slow = PipelineConfig {
            weight_bandwidth_bytes_per_cycle: 8,
        };
        assert!(encoder_layer(&cfg, &slow).weight_stall > Cycle(100_000));
    }

    #[test]
    fn six_layer_encoder_is_roughly_six_single_layers() {
        let (cfg, pcfg) = base();
        let one = encoder_layer(&cfg, &pcfg).total();
        let six = encoder_stack(&cfg, &pcfg, 6);
        assert!(six >= one * 6);
        assert!(
            six.get() < one.get() * 6 + 20_000,
            "prologue should be small"
        );
    }

    #[test]
    fn layer_traffic_is_weight_dominated() {
        let (cfg, _) = base();
        let t = layer_traffic(&cfg);
        let weights = mha_weight_bytes(&cfg) + ffn_weight_bytes(&cfg);
        assert_eq!(
            t.bytes(hwsim::traffic::Direction::In),
            weights + (64 * 512) as u64
        );
        assert!(weights as f64 / t.total_bytes() as f64 > 0.97);
    }

    #[test]
    fn arithmetic_intensity_equals_sequence_length_roughly() {
        // each weight byte is used s times; activations are negligible,
        // so AI ~= s at batch 1.
        let (cfg, _) = base();
        let ai = layer_arithmetic_intensity(&cfg);
        assert!((ai - 64.0).abs() < 5.0, "AI {ai}");
    }

    #[test]
    fn decode_steps_grow_with_position() {
        let (cfg, _) = base();
        let early = decoder_step(&cfg, 1, 64);
        let late = decoder_step(&cfg, 64, 64);
        assert!(late > early, "{early} vs {late}");
    }

    #[test]
    fn kv_cache_saves_only_the_cross_projections() {
        let (cfg, _) = base();
        let full = decoder_step(&cfg, 32, 64);
        let cached = decoder_step_cached(&cfg, 32, 64);
        let saved = full.get() - cached.get();
        // exactly 2h GEMMs of (d_model + 64) cycles
        assert_eq!(saved, 2 * 8 * (512 + 64));
        // and that is well under half the step — the cache does NOT
        // transform the asymptotics on a weight-streaming array
        assert!(saved * 2 < full.get());
    }

    #[test]
    fn full_inference_report_is_consistent() {
        let (cfg, pcfg) = base();
        let rep = full_inference(&cfg, &pcfg, 64, 16);
        assert_eq!(rep.decode_steps, 16);
        assert_eq!(rep.total_cycles, rep.encoder_cycles + rep.decoder_cycles);
        assert!((rep.total_us - rep.total_cycles.get() as f64 / 200.0).abs() < 1e-9);
        // autoregressive decoding dominates: 16 steps x 6 layers x ~3
        // blocks each vs 6 encoder layers x 2 blocks
        assert!(rep.decoder_cycles > rep.encoder_cycles);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_target_rejected() {
        let (cfg, pcfg) = base();
        let _ = full_inference(&cfg, &pcfg, 64, 65);
    }
}
