//! Operation counting and the Eq. (3) utilization analysis.

use transformer::config::ModelConfig;

/// Multiply counts of one MHA ResBlock, broken down as in Eq. (3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MhaMacs {
    /// `Q_i K_i^T` score products over all heads: `s² · d_k · h`.
    pub qk: u64,
    /// The three input projections over all heads: `3 · s · d_k · d_model · h`.
    pub projections: u64,
    /// The output projection `P · W_G`: `s · d_model²`.
    pub output_proj: u64,
    /// `Attention · V` products over all heads: `s² · d_k · h`.
    pub av: u64,
}

impl MhaMacs {
    /// Total multiplies in the ResBlock's GEMMs.
    pub fn total(&self) -> u64 {
        self.qk + self.projections + self.output_proj + self.av
    }
}

/// Counts MHA multiplies for sequence length `s` (Eq. (3) numerator and
/// denominator terms; the paper writes `d_k = 64`).
pub fn mha_macs(cfg: &ModelConfig, s: usize) -> MhaMacs {
    let (s, h, dm, dk) = (s as u64, cfg.h as u64, cfg.d_model as u64, cfg.d_k() as u64);
    MhaMacs {
        qk: s * s * dk * h,
        projections: 3 * s * dk * dm * h,
        output_proj: s * dm * dm,
        av: s * s * dk * h,
    }
}

/// FFN ResBlock multiplies: `2 · s · d_model · d_ff`.
pub fn ffn_macs(cfg: &ModelConfig, s: usize) -> u64 {
    2 * s as u64 * cfg.d_model as u64 * cfg.d_ff as u64
}

/// The share of MHA multiplies spent in `Q_i K_i^T` — the quantity
/// Eq. (3) estimates — computed from exact MAC counts.
///
/// Note: the paper's printed Eq. (3) carries extra `d_model`/`s` factors
/// in three denominator terms (dimensional slip), which makes its
/// closed form `s / (s + 256 h² + 64)` smaller than the exact ratio by
/// roughly `(2s + 256 h) / (s + 256 h² + 64)`. Both are tiny, so the
/// paper's conclusion (this op barely affects SA utilization) stands;
/// EXPERIMENTS.md reports both values.
/// ```
/// use accel::analysis::qk_ratio;
/// use transformer::config::ModelConfig;
/// let r = qk_ratio(&ModelConfig::transformer_base(), 64);
/// assert!(r < 0.03); // under 3% of the block's multiplies
/// ```
pub fn qk_ratio(cfg: &ModelConfig, s: usize) -> f64 {
    let m = mha_macs(cfg, s);
    m.qk as f64 / m.total() as f64
}

/// The paper's closed form of Eq. (3): `s / (s + 256 h² + 64)`.
pub fn qk_ratio_closed_form(h: usize, s: usize) -> f64 {
    s as f64 / (s as f64 + 256.0 * (h * h) as f64 + 64.0)
}

/// Trainable-parameter count of one MHA ResBlock (weights + biases +
/// LayerNorm affine).
pub fn mha_params(cfg: &ModelConfig) -> u64 {
    let d = cfg.d_model as u64;
    4 * (d * d + d) + 2 * d
}

/// Trainable-parameter count of one FFN ResBlock.
pub fn ffn_params(cfg: &ModelConfig) -> u64 {
    let (d, f) = (cfg.d_model as u64, cfg.d_ff as u64);
    d * f + f + f * d + d + 2 * d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_reproduces_papers_numbers() {
        // Paper: "256h² is no smaller than 16,384" (h = 8) and the ratio
        // at s = 64 is 64 / (64 + 16,384 + 64).
        let r = qk_ratio_closed_form(8, 64);
        assert!((r - 64.0 / 16_512.0).abs() < 1e-12);
        assert!(r < 0.004);
    }

    #[test]
    fn exact_ratio_is_small_as_paper_concludes() {
        // The exact MAC ratio is larger than the paper's (algebraically
        // slipped) closed form but still small — the conclusion that
        // QK^T barely affects SA utilization holds either way.
        let base = ModelConfig::transformer_base();
        assert!(qk_ratio(&base, 64) < 0.03, "{}", qk_ratio(&base, 64));
        assert!(qk_ratio(&base, 128) < 0.06);
        let big = ModelConfig::transformer_big();
        assert!(qk_ratio(&big, 128) < 0.03);
        // and the closed form is always the smaller of the two
        assert!(qk_ratio_closed_form(8, 64) < qk_ratio(&base, 64));
    }

    #[test]
    fn ratio_grows_with_s_and_shrinks_with_h() {
        let base = ModelConfig::transformer_base();
        assert!(qk_ratio(&base, 128) > qk_ratio(&base, 32));
        let big = ModelConfig::transformer_big();
        assert!(qk_ratio(&big, 64) < qk_ratio(&base, 64));
    }

    #[test]
    fn mha_mac_breakdown_for_base_at_64() {
        let cfg = ModelConfig::transformer_base();
        let m = mha_macs(&cfg, 64);
        assert_eq!(m.qk, 64 * 64 * 64 * 8);
        assert_eq!(m.projections, 3 * 64 * 64 * 512 * 8);
        assert_eq!(m.output_proj, 64 * 512 * 512);
        assert_eq!(m.av, m.qk);
        // sanity: SA-bound lower cycle bound = total / (s*64) MACs/cycle
        let lower_bound = m.total() / (64 * 64);
        assert_eq!(lower_bound, 17_408);
    }

    #[test]
    fn ffn_macs_for_base_at_64() {
        let cfg = ModelConfig::transformer_base();
        assert_eq!(ffn_macs(&cfg, 64), 2 * 64 * 512 * 2048);
        // lower bound 32,768 cycles on a 64x64 array
        assert_eq!(ffn_macs(&cfg, 64) / (64 * 64), 32_768);
    }

    #[test]
    fn parameter_counts_match_vaswani() {
        let cfg = ModelConfig::transformer_base();
        // 4 * 512 * 512 weights + biases + layernorm
        assert_eq!(mha_params(&cfg), 4 * (512 * 512 + 512) + 1024);
        assert_eq!(
            ffn_params(&cfg),
            512 * 2048 + 2048 + 2048 * 512 + 512 + 1024
        );
        // FFN holds roughly 2x the MHA parameters (the paper's "most of
        // the trainable parameters" observation)
        assert!(ffn_params(&cfg) > 2 * mha_params(&cfg) * 9 / 10);
    }
}
