//! The SOCC'20 Transformer accelerator, as a bit- and cycle-accurate
//! simulation.
//!
//! This crate is the reproduction of the paper's contribution proper:
//!
//! * [`partition`] — the Fig. 4 scheme that splits `W_G`, `W_1`, `W_2`
//!   into 64-column panels so a single `s x 64` systolic array serves
//!   both ResBlocks, plus the `Q_i K_i^T` padding/tiling rule;
//! * [`systolic`] — the `s x 64` INT8 systolic array: a functional
//!   PE-array simulation *and* the stream/drain timing model;
//! * [`softmax_module`] — the four-stage scaled masked-softmax timing
//!   (numerics live in [`quantized::softmax`]);
//! * [`layernorm_module`] — the Fig. 7 latency-optimised LayerNorm
//!   timing in all three published variants;
//! * [`scheduler`] — Algorithm 1: the static op schedule for the MHA and
//!   FFN ResBlocks, with the paper's two overlap optimisations as
//!   toggleable policies;
//! * [`area`] — a parametric LUT/FF/BRAM/DSP model calibrated to the
//!   paper's Table II, plus the 16.7 W power point;
//! * [`analysis`] — Eq. (3) and MAC/parameter counting;
//! * [`top`] — the [`Accelerator`] facade tying numerics and timing
//!   together.
//!
//! # Example
//!
//! ```
//! use accel::{AccelConfig, Accelerator};
//! use transformer::config::ModelConfig;
//!
//! let cfg = AccelConfig::paper_default(); // Transformer-base, s = 64
//! let accel = Accelerator::new(cfg);
//! let mha = accel.schedule_mha();
//! let ffn = accel.schedule_ffn();
//! // Paper: 21,344 and 42,099 cycles; the model is within ~15%.
//! assert!((mha.cycles.get() as f64 - 21_344.0).abs() / 21_344.0 < 0.15);
//! assert!((ffn.cycles.get() as f64 - 42_099.0).abs() / 42_099.0 < 0.20);
//! let _ = ModelConfig::transformer_base();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod area;
pub mod backend;
pub mod circulant;
pub mod config;
pub mod datamem;
pub mod engine;
pub mod exec;
pub mod explorer;
pub mod isa;
pub mod layernorm_module;
pub mod pareto;
pub mod partition;
pub mod pipeline;
pub mod rtl;
pub mod scheduler;
pub mod softmax_module;
pub mod sweep;
pub mod systolic;
pub mod tiled;
pub mod top;
pub mod weights;

pub use backend::{Backend, BackendCaps, BackendProgram, PaperBackend};
pub use circulant::CirculantBackend;
pub use config::{AccelConfig, LayerNormMode, SchedPolicy};
pub use engine::{ArrayEngine, CheckMode, EngineRun, EngineStats, Fidelity};
pub use exec::{lower_ffn, lower_mha, AccelBlock, AccelExec};
pub use isa::{validate_ffn_program, validate_mha_program, ProgramFault};
pub use scheduler::ScheduleReport;
pub use tiled::{TiledBackend, TiledConfig};
pub use top::Accelerator;
