//! Accelerator configuration: array geometry, clock, and scheduling
//! policy switches (each switch corresponds to one of the paper's
//! optimisations, so their benefit can be measured in ablation).

use hwsim::cycles::Frequency;
use serde::{Deserialize, Serialize};
use transformer::config::ModelConfig;

/// How the LayerNorm module computes row statistics (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerNormMode {
    /// "The straightforward way": after G completes, one full pass to
    /// compute `E(G)`, a second full pass for `var(G)`, then output.
    Straightforward,
    /// "Optimized by step one": `Σ G` accumulators run inline with the
    /// input, so only the variance pass remains after G completes.
    InlineMean,
    /// "Optimized by step one and step two": `Σ G` *and* `Σ G⊙G`
    /// accumulate inline and `var = E(G)² − E(G⊙G)` (Eq. 9); only the
    /// rsqrt lookup separates the last input from the first output.
    InlineMeanAndVariance,
}

/// Scheduling-policy switches of the computation flow (Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedPolicy {
    /// Run the Softmax module in parallel with the `V W_Vi + Bias_Vi`
    /// GEMM (Algorithm 1 line 6 — the paper's key utilization trick).
    /// When `false`, the systolic array stalls until softmax finishes.
    pub overlap_softmax: bool,
    /// Drain the output accumulators through a double-buffered port
    /// while the next GEMM is already streaming. When `false`, the array
    /// is blocked for the 64 drain cycles of every GEMM (single-buffered
    /// accumulators).
    pub overlap_drain: bool,
    /// LayerNorm latency optimisation level (Fig. 7).
    pub layernorm: LayerNormMode,
}

impl SchedPolicy {
    /// The paper's published design point: softmax overlapped,
    /// single-buffered drain, fully optimised LayerNorm.
    pub fn paper() -> Self {
        Self {
            overlap_softmax: true,
            overlap_drain: false,
            layernorm: LayerNormMode::InlineMeanAndVariance,
        }
    }

    /// A fully naive baseline (no published optimisation enabled) —
    /// the ablation floor.
    pub fn naive() -> Self {
        Self {
            overlap_softmax: false,
            overlap_drain: false,
            layernorm: LayerNormMode::Straightforward,
        }
    }

    /// Everything overlapped (double-buffered drain as well) — the
    /// optimistic ceiling of the timing model.
    pub fn aggressive() -> Self {
        Self {
            overlap_softmax: true,
            overlap_drain: true,
            layernorm: LayerNormMode::InlineMeanAndVariance,
        }
    }
}

/// Full accelerator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Target model hyper-parameters (Table I row).
    pub model: ModelConfig,
    /// Systolic-array row count = max sequence length `s`.
    pub s: usize,
    /// Clock frequency (the paper closes timing at 200 MHz).
    pub clock: Frequency,
    /// Scheduling policy.
    pub sched: SchedPolicy,
}

impl AccelConfig {
    /// The paper's evaluation point: Transformer-base, `s = 64`,
    /// 200 MHz, published policy.
    pub fn paper_default() -> Self {
        Self {
            model: ModelConfig::transformer_base(),
            s: 64,
            clock: Frequency::paper_clock(),
            sched: SchedPolicy::paper(),
        }
    }

    /// Columns of the systolic array (fixed at 64 = `d_k`).
    pub const SA_COLS: usize = 64;

    /// Validates structural assumptions.
    ///
    /// # Panics
    ///
    /// Panics if the model config is invalid or `s == 0`.
    pub fn validate(&self) {
        self.model.validate();
        assert!(self.s > 0, "sequence length must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_base_model_at_64() {
        let c = AccelConfig::paper_default();
        c.validate();
        assert_eq!(c.model.d_model, 512);
        assert_eq!(c.s, 64);
        assert_eq!(c.clock.as_mhz(), 200.0);
        assert!(c.sched.overlap_softmax);
        assert!(!c.sched.overlap_drain);
    }

    #[test]
    fn policies_differ() {
        assert_ne!(SchedPolicy::paper(), SchedPolicy::naive());
        assert_ne!(SchedPolicy::paper(), SchedPolicy::aggressive());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_s_rejected() {
        let mut c = AccelConfig::paper_default();
        c.s = 0;
        c.validate();
    }
}
