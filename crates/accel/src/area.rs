//! Parametric FPGA area and power model, calibrated to Table II.
//!
//! The single published synthesis point (Transformer-base, `s = 64`,
//! VU13P, Vivado 2018.2) pins the per-primitive constants; the model
//! then regenerates Table II exactly and extrapolates to other
//! configurations (experiment E11).
//!
//! Calibration notes:
//!
//! * **SA** — 420,867 LUT / 173,110 FF over 4,096 PEs → 102.75 LUT and
//!   42.26 FF per INT8 MAC PE (LUT-fabric multipliers, zero DSPs — as
//!   Table II shows, the paper maps the PEs to LUTs).
//! * **Softmax** — 21,190 LUT / 32,623 FF over `s = 64` row lanes →
//!   331.1 LUT, 509.7 FF per lane (the FF-heavy score buffering).
//! * **LayerNorm** — 164.9 LUT, 83.2 FF per lane; DSPs are exactly
//!   `2s + 1` (two multipliers per lane for `(G−E)·r` and `·γ`, one
//!   shared); BRAM is the γ/β store + rsqrt ROM + a `d_model × 16s`-bit
//!   G buffer, scaled by a 27.5/16 calibration factor to the published
//!   27.5.
//! * **Weight memory** — 456 BRAM36 falls out *structurally*: a
//!   double-buffered store of the four `d_model²` INT8 attention weight
//!   matrices behind a 512-bit read port
//!   (`2 · 4 · 512² bytes` at width 512 → 8 columns × 57 rows = 456).
//! * **Misc** (control, data-memory addressing, bias adders) — the Top
//!   residual: 243.4 LUT, 105.0 FF, 0.227 BRAM per array row.

use hwsim::memory::MemorySpec;
use hwsim::resources::{Device, Resources};
use serde::Serialize;

use crate::config::AccelConfig;

/// LUTs per INT8 MAC processing element.
pub const LUT_PER_PE: f64 = 420_867.0 / 4096.0;
/// Flip-flops per PE.
pub const FF_PER_PE: f64 = 173_110.0 / 4096.0;
/// LUTs per softmax row lane.
pub const LUT_PER_SOFTMAX_LANE: f64 = 21_190.0 / 64.0;
/// Flip-flops per softmax row lane.
pub const FF_PER_SOFTMAX_LANE: f64 = 32_623.0 / 64.0;
/// LUTs per LayerNorm row lane.
pub const LUT_PER_LN_LANE: f64 = 10_551.0 / 64.0;
/// Flip-flops per LayerNorm row lane.
pub const FF_PER_LN_LANE: f64 = 5_325.0 / 64.0;
/// BRAM calibration factor of the LayerNorm buffers (see module docs).
pub const LN_BRAM_CALIBRATION: f64 = 27.5 / 16.0;
/// LUTs of weight-memory addressing per BRAM block.
pub const LUT_PER_WEIGHT_BRAM: f64 = 3_379.0 / 456.0;
/// Control/misc LUTs per array row (Top residual at the base point).
pub const MISC_LUT_PER_ROW: f64 = 15_576.0 / 64.0;
/// Control/misc FFs per array row.
pub const MISC_FF_PER_ROW: f64 = 6_721.0 / 64.0;
/// Control/misc BRAM per array row.
pub const MISC_BRAM_PER_ROW: f64 = 14.5 / 64.0;

/// How the PE multipliers are mapped (an ablation the paper resolves
/// in favour of LUTs — Table II shows 0 DSPs in the SA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeImpl {
    /// INT8 multiply-add in LUT fabric (the paper's choice): ~103 LUTs
    /// and ~42 FFs per PE, zero DSPs.
    LutFabric,
    /// One DSP48E2 per PE (plus a small LUT shim for operand routing):
    /// trades 4,096 DSPs — a full third of the VU13P's 12,288 — for
    /// most of the SA's LUTs.
    Dsp,
}

/// LUT shim per DSP-mapped PE (operand mux + valid chaining).
pub const LUT_PER_DSP_PE: f64 = 12.0;
/// FFs per DSP-mapped PE (pipeline registers outside the DSP).
pub const FF_PER_DSP_PE: f64 = 10.0;

/// One row of the utilization report.
#[derive(Debug, Clone, Serialize)]
pub struct ModuleArea {
    /// Module name (Table II row label).
    pub name: String,
    /// Estimated resources.
    pub resources: Resources,
}

/// The calibrated area model for a configuration.
#[derive(Debug, Clone)]
pub struct AreaModel {
    cfg: AccelConfig,
}

impl AreaModel {
    /// Creates the model.
    pub fn new(cfg: AccelConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The `s × 64` systolic array (the paper's LUT-fabric PEs).
    pub fn systolic_array(&self) -> Resources {
        self.systolic_array_with(PeImpl::LutFabric)
    }

    /// The systolic array under a chosen PE mapping — the LUT-vs-DSP
    /// ablation. At the paper's design point the DSP mapping would
    /// consume 4,096 DSPs (33% of the device) to save ~372k LUTs;
    /// the paper's LUT choice keeps the DSP column free (129 total)
    /// and the LUT utilization at a routable 27%.
    pub fn systolic_array_with(&self, pe: PeImpl) -> Resources {
        let pes = (self.cfg.s * crate::partition::PANEL_COLS) as f64;
        match pe {
            PeImpl::LutFabric => Resources::new(LUT_PER_PE * pes, FF_PER_PE * pes, 0.0, 0.0),
            PeImpl::Dsp => Resources::new(LUT_PER_DSP_PE * pes, FF_PER_DSP_PE * pes, 0.0, pes),
        }
    }

    /// The softmax module (`s` lanes).
    pub fn softmax(&self) -> Resources {
        let s = self.cfg.s as f64;
        Resources::new(LUT_PER_SOFTMAX_LANE * s, FF_PER_SOFTMAX_LANE * s, 0.0, 0.0)
    }

    /// The LayerNorm module (`s` lanes, `2s + 1` DSP multipliers, γ/β +
    /// rsqrt + G-buffer BRAM).
    pub fn layernorm(&self) -> Resources {
        let s = self.cfg.s as f64;
        let d_model = self.cfg.model.d_model as u64;
        // rsqrt ROM (192 x 16b) + gamma/beta store + 16-bit G buffer
        let rsqrt = MemorySpec::new(fixedmath::rsqrt::LUT_ENTRIES as u64, 16).bram36_blocks();
        let gamma_beta = MemorySpec::new(2 * d_model, 16).bram36_blocks();
        let g_buffer = MemorySpec::new(d_model, 16 * self.cfg.s as u64).bram36_blocks();
        let bram = (rsqrt + gamma_beta + g_buffer) * LN_BRAM_CALIBRATION;
        Resources::new(LUT_PER_LN_LANE * s, FF_PER_LN_LANE * s, bram, 2.0 * s + 1.0)
    }

    /// The weight memory: double-buffered MHA weight store behind a
    /// 512-bit read port (64 INT8 weights per cycle for the array).
    pub fn weight_memory(&self) -> Resources {
        let d_model = self.cfg.model.d_model as u64;
        let bytes = 2 * 4 * d_model * d_model; // double-buffered W_Q/K/V/G
        let port_width = 8 * crate::partition::PANEL_COLS as u64; // 512 bits
        let spec = MemorySpec::new(bytes * 8 / port_width, port_width);
        let blocks = spec.bram36_blocks();
        Resources::new(LUT_PER_WEIGHT_BRAM * blocks, 80.0, blocks, 0.0)
    }

    /// Control logic, data-memory addressing and the two banks of `s`
    /// bias/residual adders (the Top-row residual).
    pub fn misc(&self) -> Resources {
        let s = self.cfg.s as f64;
        Resources::new(
            MISC_LUT_PER_ROW * s,
            MISC_FF_PER_ROW * s,
            MISC_BRAM_PER_ROW * s,
            0.0,
        )
    }

    /// Top-level total.
    pub fn top(&self) -> Resources {
        self.systolic_array()
            + self.softmax()
            + self.layernorm()
            + self.weight_memory()
            + self.misc()
    }

    /// The full Table-II report: Available, Top and the per-module rows.
    pub fn table2(&self) -> Vec<ModuleArea> {
        let device = Device::vu13p();
        let sa_name = format!("{}x{} SA", self.cfg.s, crate::partition::PANEL_COLS);
        vec![
            ModuleArea {
                name: "Available".into(),
                resources: device.available,
            },
            ModuleArea {
                name: "Top".into(),
                resources: self.top(),
            },
            ModuleArea {
                name: sa_name,
                resources: self.systolic_array(),
            },
            ModuleArea {
                name: "Softmax".into(),
                resources: self.softmax(),
            },
            ModuleArea {
                name: "LayerNorm".into(),
                resources: self.layernorm(),
            },
            ModuleArea {
                name: "Weight Memory".into(),
                resources: self.weight_memory(),
            },
        ]
    }

    /// Whether the configuration fits the paper's VU13P.
    pub fn fits_vu13p(&self) -> bool {
        Device::vu13p().fits(&self.top())
    }
}

/// Power estimate at an operating point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PowerEstimate {
    /// Device static power (W) — the paper reports 3.4 W.
    pub static_w: f64,
    /// Dynamic power (W), modelled as proportional to active LUTs ×
    /// clock (calibrated to the paper's 13.3 W at 200 MHz).
    pub dynamic_w: f64,
}

impl PowerEstimate {
    /// Total on-chip power.
    pub fn total_w(&self) -> f64 {
        self.static_w + self.dynamic_w
    }
}

/// Dynamic-power coefficient, calibrated so that the base design at
/// 200 MHz dissipates the published 13.3 W.
pub const DYNAMIC_W_PER_LUT_MHZ: f64 = 13.3 / (471_563.0 * 200.0);

/// Published VU13P static power at the paper's operating point.
pub const STATIC_W: f64 = 3.4;

/// Energy of one operation lasting `latency_us` at `power_w` total
/// on-chip power, in microjoules. With the paper's 16.7 W and the MHA
/// ResBlock's 105 µs this is ~1.75 mJ — against a 250 W-class V100
/// spending 1,558 µs (~390 mJ), a >200x energy advantage, the metric
/// embedded-deployment papers ultimately care about.
pub fn energy_uj(power_w: f64, latency_us: f64) -> f64 {
    power_w * latency_us
}

/// Typical board power of the paper's GPU baseline (V100 TDP, W) —
/// used only for the energy comparison; the paper reports latency, not
/// GPU power.
pub const V100_TDP_W: f64 = 250.0;

/// Estimates on-chip power for a configuration at its clock.
pub fn estimate_power(model: &AreaModel, cfg: &AccelConfig) -> PowerEstimate {
    PowerEstimate {
        static_w: STATIC_W,
        dynamic_w: DYNAMIC_W_PER_LUT_MHZ * model.top().lut * cfg.clock.as_mhz(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AreaModel {
        AreaModel::new(AccelConfig::paper_default())
    }

    #[test]
    fn sa_matches_table2_exactly() {
        let r = base().systolic_array();
        assert!((r.lut - 420_867.0).abs() < 1.0);
        assert!((r.ff - 173_110.0).abs() < 1.0);
        assert_eq!(r.bram, 0.0);
        assert_eq!(r.dsp, 0.0);
    }

    #[test]
    fn softmax_matches_table2_exactly() {
        let r = base().softmax();
        assert!((r.lut - 21_190.0).abs() < 1.0);
        assert!((r.ff - 32_623.0).abs() < 1.0);
    }

    #[test]
    fn layernorm_matches_table2() {
        let r = base().layernorm();
        assert!((r.lut - 10_551.0).abs() < 1.0);
        assert!((r.ff - 5_325.0).abs() < 1.0);
        assert_eq!(r.dsp, 129.0);
        assert!((r.bram - 27.5).abs() < 0.6, "bram {}", r.bram);
    }

    #[test]
    fn weight_memory_is_structurally_456_blocks() {
        let r = base().weight_memory();
        assert_eq!(r.bram, 456.0, "double-buffered MHA store at width 512");
        assert!((r.lut - 3_379.0).abs() < 1.0);
        assert_eq!(r.ff, 80.0);
    }

    #[test]
    fn top_matches_table2_within_tolerance() {
        let r = base().top();
        assert!(
            (r.lut - 471_563.0).abs() / 471_563.0 < 0.005,
            "lut {}",
            r.lut
        );
        assert!((r.ff - 217_859.0).abs() / 217_859.0 < 0.005, "ff {}", r.ff);
        assert!((r.bram - 498.0).abs() / 498.0 < 0.01, "bram {}", r.bram);
        assert_eq!(r.dsp, 129.0);
        assert!(base().fits_vu13p());
    }

    #[test]
    fn table2_has_six_rows_in_paper_order() {
        let t = base().table2();
        let names: Vec<&str> = t.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Available",
                "Top",
                "64x64 SA",
                "Softmax",
                "LayerNorm",
                "Weight Memory"
            ]
        );
    }

    #[test]
    fn power_matches_published_point() {
        let cfg = AccelConfig::paper_default();
        let p = estimate_power(&base(), &cfg);
        assert!((p.static_w - 3.4).abs() < 1e-9);
        assert!((p.dynamic_w - 13.3).abs() / 13.3 < 0.005, "{}", p.dynamic_w);
        assert!((p.total_w() - 16.7).abs() < 0.1);
    }

    #[test]
    fn dsp_mapping_trades_luts_for_a_third_of_the_dsps() {
        let m = base();
        let lut_based = m.systolic_array_with(PeImpl::LutFabric);
        let dsp_based = m.systolic_array_with(PeImpl::Dsp);
        assert_eq!(dsp_based.dsp, 4096.0);
        assert!(dsp_based.lut < lut_based.lut / 5.0);
        // both fit the device in isolation; the DSP variant eats 33%
        // of the DSP column
        let device = hwsim::resources::Device::vu13p();
        assert!(device.fits(&dsp_based));
        assert!((dsp_based.dsp / device.available.dsp - 1.0 / 3.0).abs() < 0.01);
        // default matches the paper's published SA row
        assert_eq!(m.systolic_array(), lut_based);
    }

    #[test]
    fn energy_advantage_is_two_orders_of_magnitude() {
        // FPGA: 16.7 W x 105 us; GPU: 250 W x 1557.8 us
        let fpga = energy_uj(16.7, 105.0);
        let gpu = energy_uj(V100_TDP_W, 1557.8);
        assert!((fpga - 1753.5).abs() < 1.0);
        let advantage = gpu / fpga;
        assert!(advantage > 200.0, "advantage {advantage}");
    }

    #[test]
    fn bigger_models_need_more_weight_memory() {
        let mut cfg = AccelConfig::paper_default();
        cfg.model = transformer::config::ModelConfig::transformer_big();
        let big = AreaModel::new(cfg);
        assert!(big.weight_memory().bram > 4.0 * 456.0 - 64.0);
    }

    #[test]
    fn longer_arrays_scale_sa_linearly() {
        let mut cfg = AccelConfig::paper_default();
        cfg.s = 128;
        let m = AreaModel::new(cfg);
        let r = m.systolic_array();
        assert!((r.lut - 2.0 * 420_867.0).abs() < 2.0);
        // a 128-row array still fits the VU13P in LUTs? 841k + ... < 1.7M
        assert!(m.fits_vu13p(), "128-row design should still fit");
    }

    #[test]
    fn transformer_big_fits_or_reports_honestly() {
        let mut cfg = AccelConfig::paper_default();
        cfg.model = transformer::config::ModelConfig::transformer_big();
        let m = AreaModel::new(cfg);
        // 2x weight memory (~1.8k blocks) + misc stays under 2,688 BRAMs
        let top = m.top();
        assert!(top.bram < 2_688.0, "bram {}", top.bram);
    }
}
