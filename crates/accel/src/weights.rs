//! Weight-memory images: the byte-exact layout a host would DMA into
//! the accelerator's weight memory.
//!
//! The weight memory feeds the systolic array one 512-bit word (64 INT8
//! weights — one row of a Fig. 4 panel) per cycle. An image therefore
//! stores every panel row-major, 64 bytes per word, in Algorithm-1
//! issue order, with a directory mapping panel ids to word offsets. The
//! image for one MHA ResBlock must fit the weight memory the area model
//! provisions (456 BRAM36 = two buffers of 1 MB + bias storage).

use bytes::{BufMut, Bytes, BytesMut};
use quantized::{QuantFfnResBlock, QuantMhaResBlock};
use tensor::Mat;

use crate::partition::PANEL_COLS;

/// Bytes per weight-memory word (512-bit port = one panel row).
pub const WORD_BYTES: usize = PANEL_COLS;

/// Directory entry: where one panel lives in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanelEntry {
    /// Panel label (e.g. `"wq.0"`, `"w1.17"`).
    pub name: String,
    /// First word offset.
    pub word_offset: usize,
    /// Number of words (= the panel's reduction depth `k`).
    pub words: usize,
}

/// A packed weight image plus its panel directory.
#[derive(Debug, Clone)]
pub struct WeightImage {
    data: Bytes,
    directory: Vec<PanelEntry>,
}

/// Packs one weight matrix into 64-byte panel-row words, appending to
/// `buf` and the directory. Panels narrower than 64 columns (non-Table-I
/// configs) are zero-padded to the word width, exactly as the memory's
/// unused lanes would be.
fn pack_matrix(buf: &mut BytesMut, dir: &mut Vec<PanelEntry>, name: &str, w: &Mat<i8>) {
    for (p, panel) in w.col_panels(PANEL_COLS).iter().enumerate() {
        let word_offset = buf.len() / WORD_BYTES;
        for r in 0..panel.rows() {
            let row = panel.row(r);
            for &v in row {
                buf.put_i8(v);
            }
            for _ in row.len()..WORD_BYTES {
                buf.put_i8(0);
            }
        }
        dir.push(PanelEntry {
            name: format!("{name}.{p}"),
            word_offset,
            words: panel.rows(),
        });
    }
}

impl WeightImage {
    /// Packs an MHA ResBlock's four projection matrices in Algorithm-1
    /// issue order (`W_Q, W_K, W_V, W_G`).
    pub fn from_mha(block: &QuantMhaResBlock) -> Self {
        let (wq, wk, wv, wo) = block.projections();
        let mut buf = BytesMut::new();
        let mut dir = Vec::new();
        pack_matrix(&mut buf, &mut dir, "wq", wq.weight_q());
        pack_matrix(&mut buf, &mut dir, "wk", wk.weight_q());
        pack_matrix(&mut buf, &mut dir, "wv", wv.weight_q());
        pack_matrix(&mut buf, &mut dir, "wg", wo.weight_q());
        Self {
            data: buf.freeze(),
            directory: dir,
        }
    }

    /// Packs an FFN ResBlock's two sublayer matrices (`W_1, W_2`).
    pub fn from_ffn(block: &QuantFfnResBlock) -> Self {
        let (w1, w2) = block.sublayers();
        let mut buf = BytesMut::new();
        let mut dir = Vec::new();
        pack_matrix(&mut buf, &mut dir, "w1", w1.weight_q());
        pack_matrix(&mut buf, &mut dir, "w2", w2.weight_q());
        Self {
            data: buf.freeze(),
            directory: dir,
        }
    }

    /// The raw image bytes (what the host DMAs).
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Image size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Image size in 512-bit words.
    pub fn word_len(&self) -> usize {
        self.data.len() / WORD_BYTES
    }

    /// The panel directory, in streaming order.
    pub fn directory(&self) -> &[PanelEntry] {
        &self.directory
    }

    /// Looks up a panel by name.
    pub fn find(&self, name: &str) -> Option<&PanelEntry> {
        self.directory.iter().find(|e| e.name == name)
    }

    /// Reconstructs a panel matrix from the image — the readback path,
    /// proving the layout is lossless.
    ///
    /// # Panics
    ///
    /// Panics if the panel name is unknown.
    pub fn unpack(&self, name: &str, cols: usize) -> Mat<i8> {
        let entry = self
            .find(name)
            .unwrap_or_else(|| panic!("unknown panel '{name}'"));
        assert!(cols <= WORD_BYTES, "panel wider than a word");
        Mat::from_fn(entry.words, cols, |r, c| {
            self.data[(entry.word_offset + r) * WORD_BYTES + c] as i8
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quantized::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::ffn::FfnResBlock;
    use transformer::mha::MhaResBlock;

    fn blocks() -> (QuantMhaResBlock, QuantFfnResBlock) {
        // A Table-I-patterned mini config so panels are exactly 64 wide.
        let cfg = ModelConfig {
            name: "img".into(),
            d_model: 128,
            d_ff: 512,
            h: 2,
            n_layers: 1,
            vocab: 16,
            max_len: 8,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mha = MhaResBlock::new(&cfg, &mut rng);
        let ffn = FfnResBlock::new(&cfg, &mut rng);
        let calib: Vec<_> = (0..2)
            .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
            .collect();
        (
            QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware),
            QuantFfnResBlock::from_f32(&ffn, &calib),
        )
    }

    #[test]
    fn mha_image_size_matches_weight_bytes() {
        let (mha, _) = blocks();
        let img = WeightImage::from_mha(&mha);
        // 4 matrices of 128x128 INT8, panels exactly 64 wide
        assert_eq!(img.byte_len(), 4 * 128 * 128);
        assert_eq!(img.word_len(), 4 * 128 * 2);
        // directory: 4 matrices x 2 panels
        assert_eq!(img.directory().len(), 8);
    }

    #[test]
    fn panels_round_trip_losslessly() {
        let (mha, ffn) = blocks();
        let img = WeightImage::from_mha(&mha);
        let (wq, _, _, wo) = mha.projections();
        let want_q0 = wq.weight_q().col_panels(64)[0].clone();
        assert_eq!(img.unpack("wq.0", 64), want_q0);
        let want_g1 = wo.weight_q().col_panels(64)[1].clone();
        assert_eq!(img.unpack("wg.1", 64), want_g1);

        let fimg = WeightImage::from_ffn(&ffn);
        let (w1, w2) = ffn.sublayers();
        assert_eq!(fimg.unpack("w1.7", 64), w1.weight_q().col_panels(64)[7]);
        assert_eq!(fimg.unpack("w2.0", 64), w2.weight_q().col_panels(64)[0]);
    }

    #[test]
    fn directory_is_contiguous_and_ordered() {
        let (_, ffn) = blocks();
        let img = WeightImage::from_ffn(&ffn);
        let mut expected_offset = 0;
        for e in img.directory() {
            assert_eq!(e.word_offset, expected_offset, "{}", e.name);
            expected_offset += e.words;
        }
        assert_eq!(expected_offset, img.word_len());
    }

    #[test]
    fn base_model_image_fits_the_provisioned_weight_memory() {
        // The area model provisions 456 BRAM36 as a double buffer of the
        // MHA matrices: each buffer must hold one MHA image.
        let cfg = ModelConfig::transformer_base();
        let image_bytes = 4 * cfg.d_model * cfg.d_model; // INT8
        let provisioned = 456.0 * 36.0 * 1024.0 / 8.0 / 2.0; // one buffer
        assert!(
            (image_bytes as f64) <= provisioned,
            "{image_bytes} > {provisioned}"
        );
    }

    #[test]
    #[should_panic(expected = "unknown panel")]
    fn unknown_panel_rejected() {
        let (_, ffn) = blocks();
        let img = WeightImage::from_ffn(&ffn);
        let _ = img.unpack("nope.0", 64);
    }

    #[test]
    fn narrow_panels_are_zero_padded() {
        // tiny config: d_model = 32 < 64 -> single panel, padded words
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(10);
        let mha = MhaResBlock::new(&cfg, &mut rng);
        let calib: Vec<_> = (0..2)
            .map(|_| tensor::init::normal(&mut rng, 4, cfg.d_model, 1.0))
            .collect();
        let q = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
        let img = WeightImage::from_mha(&q);
        // each word is still 64 bytes; columns 32..64 are zero
        let e = img.find("wq.0").unwrap();
        for r in 0..e.words {
            for c in 32..64 {
                assert_eq!(img.data()[(e.word_offset + r) * WORD_BYTES + c], 0);
            }
        }
    }
}
