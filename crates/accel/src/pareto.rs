//! Reusable Pareto-frontier extraction over any number of objectives.
//!
//! [`crate::sweep::pareto_latency_vs_lut`] started life as a two-axis
//! (latency, LUT) helper; the cross-backend explorer needs at least
//! three axes (cycles × area × accuracy), so the dominance machinery
//! lives here, generic over an objective extractor. All objectives are
//! **minimised**; callers flip signs for maximised quantities (e.g.
//! pass `-sqnr_db` to prefer higher SQNR).

/// Strict Pareto dominance: `a` dominates `b` iff `a` is no worse on
/// every objective and strictly better on at least one. Both slices
/// must have the same length (one entry per objective, minimised).
///
/// # Panics
///
/// Panics if the objective vectors differ in length.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective arity mismatch");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the Pareto frontier of `points` under the objective
/// extractor `objectives` (all minimised): a point survives iff no
/// other point strictly dominates it. Points with identical objective
/// vectors all survive (none dominates the other); callers wanting one
/// representative should dedup afterwards, as
/// [`crate::sweep::pareto_latency_vs_lut`] does.
///
/// The frontier is returned sorted by the first objective (ties broken
/// by the remaining objectives in order), which keeps serialized
/// frontiers stable across runs.
///
/// # Panics
///
/// Panics if any objective is NaN (dominance would be ill-defined) or
/// the extractor returns vectors of differing arity.
pub fn front_by<T: Clone>(points: &[T], objectives: impl Fn(&T) -> Vec<f64>) -> Vec<T> {
    let objs: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            let o = objectives(p);
            assert!(
                o.iter().all(|v| !v.is_nan()),
                "NaN objective breaks dominance"
            );
            o
        })
        .collect();
    if let Some(first) = objs.first() {
        assert!(
            objs.iter().all(|o| o.len() == first.len()),
            "objective arity mismatch"
        );
    }
    let mut frontier: Vec<(T, Vec<f64>)> = points
        .iter()
        .zip(&objs)
        .filter(|(_, cand)| !objs.iter().any(|other| dominates(other, cand)))
        .map(|(p, o)| (p.clone(), o.clone()))
        .collect();
    frontier.sort_by(|(_, a), (_, b)| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.partial_cmp(y).expect("non-NaN objectives"))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    frontier.into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 1.0]));
        assert!(dominates(&[1.0, 1.0, 0.0], &[1.0, 2.0, 0.0]));
        assert!(
            !dominates(&[1.0, 1.0], &[1.0, 1.0]),
            "equal never dominates"
        );
        assert!(!dominates(&[0.0, 2.0], &[2.0, 0.0]), "trade-off");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mismatched_arity_rejected() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn three_objective_front() {
        // (cycles, lut, noise): a is fast+big+exact, b slow+small+exact,
        // c mid+mid+lossy, d dominated by c on every axis.
        let pts = vec![
            ("a", [1.0, 9.0, 0.0]),
            ("b", [9.0, 1.0, 0.0]),
            ("c", [5.0, 5.0, 0.5]),
            ("d", [6.0, 6.0, 0.6]),
        ];
        let front = front_by(&pts, |p| p.1.to_vec());
        let names: Vec<&str> = front.iter().map(|p| p.0).collect();
        assert_eq!(names, vec!["a", "c", "b"]);
    }

    #[test]
    fn incomparable_points_all_survive_and_sort_stably() {
        let pts = vec![("x", [2.0, 1.0]), ("y", [1.0, 2.0]), ("z", [1.0, 2.0])];
        let front = front_by(&pts, |p| p.1.to_vec());
        assert_eq!(front.len(), 3);
        assert_eq!(front[0].1[0], 1.0, "sorted by first objective");
        assert_eq!(front[2].0, "x");
    }

    #[test]
    fn empty_input_yields_empty_front() {
        let front = front_by(&Vec::<(&str, [f64; 2])>::new(), |p| p.1.to_vec());
        assert!(front.is_empty());
    }
}
