//! Design-space sweeps and Pareto-frontier extraction — the systematic
//! version of the paper's single published design point.

use serde::Serialize;
use transformer::config::ModelConfig;

use crate::area::{estimate_power, AreaModel};
use crate::config::AccelConfig;
use crate::scheduler;

/// One evaluated design point.
#[derive(Debug, Clone, Serialize)]
pub struct DesignPoint {
    /// Target model name.
    pub model: String,
    /// Array rows / max sequence length.
    pub s: usize,
    /// MHA + FFN ResBlock latency (µs) — one encoder layer's compute.
    pub layer_latency_us: f64,
    /// Total LUTs.
    pub lut: f64,
    /// Total BRAM36 blocks.
    pub bram: f64,
    /// Estimated power (W).
    pub power_w: f64,
    /// Whether the point fits the VU13P.
    pub fits: bool,
}

/// Evaluates one configuration.
pub fn evaluate_point(model: &ModelConfig, s: usize) -> DesignPoint {
    let cfg = AccelConfig {
        model: model.clone(),
        s,
        ..AccelConfig::paper_default()
    };
    let mha = scheduler::schedule_mha(&cfg);
    let ffn = scheduler::schedule_ffn(&cfg);
    let area = AreaModel::new(cfg.clone());
    let top = area.top();
    DesignPoint {
        model: model.name.clone(),
        s,
        layer_latency_us: mha.latency_us + ffn.latency_us,
        lut: top.lut,
        bram: top.bram,
        power_w: estimate_power(&area, &cfg).total_w(),
        fits: area.fits_vu13p(),
    }
}

/// Evaluates an `array_s`-row array running a *fixed* workload of
/// `workload_s`-token sentences (`workload_s <= array_s`). This is the
/// deployment question the paper answers with `s = 64`: what array
/// height should serve a given sequence-length budget?
///
/// # Panics
///
/// Panics if `workload_s > array_s`.
pub fn evaluate_point_fixed_workload(
    model: &ModelConfig,
    array_s: usize,
    workload_s: usize,
) -> DesignPoint {
    assert!(workload_s <= array_s, "workload exceeds the array");
    let cfg = AccelConfig {
        model: model.clone(),
        s: array_s,
        ..AccelConfig::paper_default()
    };
    let mha = scheduler::schedule_mha_cross(&cfg, workload_s, workload_s);
    let ffn = scheduler::schedule_ffn_len(&cfg, workload_s);
    let area = AreaModel::new(cfg.clone());
    let top = area.top();
    DesignPoint {
        model: model.name.clone(),
        s: array_s,
        layer_latency_us: mha.latency_us + ffn.latency_us,
        lut: top.lut,
        bram: top.bram,
        power_w: estimate_power(&area, &cfg).total_w(),
        fits: area.fits_vu13p(),
    }
}

/// Sweeps every `(model, s)` combination.
///
/// Points are evaluated in parallel (`tensor::par`, honouring
/// `ACCEL_THREADS`) but returned in grid order — models outermost,
/// `s_values` inner — identically to a serial double loop.
pub fn sweep(models: &[ModelConfig], s_values: &[usize]) -> Vec<DesignPoint> {
    let grid: Vec<(&ModelConfig, usize)> = models
        .iter()
        .flat_map(|m| s_values.iter().map(move |&s| (m, s)))
        .collect();
    tensor::par::par_map(&grid, |&(m, s)| evaluate_point(m, s))
}

/// Extracts the Pareto frontier over `(layer_latency_us, lut)` from the
/// *feasible* points (both minimised): a point survives if no other
/// feasible point is at least as good on both axes and strictly better
/// on one. Returned sorted by latency.
///
/// The dominance machinery lives in [`crate::pareto`], which handles
/// any number of objectives; this keeps the historical two-axis entry
/// point (and the `results/pareto.json` layout) stable.
pub fn pareto_latency_vs_lut(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let feasible: Vec<DesignPoint> = points.iter().filter(|p| p.fits).cloned().collect();
    let mut frontier = crate::pareto::front_by(&feasible, |p| vec![p.layer_latency_us, p.lut]);
    frontier.dedup_by(|a, b| a.layer_latency_us == b.layer_latency_us && a.lut == b.lut);
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_sweep() -> Vec<DesignPoint> {
        sweep(&[ModelConfig::transformer_base()], &[16, 32, 64, 128, 256])
    }

    #[test]
    fn sweep_covers_the_grid() {
        let pts = sweep(&ModelConfig::table1(), &[32, 64]);
        assert_eq!(pts.len(), 8);
        assert!(pts.iter().all(|p| p.layer_latency_us > 0.0 && p.lut > 0.0));
    }

    #[test]
    fn infeasible_points_are_flagged_and_excluded_from_frontier() {
        let pts = base_sweep();
        let s256 = pts.iter().find(|p| p.s == 256).unwrap();
        assert!(!s256.fits, "s = 256 exceeds the VU13P LUT budget");
        let frontier = pareto_latency_vs_lut(&pts);
        assert!(frontier.iter().all(|p| p.fits));
    }

    #[test]
    fn frontier_is_monotone() {
        let pts = base_sweep();
        let frontier = pareto_latency_vs_lut(&pts);
        assert!(!frontier.is_empty());
        // along the frontier, lower latency must cost more LUTs
        for w in frontier.windows(2) {
            assert!(w[0].layer_latency_us <= w[1].layer_latency_us);
            assert!(w[0].lut >= w[1].lut, "frontier not monotone in LUTs");
        }
    }

    #[test]
    fn dominated_points_are_removed() {
        // For the base model, MHA latency grows with s while FFN is
        // s-independent and LUTs grow linearly in s — so larger s is
        // strictly dominated (slower AND bigger): the frontier should be
        // exactly the smallest feasible s.
        let pts = base_sweep();
        let frontier = pareto_latency_vs_lut(&pts);
        assert_eq!(frontier.len(), 1, "{frontier:?}");
        assert_eq!(frontier[0].s, 16);
    }

    #[test]
    fn for_a_fixed_s64_workload_the_paper_array_is_optimal() {
        // Deployment view: sentences are 64 tokens; candidate arrays are
        // 64..256 rows. Extra rows sit idle (stream cycles depend on k,
        // not rows) while LUTs scale linearly — so the 64-row array
        // Pareto-dominates everything larger, exactly the paper's
        // "s x 64 with s = max sequence length" sizing rule.
        let base = ModelConfig::transformer_base();
        let pts: Vec<DesignPoint> = [64usize, 128, 192, 256]
            .iter()
            .map(|&array_s| evaluate_point_fixed_workload(&base, array_s, 64))
            .collect();
        let frontier = pareto_latency_vs_lut(&pts);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].s, 64);
        // and latency is identical across array sizes (rows idle)
        for p in &pts {
            assert!((p.layer_latency_us - pts[0].layer_latency_us).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_point_is_dominated_only_by_smaller_arrays() {
        // The paper's s = 64 is off this frontier (s = 16 computes the
        // same layer more slowly per-token but these latency numbers are
        // for the *whole layer at the array's own s*)... the interesting
        // check: nothing with MORE LUTs beats s = 64's latency by much.
        let pts = base_sweep();
        let p64 = pts.iter().find(|p| p.s == 64).unwrap();
        let p128 = pts.iter().find(|p| p.s == 128).unwrap();
        assert!(p128.lut > p64.lut && p128.layer_latency_us >= p64.layer_latency_us);
    }
}
