//! FTRANS-style block-circulant FFN backend: circulant weight blocks
//! executed via the FFT trick in a small fixed-point FFT unit.
//!
//! FTRANS (arXiv 2007.08563) compresses Transformer weights by
//! constraining every `b × b` block of a weight matrix to be circulant —
//! the block is then defined by a single length-`b` kernel, a `b×`
//! parameter reduction — and computes each block's matvec as a circular
//! convolution: `y_J = Σ_I IFFT(FFT(x_I) ∘ FFT(c_{I,J}))`. The FFT of
//! every kernel is precomputed at compile time, so the runtime datapath
//! is: FFT each input block once, multiply-accumulate in the frequency
//! domain across input blocks, one IFFT per output block.
//!
//! This backend implements that unit for the **FFN ResBlock only**
//! (`caps().supports_ffn`); attention stays on a systolic backend, which
//! mirrors FTRANS itself (its block-circulant gains concentrate in the
//! large FFN/embedding matrices). Lowering consumes the *same*
//! [`graph::ffn_graph`] the other backends lower — the walk in
//! [`CirculantBackend::lower_ffn`] mirrors [`crate::exec::lower_ffn`]
//! node for node, emitting [`CircOp`]s instead of panel commands.
//!
//! ## Numerics and accuracy
//!
//! The unit runs on Q19.12 fixed point ([`fixedmath::fft`]). Activations
//! enter by dequantizing the block's INT8 codes, leave by requantizing
//! with the layer's calibrated output scale, and the residual-add +
//! LayerNorm tail reuses the reference integer LayerNorm — so outputs
//! live in exactly the reference code space and plug into the existing
//! SQNR/BLEU harness.
//!
//! On weights that *are* block-circulant (the FTRANS training regime,
//! reproduced in tests with [`circulantize_ffn`]) the only error sources
//! are FFT rounding and the ±1-code requantization skew, and end-to-end
//! SQNR against the bit-exact reference must stay above
//! [`CIRC_SQNR_FLOOR_DB`] — asserted here and in
//! `tests/backend_identity.rs`. On unconstrained weights the circulant
//! *projection* (each block replaced by its nearest circulant, wrapped
//! diagonal means) dominates the error; the explorer reports that SQNR,
//! it is not asserted.
//!
//! ## Fault checking (ABFT for the FFT path)
//!
//! The serving layer's ABFT checksums guard GEMMs; a frequency-domain
//! datapath needs its own invariants. This backend keeps two per output
//! block, both byproducts the hardware gets nearly for free:
//!
//! 1. **Accumulation checksum.** A separate register accumulates
//!    `S = Σ_k Y_k` from the *products* as they are written to the
//!    spectral SRAM (an adder tree beside the MAC lanes; never re-read
//!    from the store). Since `y₀ = (1/b)·Σ_k Y_k`, the IFFT output must
//!    satisfy `b·y₀ = S`. Every bin contributes to `y₀`, so a bit flip
//!    in **any** bin of the stored spectrum — DC included — diverges
//!    from the independently-kept register.
//! 2. **IFFT self-consistency.** For an exact IFFT, `Σ_t y_t = Y[0]`:
//!    the sum of each output block must equal its DC bin (within a
//!    rounding tolerance). This covers the IFFT datapath itself.
//!
//! [`CirculantBackend::run_ffn_checked`] flags violations of either;
//! injection is exercised in this module's tests and the
//! fault-injection campaign's circulant smoke test.

use fixedmath::fft::{self, Cpx};
use fixedmath::fx::{self, FRAC};
use graph::{Graph, GraphKind, Op, WeightId};
use hwsim::memory::MemorySpec;
use hwsim::resources::Resources;
use quantized::{QLinear, QuantFfnResBlock, QuantMhaResBlock};
use serde::Serialize;
use tensor::Mat;
use transformer::ffn::FfnResBlock;
use transformer::opt::HasParams;

use crate::area;
use crate::backend::{Backend, BackendCaps, BackendProgram};
use crate::config::AccelConfig;
use crate::layernorm_module;

/// Documented end-to-end SQNR floor (dB) of the circulant path against
/// the bit-exact reference, on block-circulant weights. See the module
/// docs for what contributes the noise.
pub const CIRC_SQNR_FLOOR_DB: f64 = 20.0;

/// Absolute fixed-point tolerance of the ABFT checks per output block:
/// IFFT rounding contributes ~`(log₂ b + 1)/2` LSB per sample, summed
/// over `b` samples; 32 LSB per sample is a ×8 guard band. The
/// accumulation-checksum check (`b·y₀` vs `S`) scales this by another
/// factor of `b` for the `×b` amplification of `y₀`'s rounding error.
pub fn dc_check_tolerance(b: usize) -> i64 {
    32 * b as i64
}

/// Circulant-backend configuration.
#[derive(Debug, Clone, Serialize)]
pub struct CirculantConfig {
    /// Model dimensions, clock and LayerNorm policy (`base.s` is the
    /// workload row count).
    pub base: AccelConfig,
    /// Circulant block size `b` (power of two; must divide `d_model`
    /// and `d_ff`). FTRANS evaluates 4–16; 8 is its sweet spot.
    pub block: usize,
    /// Parallel butterfly/MAC lanes of the FFT unit.
    pub lanes: usize,
}

impl CirculantConfig {
    /// The FTRANS-style default: paper model, `b = 8`, 16 lanes.
    pub fn ftrans_default() -> Self {
        Self {
            base: AccelConfig::paper_default(),
            block: 8,
            lanes: 16,
        }
    }

    /// Validates geometry.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a power of two ≥ 2, does not divide
    /// `d_model`/`d_ff`, or `lanes == 0`.
    pub fn validate(&self) {
        self.base.validate();
        assert!(
            self.block.is_power_of_two() && self.block >= 2,
            "circulant block size must be a power of two >= 2"
        );
        assert_eq!(
            self.base.model.d_model % self.block,
            0,
            "block must divide d_model"
        );
        assert_eq!(
            self.base.model.d_ff % self.block,
            0,
            "block must divide d_ff"
        );
        assert!(self.lanes > 0, "FFT unit needs at least one lane");
    }
}

/// One operation of the FFT unit's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CircOp {
    /// FFT every length-`b` input block of the layer's activations
    /// (once per row; spectra are then reused by every `Accumulate`).
    Transform {
        /// FFN sublayer (1 or 2).
        layer: u8,
    },
    /// Frequency-domain MAC across all input blocks for one output
    /// block, followed by its IFFT, bias add (+ ReLU on layer 1) and
    /// requantization.
    Accumulate {
        /// FFN sublayer (1 or 2).
        layer: u8,
        /// Output-block index (`0 .. d_out / b`).
        block: usize,
    },
    /// Residual add + integer LayerNorm tail (shared with the other
    /// backends' reference implementation).
    LayerNorm,
}

/// A lowered FFT-unit program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct CircProgram {
    /// Operations in issue order.
    pub ops: Vec<CircOp>,
}

/// Outcome of the spectral ABFT checks over one `run_ffn_checked` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CircCheckReport {
    /// Output blocks checked (rows × output blocks, both layers).
    pub blocks_checked: u64,
    /// Blocks where the accumulation checksum or the IFFT DC identity
    /// failed.
    pub violations: u64,
}

/// A fault to inject into the accumulated spectrum of one output block
/// (before its IFFT) — models an SEU in the frequency-domain
/// accumulator SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircFault {
    /// FFN sublayer (1 or 2).
    pub layer: u8,
    /// Activation row.
    pub row: usize,
    /// Output-block index.
    pub out_block: usize,
    /// Spectrum bin to corrupt.
    pub bin: usize,
    /// Bit to flip in the bin's real part.
    pub bit: u32,
}

/// Projects one `b × b` block of `w` (top-left corner `(r0, c0)`) onto
/// its nearest circulant in the Frobenius sense: kernel
/// `c[d] = mean_t w[r0+t][c0+(t+d) mod b]` (the mean of each wrapped
/// diagonal), so that `(x · W_block)_j ≈ (x ⊛ c)_j`.
pub fn project_block(w: &Mat<f32>, r0: usize, c0: usize, b: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; b];
    for d in 0..b {
        let mut acc = 0.0f32;
        for t in 0..b {
            acc += w[(r0 + t, c0 + (t + d) % b)];
        }
        c[d] = acc / b as f32;
    }
    c
}

/// Rebuilds the full block-circulant approximation of `w` (every `b × b`
/// block replaced by its [`project_block`] circulant).
///
/// # Panics
///
/// Panics if `b` does not divide both dimensions of `w`.
pub fn project_circulant(w: &Mat<f32>, b: usize) -> Mat<f32> {
    assert_eq!(w.rows() % b, 0, "b must divide rows");
    assert_eq!(w.cols() % b, 0, "b must divide cols");
    let mut out = Mat::zeros(w.rows(), w.cols());
    for bi in 0..w.rows() / b {
        for bj in 0..w.cols() / b {
            let c = project_block(w, bi * b, bj * b, b);
            for t in 0..b {
                for j in 0..b {
                    out[(bi * b + t, bj * b + j)] = c[(j + b - t % b) % b];
                }
            }
        }
    }
    out
}

/// Replaces both FFN weight matrices of `block` with their
/// block-circulant projections in place — the repo's stand-in for
/// FTRANS's circulant-constrained training. Biases and LayerNorm
/// parameters are untouched.
///
/// # Panics
///
/// Panics if `b` does not divide `d_model` and `d_ff`.
pub fn circulantize_ffn(block: &mut FfnResBlock, b: usize) {
    let cfg = block.graph_config();
    let shapes = [
        (".lin1.w", cfg.d_model, cfg.d_ff),
        (".lin2.w", cfg.d_ff, cfg.d_model),
    ];
    block.visit_params(&mut |name, w, _| {
        for (suffix, rows, cols) in shapes {
            if name.ends_with(suffix) {
                let m = Mat::from_fn(rows, cols, |r, c| w[r * cols + c]);
                let proj = project_circulant(&m, b);
                w.copy_from_slice(proj.as_slice());
            }
        }
    });
}

/// The block-circulant [`Backend`].
#[derive(Debug, Clone)]
pub struct CirculantBackend {
    cfg: CirculantConfig,
}

impl CirculantBackend {
    /// Wraps a validated configuration.
    pub fn new(cfg: CirculantConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The FTRANS-style default point.
    pub fn ftrans_default() -> Self {
        Self::new(CirculantConfig::ftrans_default())
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &CirculantConfig {
        &self.cfg
    }

    fn program<'p>(&self, prog: &'p BackendProgram) -> &'p CircProgram {
        match prog {
            BackendProgram::Circulant(p) => p,
            other => panic!(
                "circulant backend fed a foreign program ({} ops)",
                other.len()
            ),
        }
    }

    /// Complex kernel spectra of a quantized sublayer: the compile-time
    /// weight transform. `spec[i][j]` is the length-`b` spectrum of the
    /// circulant kernel of input block `i` / output block `j`, built
    /// from the *dequantized* INT8 weights (the same effective weights
    /// the reference datapath multiplies by).
    fn kernel_spectra(&self, lin: &QLinear, tw: &[Cpx]) -> Vec<Vec<Vec<Cpx>>> {
        let b = self.cfg.block;
        let wq = lin.weight_q();
        let w_f = Mat::from_fn(wq.rows(), wq.cols(), |r, c| {
            wq[(r, c)] as f32 * lin.w_scale_of(c).scale()
        });
        (0..wq.rows() / b)
            .map(|i| {
                (0..wq.cols() / b)
                    .map(|j| {
                        let c = project_block(&w_f, i * b, j * b, b);
                        let c_fx: Vec<i32> = c.iter().map(|&v| fx::to_fx(v, FRAC)).collect();
                        fft::fft_real(&c_fx, tw, FRAC)
                    })
                    .collect()
            })
            .collect()
    }

    /// One FFN sublayer on the FFT unit: dequantize codes, FFT input
    /// blocks, frequency-domain MAC, IFFT per output block (DC-bin
    /// checked), bias (+ optional ReLU), requantize with the layer's
    /// output scale.
    #[allow(clippy::too_many_arguments)]
    fn circ_layer(
        &self,
        x_codes: &Mat<i8>,
        lin: &QLinear,
        relu: bool,
        tw: &[Cpx],
        layer: u8,
        fault: Option<&CircFault>,
        report: &mut CircCheckReport,
    ) -> Mat<i8> {
        let b = self.cfg.block;
        let d_in = lin.weight_q().rows();
        let d_out = lin.weight_q().cols();
        assert_eq!(x_codes.cols(), d_in, "activation width mismatch");
        let nb_in = d_in / b;
        let nb_out = d_out / b;
        let spec = self.kernel_spectra(lin, tw);
        let in_scale = lin.in_scale();
        let out_scale = lin.out_scale();
        let bias_f: Vec<f32> = (0..d_out)
            .map(|c| lin.bias_q()[c] as f32 * in_scale.scale() * lin.w_scale_of(c).scale())
            .collect();
        let tol = dc_check_tolerance(b);

        let mut out = Mat::<i8>::zeros(x_codes.rows(), d_out);
        let mut x_spec: Vec<Vec<Cpx>> = Vec::with_capacity(nb_in);
        for r in 0..x_codes.rows() {
            // Transform: FFT each input block of this row once.
            x_spec.clear();
            for i in 0..nb_in {
                let blk: Vec<i32> = (0..b)
                    .map(|t| fx::to_fx(in_scale.dequantize(x_codes[(r, i * b + t)]), FRAC))
                    .collect();
                x_spec.push(fft::fft_real(&blk, tw, FRAC));
            }
            // Accumulate: per output block, MAC spectra then IFFT.
            // (`j` selects a column of `spec`'s middle axis, the fault
            // site, and the output columns — an index loop over the
            // block count, not an iteration over any one container.)
            #[allow(clippy::needless_range_loop)]
            for j in 0..nb_out {
                let mut acc = vec![Cpx::ZERO; b];
                // ABFT checksum register: Σ_k Y_k accumulated from the
                // same products as they are written to the spectral
                // SRAM — an adder tree beside the MAC lanes, never
                // re-read from the (corruptible) store.
                let (mut s_re, mut s_im) = (0i64, 0i64);
                for (i, xs) in x_spec.iter().enumerate() {
                    for (k, a) in acc.iter_mut().enumerate() {
                        let p = xs[k].mul(spec[i][j][k], FRAC);
                        *a = *a + p;
                        s_re += p.re as i64;
                        s_im += p.im as i64;
                    }
                }
                if let Some(f) = fault {
                    if f.layer == layer && f.row == r && f.out_block == j {
                        acc[f.bin % b].re ^= 1i32 << (f.bit % 31);
                    }
                }
                let dc = acc[0];
                fft::ifft_in_place(&mut acc, tw, FRAC);
                // Two invariants: (1) IFFT self-consistency, Σ_t y_t =
                // Y[0]; (2) the accumulation checksum, b·y₀ = Σ_k Y_k
                // (every bin contributes to y₀, so a flip in *any* bin
                // of the stored spectrum diverges from the register).
                let time_sum: i64 = acc.iter().map(|v| v.re as i64).sum();
                let y0 = acc[0];
                report.blocks_checked += 1;
                if (time_sum - dc.re as i64).abs() > tol
                    || (b as i64 * y0.re as i64 - s_re).abs() > tol * b as i64
                    || (b as i64 * y0.im as i64 - s_im).abs() > tol * b as i64
                {
                    report.violations += 1;
                }
                for (t, v) in acc.iter().enumerate() {
                    let col = j * b + t;
                    let y = fx::to_f32(v.re, FRAC) + bias_f[col];
                    let y = if relu { y.max(0.0) } else { y };
                    out[(r, col)] = out_scale.quantize(y);
                }
            }
        }
        out
    }

    /// Structure-checks a program against the configured geometry:
    /// `Transform(1)`, all layer-1 `Accumulate`s in order, same for
    /// layer 2, then `LayerNorm`.
    fn validate_program(&self, prog: &CircProgram) {
        let d_ff = self.cfg.base.model.d_ff;
        let d_model = self.cfg.base.model.d_model;
        let b = self.cfg.block;
        let mut want = Vec::new();
        want.push(CircOp::Transform { layer: 1 });
        want.extend((0..d_ff / b).map(|j| CircOp::Accumulate { layer: 1, block: j }));
        want.push(CircOp::Transform { layer: 2 });
        want.extend((0..d_model / b).map(|j| CircOp::Accumulate { layer: 2, block: j }));
        want.push(CircOp::LayerNorm);
        assert_eq!(prog.ops, want, "malformed circulant program");
    }

    /// Executes an FFN program with the DC-bin checker active and an
    /// optional injected fault, returning the output codes and the
    /// check report. This is the entry point the fault-injection
    /// campaign drives.
    pub fn run_ffn_checked(
        &self,
        prog: &BackendProgram,
        block: &QuantFfnResBlock,
        x: &Mat<i8>,
        fault: Option<CircFault>,
    ) -> (Mat<i8>, CircCheckReport) {
        let prog = self.program(prog);
        self.validate_program(prog);
        let (w1, w2) = block.sublayers();
        let b = self.cfg.block;
        let tw = fft::twiddles(b, FRAC);
        let mut report = CircCheckReport::default();
        let hidden = self.circ_layer(x, w1, true, &tw, 1, fault.as_ref(), &mut report);
        let y2 = self.circ_layer(&hidden, w2, false, &tw, 2, fault.as_ref(), &mut report);
        // Residual add in the shared x code domain, then the reference
        // integer LayerNorm — identical tail to `isa::execute_ffn`.
        let g = Mat::from_fn(x.rows(), x.cols(), |r, c| {
            y2[(r, c)] as i32 + x[(r, c)] as i32
        });
        (block.layernorm().forward(&g), report)
    }

    /// INT16-packed spectral words the unit stores for both FFN weight
    /// matrices: `2 · d_model · d_ff / b` complex words — a `b×`
    /// parameter compression over the dense `2 · d_model · d_ff`
    /// scalars.
    pub fn stored_weight_words(&self) -> usize {
        let m = &self.cfg.base.model;
        2 * m.d_model * m.d_ff / self.cfg.block
    }
}

impl Backend for CirculantBackend {
    fn caps(&self) -> BackendCaps {
        BackendCaps {
            name: "ftrans-circulant",
            array: (self.cfg.lanes, 1),
            supports_mha: false,
            supports_ffn: true,
            exact: false,
            weight_compression: self.cfg.block as f64,
        }
    }

    /// Area: `lanes` complex-MAC butterflies (DSP-mapped), ping-pong
    /// spectra SRAM, the packed kernel-spectra store (the compressed
    /// weights), and an integer LayerNorm tail sized to `lanes` rows.
    fn area(&self) -> Resources {
        let lanes = self.cfg.lanes as f64;
        let m = &self.cfg.base.model;
        // 4 real multipliers per complex MAC, one DSP each plus shim.
        let mac = Resources::new(
            4.0 * lanes * area::LUT_PER_DSP_PE,
            4.0 * lanes * area::FF_PER_DSP_PE,
            0.0,
            4.0 * lanes,
        );
        let widest = m.d_model.max(m.d_ff) as u64;
        // double-buffered activation spectra (re+im, 32 bit each)
        let spectra = MemorySpec::new(widest, 64).bram36_blocks() * 2.0;
        // kernel store: INT16-packed complex spectra for both layers
        let kernels = MemorySpec::new(self.stored_weight_words() as u64, 32).bram36_blocks();
        let sram = Resources::new(0.0, 0.0, spectra + kernels, 0.0);
        let tail = Resources::new(
            lanes * (area::LUT_PER_LN_LANE + area::MISC_LUT_PER_ROW),
            lanes * (area::FF_PER_LN_LANE + area::MISC_FF_PER_ROW),
            lanes * area::MISC_BRAM_PER_ROW,
            0.0,
        );
        mac + sram + tail
    }

    fn lower_mha(&self, _g: &Graph, _s_kv: usize) -> BackendProgram {
        panic!("circulant backend is FFN-only (caps().supports_mha == false)");
    }

    /// Lowers the shared [`graph::ffn_graph`] — the walk mirrors
    /// [`crate::exec::lower_ffn`] node for node.
    fn lower_ffn(&self, g: &Graph) -> BackendProgram {
        assert_eq!(g.kind, GraphKind::Ffn, "lower_ffn lowers the FFN graph");
        assert_eq!(
            g.cfg.d_model, self.cfg.base.model.d_model,
            "d_model mismatch"
        );
        assert_eq!(g.cfg.d_ff, self.cfg.base.model.d_ff, "d_ff mismatch");
        let b = self.cfg.block;
        let mut ops = Vec::new();
        for node in &g.nodes {
            match node.op {
                Op::Linear(WeightId::W1) | Op::LinearRelu(WeightId::W1) => {
                    ops.push(CircOp::Transform { layer: 1 });
                    ops.extend(
                        (0..g.cfg.d_ff / b).map(|j| CircOp::Accumulate { layer: 1, block: j }),
                    );
                }
                // ReLU/residual ride the requantize pipeline after each
                // IFFT; no scheduled op (same fusion as the ISA path).
                Op::Relu | Op::Add => {}
                Op::Linear(WeightId::W2) | Op::LinearAdd(WeightId::W2) => {
                    ops.push(CircOp::Transform { layer: 2 });
                    ops.extend(
                        (0..g.cfg.d_model / b).map(|j| CircOp::Accumulate { layer: 2, block: j }),
                    );
                }
                Op::LayerNorm => ops.push(CircOp::LayerNorm),
                ref other => panic!("{other:?} is not part of the FFN dataflow"),
            }
        }
        BackendProgram::Circulant(CircProgram { ops })
    }

    fn cycles(&self, prog: &BackendProgram, _s_kv: usize) -> u64 {
        let s = self.cfg.base.s as u64;
        let b = self.cfg.block as u64;
        let lanes = self.cfg.lanes as u64;
        let d_model = self.cfg.base.model.d_model as u64;
        let d_ff = self.cfg.base.model.d_ff as u64;
        let log2b = b.trailing_zeros() as u64;
        let fft_ops = b / 2 * log2b; // butterflies per length-b transform
        let in_blocks = |layer: u8| match layer {
            1 => d_model / b,
            _ => d_ff / b,
        };
        self.program(prog)
            .ops
            .iter()
            .map(|op| match *op {
                CircOp::Transform { layer } => (s * in_blocks(layer) * fft_ops).div_ceil(lanes),
                CircOp::Accumulate { layer, .. } => {
                    // spectral MACs + one IFFT + the bias/requant drain
                    (s * (in_blocks(layer) * b + fft_ops + b)).div_ceil(lanes)
                }
                CircOp::LayerNorm => {
                    let passes = (s).div_ceil(lanes);
                    passes
                        * (d_model
                            + layernorm_module::total_tail(
                                self.cfg.base.sched.layernorm,
                                d_model as usize,
                            )
                            .get())
                }
            })
            .sum()
    }

    fn run_mha(
        &self,
        _prog: &BackendProgram,
        _block: &QuantMhaResBlock,
        _xq: &Mat<i8>,
        _xkv: &Mat<i8>,
        _mask: Option<&Mat<bool>>,
    ) -> Mat<i8> {
        panic!("circulant backend is FFN-only (caps().supports_mha == false)");
    }

    fn run_ffn(&self, prog: &BackendProgram, block: &QuantFfnResBlock, x: &Mat<i8>) -> Mat<i8> {
        let (y, report) = self.run_ffn_checked(prog, block, x, None);
        assert_eq!(
            report.violations, 0,
            "DC-bin check must pass on a fault-free run"
        );
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::ffn_graph;
    use quantized::sqnr::sqnr_db;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;

    fn tiny_backend() -> CirculantBackend {
        let mut base = AccelConfig::paper_default();
        base.model = ModelConfig::tiny_for_tests();
        base.s = 8;
        CirculantBackend::new(CirculantConfig {
            base,
            block: 8,
            lanes: 4,
        })
    }

    /// A quantized FFN whose float weights are exactly block-circulant
    /// (the FTRANS training regime), plus a quantized test input.
    fn circulant_fixture() -> (QuantFfnResBlock, Mat<i8>, Mat<f32>) {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0xC1);
        let mut block = FfnResBlock::new(&cfg, &mut rng);
        circulantize_ffn(&mut block, 8);
        let calib: Vec<Mat<f32>> = (0..4)
            .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
            .collect();
        let q = QuantFfnResBlock::from_f32(&block, &calib);
        let x = calib[0].clone();
        let xq = q.quantize_input(&x);
        (q, xq, x)
    }

    #[test]
    fn projection_is_identity_on_circulant_blocks() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = tensor::init::normal(&mut rng, 16, 16, 1.0);
        let proj = project_circulant(&w, 8);
        let again = project_circulant(&proj, 8);
        for (a, b) in proj.as_slice().iter().zip(again.as_slice()) {
            assert!((a - b).abs() < 1e-6, "projection must be idempotent");
        }
    }

    #[test]
    fn lowering_walks_the_shared_ffn_graph() {
        let be = tiny_backend();
        let g = ffn_graph(&graph::GraphConfig {
            d_model: 32,
            d_ff: 64,
            h: 1,
        });
        let BackendProgram::Circulant(p) = be.lower_ffn(&g) else {
            panic!("wrong program kind")
        };
        // golden structure: T1, 8 accumulates, T2, 4 accumulates, LN
        assert_eq!(p.ops.len(), 1 + 8 + 1 + 4 + 1);
        assert_eq!(p.ops[0], CircOp::Transform { layer: 1 });
        assert_eq!(p.ops[9], CircOp::Transform { layer: 2 });
        assert_eq!(*p.ops.last().unwrap(), CircOp::LayerNorm);
        be.validate_program(&p);
    }

    #[test]
    fn tracks_reference_within_documented_sqnr_on_circulant_weights() {
        let be = tiny_backend();
        let (q, xq, _) = circulant_fixture();
        let g = ffn_graph(&q.graph_config());
        let prog = be.lower_ffn(&g);
        let got = be.run_ffn(&prog, &q, &xq);
        let (want, _) = q.forward(&xq);
        let sq = sqnr_db(&q.dequantize_output(&want), &q.dequantize_output(&got));
        assert!(
            sq >= CIRC_SQNR_FLOOR_DB,
            "SQNR {sq:.1} dB below the documented {CIRC_SQNR_FLOOR_DB} dB floor"
        );
    }

    #[test]
    fn dc_checker_is_quiet_on_clean_runs_and_counts_every_block() {
        let be = tiny_backend();
        let (q, xq, _) = circulant_fixture();
        let prog = be.lower_ffn(&ffn_graph(&q.graph_config()));
        let (_, report) = be.run_ffn_checked(&prog, &q, &xq, None);
        assert_eq!(report.violations, 0);
        // rows × (d_ff/b + d_model/b) = 8 × (8 + 4)
        assert_eq!(report.blocks_checked, 8 * 12);
    }

    #[test]
    fn dc_checker_detects_injected_spectral_flips() {
        let be = tiny_backend();
        let (q, xq, _) = circulant_fixture();
        let prog = be.lower_ffn(&ffn_graph(&q.graph_config()));
        for (layer, bin) in [(1u8, 0usize), (1, 3), (2, 0), (2, 5)] {
            let fault = CircFault {
                layer,
                row: 2,
                out_block: 1,
                bin,
                bit: 17,
            };
            let (_, report) = be.run_ffn_checked(&prog, &q, &xq, Some(fault));
            assert!(
                report.violations >= 1,
                "flip in layer {layer} bin {bin} escaped the DC check"
            );
        }
    }

    #[test]
    fn compression_ratio_matches_block_size() {
        let be = tiny_backend();
        assert_eq!(be.caps().weight_compression, 8.0);
        let dense = 2 * 32 * 64;
        assert_eq!(be.stored_weight_words() * 8, dense);
    }

    #[test]
    #[should_panic(expected = "FFN-only")]
    fn mha_lowering_rejected() {
        let be = tiny_backend();
        let g = graph::mha_graph(&graph::GraphConfig {
            d_model: 32,
            d_ff: 0,
            h: 4,
        });
        let _ = be.lower_mha(&g, 8);
    }
}
