//! KV260-style tiled systolic-array backend: a small `R × C` PE grid
//! that streams every operand tile through DDR instead of holding the
//! paper's full `s × 64` working set on chip.
//!
//! The paper's design (arXiv 2009 / SOCC'20) sizes the array to the
//! whole problem — `s` rows, 64 columns, all weights resident in BRAM —
//! which is a VU13P-class budget. Edge parts (the KV260's Zynq
//! UltraScale+ fabric, arXiv 2503.16731) can afford a much smaller grid
//! and must tile: each output block is computed from `A`/`B` tiles
//! fetched over a narrow DDR interface, double-buffered so transfers
//! overlap compute.
//!
//! The backend deliberately reuses the **same ISA lowering** as the
//! paper backend ([`crate::exec::lower_mha`] / [`crate::exec::lower_ffn`]
//! from the shared graph builders) and puts a *tile scheduler in front
//! of it*: [`tile_schedule`] expands each GEMM-shaped [`Command`] into a
//! [`TiledGemm`] describing its output-stationary tile walk and DDR
//! traffic. The cycle model charges `max(compute, memory)` per output
//! tile (double buffering hides the smaller of the two) and is therefore
//! bandwidth-aware: shrink `ddr_bytes_per_cycle` and GEMMs with low
//! arithmetic intensity go memory-bound.
//!
//! **Bit-exactness.** Tiling an INT8×INT8→INT32 GEMM only regroups the
//! integer partial sums; i32 addition is associative and commutative and
//! cannot overflow here (the accumulator headroom argument is the same
//! as the paper datapath's), so the tiled array produces exactly the
//! untiled result. Execution therefore replays the embedded command
//! stream through the reference interpreter ([`crate::isa::execute_mha`]
//! / [`crate::isa::execute_ffn`]) — a faithful bit-level model of the
//! tiled datapath, asserted bit-identical against the quantized
//! reference in `tests/backend_identity.rs`.

use graph::Graph;
use hwsim::memory::MemorySpec;
use hwsim::resources::Resources;
use quantized::{QuantFfnResBlock, QuantMhaResBlock};
use serde::Serialize;
use tensor::Mat;

use crate::area;
use crate::backend::{Backend, BackendCaps, BackendProgram};
use crate::config::AccelConfig;
use crate::isa::{self, Command};
use crate::layernorm_module;
use crate::partition::PANEL_COLS;
use crate::softmax_module;

/// Tiled-backend configuration: the model/policy base plus the grid
/// geometry and DDR interface.
#[derive(Debug, Clone, Serialize)]
pub struct TiledConfig {
    /// Model dimensions, clock and LayerNorm policy (the array geometry
    /// fields of `base` — `base.s` — give the *workload* row count, not
    /// the grid height).
    pub base: AccelConfig,
    /// PE-grid rows (`R`).
    pub rows: usize,
    /// PE-grid columns (`C`).
    pub cols: usize,
    /// Depth of the on-chip `A`/`B` tile buffers along the reduction
    /// dimension: `k` is streamed in chunks of at most `tile_k`.
    pub tile_k: usize,
    /// Sustained DDR bandwidth in bytes per array clock cycle. The
    /// KV260's 64-bit DDR4 at rough parity with a 200 MHz fabric clock
    /// sustains on the order of 8 B/cycle.
    pub ddr_bytes_per_cycle: u64,
    /// On-chip weight-cache capacity in bytes (`0` = stream everything,
    /// the original backend). The tile scheduler pins whole **weight**
    /// operands (`B` of the projection/FFN GEMMs — never the
    /// activation-derived `K`/`V` panels of `ScoreTile`/`Context`)
    /// resident in BRAM, first-fit in program order, so a pinned weight
    /// is fetched from DDR once per program instead of once per
    /// output-tile row. Residency is benefit-gated: a weight is only
    /// pinned when the cycle model says it does not lose (it can — a
    /// single-row-tile GEMM re-reads nothing, so pinning would just
    /// serialize the fill).
    pub weight_cache_bytes: u64,
}

impl TiledConfig {
    /// A KV260-class default: 16×16 PEs, 512-deep tile buffers, 8 B per
    /// cycle of DDR bandwidth, paper model/clock/policy.
    pub fn kv260_default() -> Self {
        Self {
            base: AccelConfig::paper_default(),
            rows: 16,
            cols: 16,
            tile_k: 512,
            ddr_bytes_per_cycle: 8,
            weight_cache_bytes: 0,
        }
    }

    /// Validates geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the bandwidth is zero.
    pub fn validate(&self) {
        self.base.validate();
        assert!(
            self.rows > 0 && self.cols > 0 && self.tile_k > 0,
            "tile grid dimensions must be positive"
        );
        assert!(self.ddr_bytes_per_cycle > 0, "zero DDR bandwidth");
    }
}

/// One GEMM-shaped command expanded into its tile walk: an `m × k × n`
/// product executed output-stationary on the `R × C` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TiledGemm {
    /// The ISA command this GEMM came from (kept for execution and
    /// golden tests).
    pub src: Command,
    /// Output rows.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// `⌈m / R⌉` output-tile rows.
    pub row_tiles: usize,
    /// `⌈n / C⌉` output-tile columns.
    pub col_tiles: usize,
    /// `⌈k / tile_k⌉` reduction chunks per output tile.
    pub k_tiles: usize,
    /// Whether the scheduler pinned this GEMM's `B` operand (a static
    /// weight) in the on-chip weight cache. Resident weights are fetched
    /// from DDR exactly once (`k · n` bytes) instead of once per
    /// output-tile row.
    pub weight_resident: bool,
    /// Total DDR read traffic (bytes): `A` re-read once per output-tile
    /// column (`col_tiles · m · k`) plus `B` — re-read once per
    /// output-tile row (`row_tiles · k · n`) when streamed, or fetched
    /// once (`k · n`) when [`Self::weight_resident`]. INT8 operands.
    pub ddr_read_bytes: u64,
    /// Total DDR write traffic (bytes): the requantized INT8 output,
    /// `m · n`.
    pub ddr_write_bytes: u64,
}

/// One scheduled operation on the tiled accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TiledOp {
    /// A tiled GEMM.
    Gemm(TiledGemm),
    /// Scaled masked softmax over one head's score rows (`R` lanes, so
    /// `⌈s / R⌉` serial passes).
    Softmax {
        /// Head index.
        head: usize,
    },
    /// Residual-add + LayerNorm tail.
    LayerNorm,
}

/// A tile-scheduled program: the same command stream the paper backend
/// runs, with every GEMM annotated by its tile walk and DDR traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Default)]
pub struct TiledProgram {
    /// Scheduled operations, in issue order.
    pub ops: Vec<TiledOp>,
}

impl TiledProgram {
    /// Total DDR traffic (read + write bytes) across the program.
    pub fn ddr_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TiledOp::Gemm(g) => g.ddr_read_bytes + g.ddr_write_bytes,
                _ => 0,
            })
            .sum()
    }

    /// Reconstructs the ISA command stream the schedule was derived
    /// from (the tile walk annotates commands; it never reorders them).
    pub fn commands(&self) -> Vec<Command> {
        self.ops
            .iter()
            .map(|op| match *op {
                TiledOp::Gemm(g) => g.src,
                TiledOp::Softmax { head } => Command::Softmax { head },
                TiledOp::LayerNorm => Command::LayerNorm,
            })
            .collect()
    }
}

/// GEMM shape of a command for a workload of `s` query rows and `s_kv`
/// key/value rows under model dims `(d_model, d_ff, d_k)`.
fn gemm_shape(
    cmd: &Command,
    s: usize,
    s_kv: usize,
    dims: (usize, usize, usize),
) -> (usize, usize, usize) {
    let (d_model, d_ff, d_k) = dims;
    let panel_width = |total: usize, panel: usize| (total - panel * PANEL_COLS).min(PANEL_COLS);
    match *cmd {
        Command::ProjectQ { .. } => (s, d_model, d_k),
        Command::ProjectK { .. } | Command::ProjectV { .. } => (s_kv, d_model, d_k),
        Command::ScoreTile { .. } => (s, d_k, PANEL_COLS),
        Command::Context { .. } => (s, s_kv, d_k),
        // One OutputPanel per head: W_O splits into `h` uniform
        // `d_model × d_k` slices (= 64 columns at the paper point, but
        // *not* PANEL_COLS-wide for models off the 64h pattern).
        Command::OutputPanel { .. } => (s, d_model, d_k),
        Command::FfnHidden { panel } => (s, d_model, panel_width(d_ff, panel)),
        Command::FfnOutput { panel } => (s, d_ff, panel_width(d_model, panel)),
        Command::Softmax { .. } | Command::LayerNorm => unreachable!("not a GEMM"),
    }
}

/// Whether a command's `B` operand is a static model weight (eligible
/// for the on-chip weight cache). `ScoreTile` and `Context` multiply
/// against activation-derived `K`/`V` panels, which change every
/// invocation and are never cached.
fn is_weight_gemm(cmd: &Command) -> bool {
    matches!(
        *cmd,
        Command::ProjectQ { .. }
            | Command::ProjectK { .. }
            | Command::ProjectV { .. }
            | Command::OutputPanel { .. }
            | Command::FfnHidden { .. }
            | Command::FfnOutput { .. }
    )
}

/// The tile scheduler: expands an ISA program (from the shared graph
/// lowering) into a [`TiledProgram`] for a workload of `s` query rows /
/// `s_kv` key-value rows.
///
/// When [`TiledConfig::weight_cache_bytes`] is non-zero, weight operands
/// are pinned resident first-fit in program order, each only if the
/// cycle model agrees residency does not lose (see the config field
/// docs).
pub fn tile_schedule(
    cfg: &TiledConfig,
    program: &[Command],
    s: usize,
    s_kv: usize,
) -> TiledProgram {
    cfg.validate();
    let dims = (
        cfg.base.model.d_model,
        cfg.base.model.d_ff,
        cfg.base.model.d_k(),
    );
    let mut cache_left = cfg.weight_cache_bytes;
    let ops = program
        .iter()
        .map(|cmd| match *cmd {
            Command::Softmax { head } => TiledOp::Softmax { head },
            Command::LayerNorm => TiledOp::LayerNorm,
            _ => {
                let (m, k, n) = gemm_shape(cmd, s, s_kv, dims);
                let row_tiles = m.div_ceil(cfg.rows);
                let col_tiles = n.div_ceil(cfg.cols);
                let k_tiles = k.div_ceil(cfg.tile_k);
                let mut g = TiledGemm {
                    src: *cmd,
                    m,
                    k,
                    n,
                    row_tiles,
                    col_tiles,
                    k_tiles,
                    weight_resident: false,
                    ddr_read_bytes: (col_tiles * m * k + row_tiles * k * n) as u64,
                    ddr_write_bytes: (m * n) as u64,
                };
                let weight_bytes = (k * n) as u64;
                if is_weight_gemm(cmd) && weight_bytes <= cache_left {
                    let resident = TiledGemm {
                        weight_resident: true,
                        ddr_read_bytes: (col_tiles * m * k) as u64 + weight_bytes,
                        ..g
                    };
                    if gemm_cycles_for(cfg, &resident) <= gemm_cycles_for(cfg, &g) {
                        cache_left -= weight_bytes;
                        g = resident;
                    }
                }
                TiledOp::Gemm(g)
            }
        })
        .collect();
    TiledProgram { ops }
}

/// Cycle cost of one tiled GEMM (shared by the scheduler's residency
/// benefit gate and [`TiledBackend::gemm_cycles`]): per output tile, a
/// compute pass of `k + k_tiles·(rm + cn − 2) + cn` cycles overlapped
/// against the tile's DDR traffic; double buffering hides the smaller
/// of the two, so each tile costs `max(compute, mem)`. The first tile's
/// fetch cannot be hidden and is charged as a prologue. A resident
/// weight contributes no per-tile `B` traffic; its one-time DDR fill is
/// charged as an additional (unhidden) prologue.
fn gemm_cycles_for(cfg: &TiledConfig, g: &TiledGemm) -> u64 {
    let bw = cfg.ddr_bytes_per_cycle;
    let mut total = 0u64;
    let mut first_mem = None;
    for i in 0..g.row_tiles {
        let rm = (g.m - i * cfg.rows).min(cfg.rows);
        for j in 0..g.col_tiles {
            let cn = (g.n - j * cfg.cols).min(cfg.cols);
            let compute = (g.k + g.k_tiles * (rm + cn - 2) + cn) as u64;
            let b_bytes = if g.weight_resident { 0 } else { g.k * cn };
            let bytes = (rm * g.k + b_bytes + rm * cn) as u64;
            let mem = bytes.div_ceil(bw);
            if first_mem.is_none() {
                first_mem = Some(mem);
            }
            total += compute.max(mem);
        }
    }
    let fill = if g.weight_resident {
        ((g.k * g.n) as u64).div_ceil(bw)
    } else {
        0
    };
    total + fill + first_mem.unwrap_or(0)
}

/// The tiled-SA [`Backend`].
#[derive(Debug, Clone)]
pub struct TiledBackend {
    cfg: TiledConfig,
}

impl TiledBackend {
    /// Wraps a validated configuration.
    pub fn new(cfg: TiledConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The KV260-class default point.
    pub fn kv260_default() -> Self {
        Self::new(TiledConfig::kv260_default())
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &TiledConfig {
        &self.cfg
    }

    fn program<'p>(&self, prog: &'p BackendProgram) -> &'p TiledProgram {
        match prog {
            BackendProgram::Tiled(p) => p,
            other => panic!("tiled backend fed a foreign program ({} ops)", other.len()),
        }
    }

    /// Cycle cost of one tiled GEMM: per output tile, a compute pass of
    /// `k + k_tiles·(rm + cn − 2) + cn` cycles (stream the full
    /// reduction in `tile_k` chunks, pay the pipeline fill/drain per
    /// chunk, one final accumulator drain) overlapped against the
    /// tile's DDR traffic; double buffering hides the smaller of the
    /// two, so each tile costs `max(compute, mem)`. The first tile's
    /// fetch cannot be hidden and is charged as a prologue, and a
    /// resident weight's one-time DDR fill is charged the same way.
    pub fn gemm_cycles(&self, g: &TiledGemm) -> u64 {
        gemm_cycles_for(&self.cfg, g)
    }

    fn op_cycles(&self, op: &TiledOp, s: usize, s_kv: usize) -> u64 {
        match op {
            TiledOp::Gemm(g) => self.gemm_cycles(g),
            TiledOp::Softmax { .. } => {
                // R lanes serve R score rows at a time.
                let passes = s.div_ceil(self.cfg.rows) as u64;
                passes * softmax_module::latency_after_last_input(s_kv).get()
            }
            TiledOp::LayerNorm => {
                let d = self.cfg.base.model.d_model;
                let passes = s.div_ceil(self.cfg.rows) as u64;
                passes
                    * (d as u64
                        + layernorm_module::total_tail(self.cfg.base.sched.layernorm, d).get())
            }
        }
    }
}

impl Backend for TiledBackend {
    fn caps(&self) -> BackendCaps {
        BackendCaps {
            name: "tiled-sa",
            array: (self.cfg.rows, self.cfg.cols),
            supports_mha: true,
            supports_ffn: true,
            exact: true,
            weight_compression: 1.0,
        }
    }

    /// Area: `R × C` LUT-fabric PEs, `R` softmax + LayerNorm lanes,
    /// double-buffered `A`/`B`/`C` tile SRAM, per-row control — and by
    /// default **no weight memory** (weights stream from DDR; that is
    /// the point of the design). A non-zero
    /// [`TiledConfig::weight_cache_bytes`] adds a single-buffered BRAM
    /// block of that capacity (no double buffering: a resident weight is
    /// filled once, then only read).
    fn area(&self) -> Resources {
        let pes = (self.cfg.rows * self.cfg.cols) as f64;
        let rows = self.cfg.rows as f64;
        let pe = Resources::new(area::LUT_PER_PE * pes, area::FF_PER_PE * pes, 0.0, 0.0);
        let lanes = Resources::new(
            (area::LUT_PER_SOFTMAX_LANE + area::LUT_PER_LN_LANE) * rows,
            (area::FF_PER_SOFTMAX_LANE + area::FF_PER_LN_LANE) * rows,
            0.0,
            0.0,
        );
        let a_buf = MemorySpec::new((self.cfg.rows * self.cfg.tile_k) as u64, 8).bram36_blocks();
        let b_buf = MemorySpec::new((self.cfg.tile_k * self.cfg.cols) as u64, 8).bram36_blocks();
        let c_buf = MemorySpec::new((self.cfg.rows * self.cfg.cols) as u64, 32).bram36_blocks();
        // double-buffered so DDR transfers overlap compute
        let wcache = if self.cfg.weight_cache_bytes > 0 {
            MemorySpec::new(self.cfg.weight_cache_bytes, 8).bram36_blocks()
        } else {
            0.0
        };
        let tile_sram = Resources::new(0.0, 0.0, 2.0 * (a_buf + b_buf + c_buf) + wcache, 0.0);
        let misc = Resources::new(
            area::MISC_LUT_PER_ROW * rows,
            area::MISC_FF_PER_ROW * rows,
            area::MISC_BRAM_PER_ROW * rows,
            0.0,
        );
        pe + lanes + tile_sram + misc
    }

    fn lower_mha(&self, g: &Graph, s_kv: usize) -> BackendProgram {
        let isa_prog = crate::exec::lower_mha(g, s_kv);
        BackendProgram::Tiled(tile_schedule(&self.cfg, &isa_prog, self.cfg.base.s, s_kv))
    }

    fn lower_ffn(&self, g: &Graph) -> BackendProgram {
        let isa_prog = crate::exec::lower_ffn(g);
        BackendProgram::Tiled(tile_schedule(
            &self.cfg,
            &isa_prog,
            self.cfg.base.s,
            self.cfg.base.s,
        ))
    }

    fn cycles(&self, prog: &BackendProgram, s_kv: usize) -> u64 {
        let s = self.cfg.base.s;
        self.program(prog)
            .ops
            .iter()
            .map(|op| self.op_cycles(op, s, s_kv))
            .sum()
    }

    fn run_mha(
        &self,
        prog: &BackendProgram,
        block: &QuantMhaResBlock,
        xq: &Mat<i8>,
        xkv: &Mat<i8>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<i8> {
        isa::execute_mha(&self.program(prog).commands(), block, xq, xkv, mask)
    }

    fn run_ffn(&self, prog: &BackendProgram, block: &QuantFfnResBlock, x: &Mat<i8>) -> Mat<i8> {
        isa::execute_ffn(&self.program(prog).commands(), block, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{ffn_graph, mha_graph, GraphConfig};

    fn paper_graph_cfg() -> GraphConfig {
        GraphConfig {
            d_model: 512,
            d_ff: 2048,
            h: 8,
        }
    }

    #[test]
    fn schedule_preserves_the_command_stream() {
        let be = TiledBackend::kv260_default();
        let prog = be.lower_mha(&mha_graph(&paper_graph_cfg()), 64);
        let tiled = match &prog {
            BackendProgram::Tiled(p) => p,
            _ => unreachable!(),
        };
        assert_eq!(tiled.commands(), isa::mha_program(8, 64));
        let ffn = be.lower_ffn(&ffn_graph(&paper_graph_cfg()));
        let tiled = match &ffn {
            BackendProgram::Tiled(p) => p,
            _ => unreachable!(),
        };
        assert_eq!(tiled.commands(), isa::ffn_program(512, 2048));
    }

    #[test]
    fn tile_walk_counts_are_exact() {
        // ProjectQ at the paper point on a 16×16 grid: 64×512×64.
        let be = TiledBackend::kv260_default();
        let prog = be.lower_mha(&mha_graph(&paper_graph_cfg()), 64);
        let BackendProgram::Tiled(p) = &prog else {
            unreachable!()
        };
        let TiledOp::Gemm(g) = p.ops[0] else {
            panic!("first op should be ProjectQ's GEMM")
        };
        assert_eq!((g.m, g.k, g.n), (64, 512, 64));
        assert_eq!((g.row_tiles, g.col_tiles, g.k_tiles), (4, 4, 1));
        // A re-read per output-tile column, B per output-tile row.
        assert_eq!(g.ddr_read_bytes, (4 * 64 * 512 + 4 * 512 * 64) as u64);
        assert_eq!(g.ddr_write_bytes, 64 * 64);
    }

    #[test]
    fn cycle_model_is_bandwidth_aware() {
        // Starving the DDR interface must slow the schedule down; a
        // huge interface must leave it compute-bound and insensitive.
        let mk = |bw: u64| {
            let cfg = TiledConfig {
                ddr_bytes_per_cycle: bw,
                ..TiledConfig::kv260_default()
            };
            let be = TiledBackend::new(cfg);
            let prog = be.lower_ffn(&ffn_graph(&paper_graph_cfg()));
            be.cycles(&prog, 64)
        };
        let starved = mk(1);
        let nominal = mk(8);
        let wide = mk(1 << 20);
        let wider = mk(1 << 21);
        assert!(starved > nominal, "{starved} vs {nominal}");
        assert!(nominal > wide);
        assert_eq!(wide, wider, "compute-bound regime");
    }

    #[test]
    fn smaller_grid_is_slower_but_smaller() {
        let mk = |rc: usize| {
            let cfg = TiledConfig {
                rows: rc,
                cols: rc,
                ..TiledConfig::kv260_default()
            };
            let be = TiledBackend::new(cfg);
            let prog = be.lower_mha(&mha_graph(&paper_graph_cfg()), 64);
            (be.cycles(&prog, 64), be.area().lut)
        };
        let (c8, a8) = mk(8);
        let (c32, a32) = mk(32);
        assert!(c8 > c32, "fewer PEs must cost cycles: {c8} vs {c32}");
        assert!(a8 < a32, "fewer PEs must save LUTs");
    }

    #[test]
    fn weight_cache_cuts_ddr_rereads_monotonically() {
        // DDR traffic and cycles must never grow as the cache grows,
        // and a cache big enough for every weight must strictly beat
        // the streaming baseline on both.
        let mk = |wc: u64| {
            let cfg = TiledConfig {
                weight_cache_bytes: wc,
                ..TiledConfig::kv260_default()
            };
            let be = TiledBackend::new(cfg);
            let mha = be.lower_mha(&mha_graph(&paper_graph_cfg()), 64);
            let ffn = be.lower_ffn(&ffn_graph(&paper_graph_cfg()));
            let (BackendProgram::Tiled(pm), BackendProgram::Tiled(pf)) = (&mha, &ffn) else {
                unreachable!()
            };
            (
                pm.ddr_bytes() + pf.ddr_bytes(),
                be.cycles(&mha, 64) + be.cycles(&ffn, 64),
            )
        };
        let sweep: Vec<(u64, u64)> = [0u64, 64 << 10, 256 << 10, 1 << 20, 4 << 20]
            .iter()
            .map(|&w| mk(w))
            .collect();
        for w in sweep.windows(2) {
            assert!(w[1].0 <= w[0].0, "DDR bytes grew with cache: {sweep:?}");
            assert!(w[1].1 <= w[0].1, "cycles grew with cache: {sweep:?}");
        }
        let (cold_ddr, cold_cyc) = sweep[0];
        let (hot_ddr, hot_cyc) = *sweep.last().unwrap();
        assert!(hot_ddr < cold_ddr, "{hot_ddr} vs {cold_ddr}");
        assert!(hot_cyc < cold_cyc, "{hot_cyc} vs {cold_cyc}");
    }

    #[test]
    fn weight_cache_pins_weights_but_never_activation_panels() {
        let cfg = TiledConfig {
            weight_cache_bytes: u64::MAX,
            ..TiledConfig::kv260_default()
        };
        let be = TiledBackend::new(cfg);
        let prog = be.lower_mha(&mha_graph(&paper_graph_cfg()), 64);
        let BackendProgram::Tiled(p) = &prog else {
            unreachable!()
        };
        for op in &p.ops {
            if let TiledOp::Gemm(g) = op {
                match g.src {
                    Command::ScoreTile { .. } | Command::Context { .. } => assert!(
                        !g.weight_resident,
                        "K/V panels are activations, never cached: {:?}",
                        g.src
                    ),
                    _ => assert!(g.weight_resident, "weight not pinned: {:?}", g.src),
                }
            }
        }
        // Resident ProjectQ reads its weight once instead of per
        // output-tile row (cf. tile_walk_counts_are_exact's 4×).
        let TiledOp::Gemm(g) = p.ops[0] else {
            panic!("first op should be ProjectQ's GEMM")
        };
        assert_eq!(g.ddr_read_bytes, (4 * 64 * 512 + 512 * 64) as u64);
    }

    #[test]
    fn weight_cache_costs_bram() {
        let base = TiledBackend::kv260_default().area().bram;
        let cached = TiledBackend::new(TiledConfig {
            weight_cache_bytes: 256 << 10,
            ..TiledConfig::kv260_default()
        })
        .area()
        .bram;
        assert!(cached > base, "{cached} vs {base}");
    }

    #[test]
    fn tiled_area_is_far_below_the_paper_point() {
        let be = TiledBackend::kv260_default();
        let paper = crate::area::AreaModel::new(AccelConfig::paper_default()).top();
        let tiled = be.area();
        assert!(
            tiled.lut < paper.lut / 4.0,
            "{} vs {}",
            tiled.lut,
            paper.lut
        );
        assert!(tiled.bram < paper.bram, "no on-chip weight store");
    }
}
