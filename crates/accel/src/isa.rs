//! The accelerator's command stream: Algorithm 1 as an explicit
//! instruction sequence, with two interpreters.
//!
//! A real implementation of the paper's design has a small control unit
//! stepping through a static schedule; this module makes that program
//! first-class:
//!
//! * [`mha_program`] / [`ffn_program`] — the instruction list for one
//!   ResBlock;
//! * [`execute_mha`] / [`execute_ffn`] — a **bit-exact interpreter**
//!   driving the quantized datapath command by command (outputs equal
//!   [`quantized::QuantMhaResBlock::forward`] exactly);
//! * [`schedule_program`] — a **timing interpreter** mapping the same
//!   commands onto the unit timeline (cycle counts equal
//!   [`crate::scheduler`]'s, asserted by tests).
//!
//! One program, two semantics — the strongest form of the workspace's
//! "numerics and timing never diverge" rule.

use hwsim::cycles::Cycle;
use hwsim::timeline::{EventId, Timeline};
use quantized::softmax::scaled_masked_softmax;
use quantized::{QLinear, QuantFfnResBlock, QuantMhaResBlock};
use serde::Serialize;
use tensor::{gemm, Mat};

use crate::config::AccelConfig;
use crate::layernorm_module;
use crate::partition::{qk_plan, PANEL_COLS};
use crate::softmax_module;

/// One command of the static schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Command {
    /// `Temp1 = Q · W_Q[head] + bias` (Algorithm 1 line 3).
    ProjectQ {
        /// Head index.
        head: usize,
    },
    /// `Temp2 = K · W_K[head] + bias` (line 4).
    ProjectK {
        /// Head index.
        head: usize,
    },
    /// One output tile of `Temp1 × Temp2ᵀ` (line 5 / Section III).
    ScoreTile {
        /// Head index.
        head: usize,
        /// Output-column tile index.
        tile: usize,
    },
    /// The softmax module over this head's score matrix (line 6, the
    /// overlapped nonlinearity).
    Softmax {
        /// Head index.
        head: usize,
    },
    /// `Temp2 = V · W_V[head] + bias` (line 6).
    ProjectV {
        /// Head index.
        head: usize,
    },
    /// `P[head] = softmax_output × Temp2` (line 7).
    Context {
        /// Head index.
        head: usize,
    },
    /// `G[panel] = P · W_G[panel] + bias + residual` (line 10).
    OutputPanel {
        /// Output panel index.
        panel: usize,
    },
    /// `P[panel] = ReLU(X · W_1[panel] + b)` (line 16).
    FfnHidden {
        /// Hidden panel index.
        panel: usize,
    },
    /// `G[panel] = P · W_2[panel] + b + X[panel]` (line 19).
    FfnOutput {
        /// Output panel index.
        panel: usize,
    },
    /// The LayerNorm module (lines 12/21).
    LayerNorm,
}

/// The Algorithm-1 command stream for the MHA ResBlock at key/value
/// length `s_kv` — lowered from the [`graph::mha_graph`] dataflow by
/// [`crate::exec::lower_mha`], so the schedule and every software
/// backend share one operator-graph description. The lowering only
/// reads the graph's *shape* (`h` and the node order), so `d_model` is
/// pinned to `h` panels of 64.
pub fn mha_program(h: usize, s_kv: usize) -> Vec<Command> {
    let g = graph::mha_graph(&graph::GraphConfig {
        d_model: h * PANEL_COLS,
        d_ff: 0,
        h,
    });
    crate::exec::lower_mha(&g, s_kv)
}

/// The Algorithm-1 command stream for the FFN ResBlock — lowered from
/// the [`graph::ffn_graph`] dataflow by [`crate::exec::lower_ffn`].
pub fn ffn_program(d_model: usize, d_ff: usize) -> Vec<Command> {
    let g = graph::ffn_graph(&graph::GraphConfig {
        d_model,
        d_ff,
        h: 1,
    });
    crate::exec::lower_ffn(&g)
}

/// A structural defect found in a command stream — the control unit's
/// detection vocabulary for faults injected into the ISA program store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramFault {
    /// A command's head/tile/panel index exceeds the block's geometry.
    IndexOutOfRange {
        /// Offending command slot.
        slot: usize,
    },
    /// A command ran before its data dependencies (e.g. `ScoreTile`
    /// before both projections), or after the terminating `LayerNorm`,
    /// or belongs to the other ResBlock's program.
    OrderViolation {
        /// Offending command slot.
        slot: usize,
    },
    /// The program does not visit every required site exactly once
    /// (a duplicated command always shadows a missing one).
    CoverageViolation {
        /// Which command family is mis-covered.
        what: &'static str,
    },
    /// The program does not end with a `LayerNorm`.
    MissingLayerNorm,
}

impl std::fmt::Display for ProgramFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramFault::IndexOutOfRange { slot } => {
                write!(f, "command {slot}: index out of range")
            }
            ProgramFault::OrderViolation { slot } => {
                write!(f, "command {slot}: dependency order violated")
            }
            ProgramFault::CoverageViolation { what } => {
                write!(f, "{what} commands do not cover every site exactly once")
            }
            ProgramFault::MissingLayerNorm => write!(f, "program does not end with LayerNorm"),
        }
    }
}

impl std::error::Error for ProgramFault {}

/// Structurally validates an MHA command stream against the block
/// geometry `(h, s_kv)`: every index in range, every dependency
/// satisfied in order, every projection/score-tile/softmax/context/
/// output-panel site covered exactly once, `LayerNorm` terminal.
///
/// The Algorithm-1 schedule is a *static* program, so the checker can
/// demand exact coverage — which is what makes single bit flips in the
/// command store detectable: flipping an index bit either leaves the
/// valid range (range check), runs a command before its operands exist
/// (order check), or duplicates one site while starving another
/// (coverage check).
pub fn validate_mha_program(
    program: &[Command],
    h: usize,
    s_kv: usize,
) -> Result<(), ProgramFault> {
    let tiles = qk_plan(s_kv).tiles;
    let mut pq = vec![0usize; h];
    let mut pk = vec![0usize; h];
    let mut pv = vec![0usize; h];
    let mut sm = vec![0usize; h];
    let mut ctx = vec![0usize; h];
    let mut score = vec![vec![0usize; tiles]; h];
    let mut out = vec![0usize; h];
    let mut ln = 0usize;
    for (slot, cmd) in program.iter().enumerate() {
        if ln > 0 {
            return Err(ProgramFault::OrderViolation { slot });
        }
        match *cmd {
            Command::ProjectQ { head } if head < h => pq[head] += 1,
            Command::ProjectK { head } if head < h => pk[head] += 1,
            Command::ProjectV { head } if head < h => pv[head] += 1,
            Command::ScoreTile { head, tile } if head < h && tile < tiles => {
                if pq[head] == 0 || pk[head] == 0 {
                    return Err(ProgramFault::OrderViolation { slot });
                }
                score[head][tile] += 1;
            }
            Command::Softmax { head } if head < h => {
                if score[head].contains(&0) {
                    return Err(ProgramFault::OrderViolation { slot });
                }
                sm[head] += 1;
            }
            Command::Context { head } if head < h => {
                if sm[head] == 0 || pv[head] == 0 {
                    return Err(ProgramFault::OrderViolation { slot });
                }
                ctx[head] += 1;
            }
            Command::OutputPanel { panel } if panel < h => {
                if ctx.contains(&0) {
                    return Err(ProgramFault::OrderViolation { slot });
                }
                out[panel] += 1;
            }
            Command::LayerNorm => ln += 1,
            Command::ProjectQ { .. }
            | Command::ProjectK { .. }
            | Command::ProjectV { .. }
            | Command::ScoreTile { .. }
            | Command::Softmax { .. }
            | Command::Context { .. }
            | Command::OutputPanel { .. } => {
                return Err(ProgramFault::IndexOutOfRange { slot });
            }
            Command::FfnHidden { .. } | Command::FfnOutput { .. } => {
                return Err(ProgramFault::OrderViolation { slot });
            }
        }
    }
    if ln == 0 {
        return Err(ProgramFault::MissingLayerNorm);
    }
    for head in 0..h {
        if pq[head] != 1 || pk[head] != 1 || pv[head] != 1 {
            return Err(ProgramFault::CoverageViolation { what: "projection" });
        }
        if score[head].iter().any(|&n| n != 1) {
            return Err(ProgramFault::CoverageViolation { what: "score-tile" });
        }
        if sm[head] != 1 {
            return Err(ProgramFault::CoverageViolation { what: "softmax" });
        }
        if ctx[head] != 1 {
            return Err(ProgramFault::CoverageViolation { what: "context" });
        }
        if out[head] != 1 {
            return Err(ProgramFault::CoverageViolation {
                what: "output-panel",
            });
        }
    }
    Ok(())
}

/// Structurally validates an FFN command stream against `(d_model,
/// d_ff)`: every hidden panel written exactly once before any output
/// panel reads the hidden matrix, every output panel written exactly
/// once, `LayerNorm` terminal.
pub fn validate_ffn_program(
    program: &[Command],
    d_model: usize,
    d_ff: usize,
) -> Result<(), ProgramFault> {
    let hidden_panels = d_ff.div_ceil(PANEL_COLS);
    let out_panels = d_model.div_ceil(PANEL_COLS);
    let mut hidden = vec![0usize; hidden_panels];
    let mut out = vec![0usize; out_panels];
    let mut ln = 0usize;
    for (slot, cmd) in program.iter().enumerate() {
        if ln > 0 {
            return Err(ProgramFault::OrderViolation { slot });
        }
        match *cmd {
            Command::FfnHidden { panel } if panel < hidden_panels => hidden[panel] += 1,
            Command::FfnOutput { panel } if panel < out_panels => {
                if hidden.contains(&0) {
                    return Err(ProgramFault::OrderViolation { slot });
                }
                out[panel] += 1;
            }
            Command::LayerNorm => ln += 1,
            Command::FfnHidden { .. } | Command::FfnOutput { .. } => {
                return Err(ProgramFault::IndexOutOfRange { slot });
            }
            _ => return Err(ProgramFault::OrderViolation { slot }),
        }
    }
    if ln == 0 {
        return Err(ProgramFault::MissingLayerNorm);
    }
    if hidden.iter().any(|&n| n != 1) {
        return Err(ProgramFault::CoverageViolation { what: "ffn-hidden" });
    }
    if out.iter().any(|&n| n != 1) {
        return Err(ProgramFault::CoverageViolation { what: "ffn-output" });
    }
    Ok(())
}

/// A slice of a quantized linear layer restricted to columns
/// `[c0, c0 + width)`, applied bit-exactly.
fn linear_cols(lin: &QLinear, x: &Mat<i8>, c0: usize, width: usize) -> Mat<i8> {
    let w = lin
        .weight_q()
        .submatrix(0, c0, lin.weight_q().rows(), width)
        .expect("column slice");
    let acc = gemm::matmul_i8(x, &w).expect("widths");
    Mat::from_fn(acc.rows(), acc.cols(), |r, c| {
        lin.requantize_col(c0 + c, acc[(r, c)] + lin.bias_q()[c0 + c])
    })
}

/// Bit-exact execution of [`mha_program`] against a quantized block.
///
/// # Panics
///
/// Panics on malformed programs (commands out of Algorithm-1 order).
pub fn execute_mha(
    program: &[Command],
    block: &QuantMhaResBlock,
    xq: &Mat<i8>,
    xkv: &Mat<i8>,
    mask: Option<&Mat<bool>>,
) -> Mat<i8> {
    let d_k = block.d_k();
    let h = block.heads();
    let (wq, wk, wv, wo) = block.projections();
    let mut q: Vec<Option<Mat<i8>>> = vec![None; h];
    let mut k: Vec<Option<Mat<i8>>> = vec![None; h];
    let mut v: Vec<Option<Mat<i8>>> = vec![None; h];
    let mut scores: Vec<Option<Mat<i32>>> = vec![None; h];
    let mut probs: Vec<Option<Mat<i8>>> = vec![None; h];
    let mut p_panels: Vec<Option<Mat<i8>>> = vec![None; h];
    let mut g: Mat<i32> = Mat::zeros(xq.rows(), wq.weight_q().cols());
    let mut ln_out: Option<Mat<i8>> = None;
    let score_tiles = qk_plan(xkv.rows()).tiles;

    for cmd in program {
        match *cmd {
            Command::ProjectQ { head } => {
                q[head] = Some(linear_cols(wq, xq, head * d_k, d_k));
            }
            Command::ProjectK { head } => {
                k[head] = Some(linear_cols(wk, xkv, head * d_k, d_k));
            }
            Command::ProjectV { head } => {
                v[head] = Some(linear_cols(wv, xkv, head * d_k, d_k));
            }
            Command::ScoreTile { head, tile } => {
                // tiles are produced in order; compute the whole score
                // matrix on the first tile (the engine-level tiling is
                // exercised in crate::engine; here we keep the
                // command-stream semantics minimal).
                if tile == 0 {
                    let qi = q[head].as_ref().expect("ProjectQ before ScoreTile");
                    let ki = k[head].as_ref().expect("ProjectK before ScoreTile");
                    scores[head] = Some(crate::partition::qk_matmul_i8(qi, ki).expect("shapes"));
                } else {
                    assert!(tile < score_tiles, "tile out of plan");
                }
            }
            Command::Softmax { head } => {
                let d = scores[head].as_ref().expect("ScoreTile before Softmax");
                probs[head] = Some(scaled_masked_softmax(
                    d,
                    block.d_scale(),
                    d_k,
                    mask,
                    block.softmax_mode(),
                ));
            }
            Command::Context { head } => {
                let pr = probs[head].as_ref().expect("Softmax before Context");
                let vi = v[head].as_ref().expect("ProjectV before Context");
                let acc = gemm::matmul_i8(pr, vi).expect("shapes");
                p_panels[head] = Some(acc.map(|&a| block.requantize_p(a)));
            }
            Command::OutputPanel { panel } => {
                let p: Vec<Mat<i8>> = p_panels
                    .iter()
                    .map(|m| m.clone().expect("all Contexts before OutputPanel"))
                    .collect();
                let p = Mat::hconcat(&p).expect("heads share rows");
                let c0 = panel * d_k;
                let g_cols = linear_cols(wo, &p, c0, d_k);
                for r in 0..g.rows() {
                    for c in 0..d_k {
                        g[(r, c0 + c)] = g_cols[(r, c)] as i32 + xq[(r, c0 + c)] as i32;
                    }
                }
            }
            Command::LayerNorm => {
                ln_out = Some(block.layernorm().forward(&g));
            }
            other => panic!("command {other:?} is not part of an MHA program"),
        }
    }
    ln_out.expect("program must end with LayerNorm")
}

/// Bit-exact execution of [`ffn_program`] against a quantized block.
///
/// # Panics
///
/// Panics on malformed programs.
pub fn execute_ffn(program: &[Command], block: &QuantFfnResBlock, x: &Mat<i8>) -> Mat<i8> {
    let (w1, w2) = block.sublayers();
    let d_ff = w1.weight_q().cols();
    let d_model = w2.weight_q().cols();
    let mut hidden = Mat::<i8>::zeros(x.rows(), d_ff);
    let mut g = Mat::<i32>::zeros(x.rows(), d_model);
    let mut ln_out: Option<Mat<i8>> = None;
    for cmd in program {
        match *cmd {
            Command::FfnHidden { panel } => {
                let c0 = panel * PANEL_COLS;
                let width = PANEL_COLS.min(d_ff - c0);
                let cols = linear_cols(w1, x, c0, width);
                for r in 0..hidden.rows() {
                    for c in 0..width {
                        hidden[(r, c0 + c)] = cols[(r, c)].max(0); // fused ReLU
                    }
                }
            }
            Command::FfnOutput { panel } => {
                let c0 = panel * PANEL_COLS;
                let width = PANEL_COLS.min(d_model - c0);
                let cols = linear_cols(w2, &hidden, c0, width);
                for r in 0..g.rows() {
                    for c in 0..width {
                        g[(r, c0 + c)] = cols[(r, c)] as i32 + x[(r, c0 + c)] as i32;
                    }
                }
            }
            Command::LayerNorm => {
                ln_out = Some(block.layernorm().forward(&g));
            }
            other => panic!("command {other:?} is not part of an FFN program"),
        }
    }
    ln_out.expect("program must end with LayerNorm")
}

/// Timing interpretation of a program: maps every command onto the unit
/// timeline under the configuration's scheduling policy. For the
/// Algorithm-1 programs this reproduces [`crate::scheduler`]'s cycle
/// counts exactly (asserted by tests).
pub fn schedule_program(cfg: &AccelConfig, program: &[Command], s_kv: usize) -> Cycle {
    let d_model = cfg.model.d_model;
    let d_ff = cfg.model.d_ff;
    let d_k = cfg.model.d_k();
    let pol = cfg.sched;
    let mut tl = Timeline::new();
    let sa = tl.add_unit("systolic_array");
    let drain_u = tl.add_unit("output_drain");
    let sm_u = tl.add_unit("softmax");
    let ln_u = tl.add_unit("layernorm");

    let drain_cycles = Cycle(PANEL_COLS as u64);
    let gemm = |tl: &mut Timeline, k: usize, deps: &[EventId]| -> EventId {
        if pol.overlap_drain {
            let stream = tl.schedule(sa, "stream", Cycle(k as u64), deps);
            tl.schedule(drain_u, "drain", drain_cycles, &[stream])
        } else {
            tl.schedule(sa, "gemm", Cycle(k as u64) + drain_cycles, deps)
        }
    };

    let h = cfg.model.h;
    let mut proj_q: Vec<Option<EventId>> = vec![None; h];
    let mut proj_k: Vec<Option<EventId>> = vec![None; h];
    let mut last_score: Vec<Option<EventId>> = vec![None; h];
    let mut softmax_ev: Vec<Option<EventId>> = vec![None; h];
    let mut proj_v: Vec<Option<EventId>> = vec![None; h];
    let mut contexts: Vec<EventId> = Vec::new();
    let mut last_out: Option<EventId> = None;

    for cmd in program {
        match *cmd {
            Command::ProjectQ { head } => proj_q[head] = Some(gemm(&mut tl, d_model, &[])),
            Command::ProjectK { head } => proj_k[head] = Some(gemm(&mut tl, d_model, &[])),
            Command::ScoreTile { head, .. } => {
                let deps = [proj_q[head].expect("order"), proj_k[head].expect("order")];
                last_score[head] = Some(gemm(&mut tl, d_k, &deps));
            }
            Command::Softmax { head } => {
                softmax_ev[head] = Some(tl.schedule(
                    sm_u,
                    "softmax",
                    softmax_module::latency_after_last_input(s_kv),
                    &[last_score[head].expect("order")],
                ));
            }
            Command::ProjectV { head } => {
                let deps: Vec<EventId> = if pol.overlap_softmax {
                    vec![]
                } else {
                    vec![softmax_ev[head].expect("order")]
                };
                proj_v[head] = Some(gemm(&mut tl, d_model, &deps));
            }
            Command::Context { head } => {
                let deps = [
                    softmax_ev[head].expect("order"),
                    proj_v[head].expect("order"),
                ];
                contexts.push(gemm(&mut tl, s_kv, &deps));
            }
            Command::OutputPanel { .. } => {
                last_out = Some(gemm(&mut tl, d_model, &contexts));
            }
            Command::FfnHidden { .. } => {
                contexts.push(gemm(&mut tl, d_model, &[]));
            }
            Command::FfnOutput { .. } => {
                last_out = Some(gemm(&mut tl, d_ff, &contexts));
            }
            Command::LayerNorm => {
                tl.schedule(
                    ln_u,
                    "layernorm",
                    layernorm_module::total_tail(pol.layernorm, d_model),
                    &[last_out.expect("order")],
                );
            }
        }
    }
    tl.makespan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quantized::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::ffn::FfnResBlock;
    use transformer::mha::MhaResBlock;

    fn blocks(cfg: &ModelConfig, s: usize) -> (QuantMhaResBlock, QuantFfnResBlock, Mat<i8>) {
        let mut rng = StdRng::seed_from_u64(0x15A);
        let mha = MhaResBlock::new(cfg, &mut rng);
        let ffn = FfnResBlock::new(cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..3)
            .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
            .collect();
        let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
        let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
        let xq = qmha.quantize_input_q(&calib[0]);
        (qmha, qffn, xq)
    }

    #[test]
    fn program_shapes_match_algorithm1() {
        let p = mha_program(8, 64);
        // per head: PQ, PK, 1 score tile, softmax, PV, context = 6
        assert_eq!(p.len(), 8 * 6 + 8 + 1);
        assert_eq!(*p.last().unwrap(), Command::LayerNorm);
        let p = ffn_program(512, 2048);
        assert_eq!(p.len(), 32 + 8 + 1);
    }

    #[test]
    fn mha_execution_is_bit_identical_to_the_datapath() {
        for cfg in [
            ModelConfig::tiny_for_tests(),
            ModelConfig {
                name: "mini64h".into(),
                d_model: 128,
                d_ff: 512,
                h: 2,
                n_layers: 1,
                vocab: 16,
                max_len: 8,
            },
        ] {
            let (qmha, _, xq) = blocks(&cfg, 8);
            let program = mha_program(cfg.h, 8);
            let got = execute_mha(&program, &qmha, &xq, &xq, None);
            let (want, _) = qmha.forward(&xq, &xq, None);
            assert_eq!(got, want, "{}", cfg.name);
        }
    }

    #[test]
    fn masked_mha_execution_matches() {
        let cfg = ModelConfig::tiny_for_tests();
        let (qmha, _, xq) = blocks(&cfg, 8);
        let mask = tensor::ops::causal_mask(8);
        let program = mha_program(cfg.h, 8);
        let got = execute_mha(&program, &qmha, &xq, &xq, Some(&mask));
        let (want, _) = qmha.forward(&xq, &xq, Some(&mask));
        assert_eq!(got, want);
    }

    #[test]
    fn ffn_execution_is_bit_identical_to_the_datapath() {
        let cfg = ModelConfig::tiny_for_tests();
        let (_, qffn, _) = blocks(&cfg, 8);
        let mut rng = StdRng::seed_from_u64(0xF0);
        let x = qffn.quantize_input(&tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0));
        let program = ffn_program(cfg.d_model, cfg.d_ff);
        let got = execute_ffn(&program, &qffn, &x);
        let (want, _) = qffn.forward(&x);
        assert_eq!(got, want);
    }

    #[test]
    fn timing_interpreter_matches_the_scheduler_exactly() {
        let cfg = AccelConfig::paper_default();
        let mha_prog = mha_program(cfg.model.h, cfg.s);
        assert_eq!(
            schedule_program(&cfg, &mha_prog, cfg.s),
            crate::scheduler::schedule_mha(&cfg).cycles
        );
        let ffn_prog = ffn_program(cfg.model.d_model, cfg.model.d_ff);
        assert_eq!(
            schedule_program(&cfg, &ffn_prog, cfg.s),
            crate::scheduler::schedule_ffn(&cfg).cycles
        );
    }

    #[test]
    fn timing_interpreter_matches_under_every_policy() {
        use crate::config::SchedPolicy;
        for pol in [
            SchedPolicy::naive(),
            SchedPolicy::paper(),
            SchedPolicy::aggressive(),
        ] {
            let mut cfg = AccelConfig::paper_default();
            cfg.sched = pol;
            let prog = mha_program(cfg.model.h, cfg.s);
            assert_eq!(
                schedule_program(&cfg, &prog, cfg.s),
                crate::scheduler::schedule_mha(&cfg).cycles,
                "{pol:?}"
            );
        }
    }

    #[test]
    fn lowered_programs_validate_clean() {
        for (h, s_kv) in [(8, 64), (2, 8), (4, 128)] {
            validate_mha_program(&mha_program(h, s_kv), h, s_kv).expect("lowered MHA is valid");
        }
        for (d_model, d_ff) in [(512, 2048), (64, 256), (100, 300)] {
            validate_ffn_program(&ffn_program(d_model, d_ff), d_model, d_ff)
                .expect("lowered FFN is valid");
        }
    }

    #[test]
    fn validator_catches_any_single_index_corruption() {
        // Flip every index field of every command of the canonical MHA
        // program in turn: exact-coverage validation must flag each one
        // (a corrupted index either leaves the range, runs before its
        // operands, or double-covers one site while starving another).
        let (h, s_kv) = (4usize, 64usize);
        let prog = mha_program(h, s_kv);
        for slot in 0..prog.len() {
            for bit in 0..8u32 {
                let mut bad = prog.clone();
                let corrupted = match bad[slot] {
                    Command::ProjectQ { head } => Command::ProjectQ {
                        head: head ^ (1 << bit),
                    },
                    Command::ProjectK { head } => Command::ProjectK {
                        head: head ^ (1 << bit),
                    },
                    Command::ProjectV { head } => Command::ProjectV {
                        head: head ^ (1 << bit),
                    },
                    Command::ScoreTile { head, tile } => Command::ScoreTile {
                        head: head ^ (1 << bit),
                        tile,
                    },
                    Command::Softmax { head } => Command::Softmax {
                        head: head ^ (1 << bit),
                    },
                    Command::Context { head } => Command::Context {
                        head: head ^ (1 << bit),
                    },
                    Command::OutputPanel { panel } => Command::OutputPanel {
                        panel: panel ^ (1 << bit),
                    },
                    Command::LayerNorm => continue, // no index field to corrupt
                    _ => unreachable!("MHA program"),
                };
                bad[slot] = corrupted;
                assert!(
                    validate_mha_program(&bad, h, s_kv).is_err(),
                    "slot {slot} bit {bit} escaped validation"
                );
            }
        }
        let prog = ffn_program(128, 256);
        for slot in 0..prog.len() {
            let mut bad = prog.clone();
            let corrupted = match bad[slot] {
                Command::FfnHidden { panel } => Command::FfnHidden { panel: panel ^ 1 },
                Command::FfnOutput { panel } => Command::FfnOutput { panel: panel ^ 1 },
                Command::LayerNorm => continue,
                _ => unreachable!("FFN program"),
            };
            bad[slot] = corrupted;
            assert!(
                validate_ffn_program(&bad, 128, 256).is_err(),
                "slot {slot} escaped validation"
            );
        }
    }

    #[test]
    fn validator_rejects_truncated_and_cross_block_programs() {
        let mut prog = mha_program(2, 8);
        assert!(validate_mha_program(&prog[..prog.len() - 1], 2, 8).is_err());
        prog.insert(0, Command::FfnHidden { panel: 0 });
        assert!(validate_mha_program(&prog, 2, 8).is_err());
        let ffn = ffn_program(64, 256);
        assert!(validate_ffn_program(&ffn[..ffn.len() - 1], 64, 256).is_err());
        let mut ffn_bad = ffn.clone();
        ffn_bad.insert(0, Command::Softmax { head: 0 });
        assert!(validate_ffn_program(&ffn_bad, 64, 256).is_err());
        // Hidden panels must all land before the first output panel.
        let mut swapped = ffn.clone();
        let first_out = swapped
            .iter()
            .position(|c| matches!(c, Command::FfnOutput { .. }))
            .unwrap();
        swapped.swap(0, first_out);
        assert!(validate_ffn_program(&swapped, 64, 256).is_err());
    }

    #[test]
    #[should_panic(expected = "not part of an MHA program")]
    fn ffn_commands_rejected_in_mha_execution() {
        let cfg = ModelConfig::tiny_for_tests();
        let (qmha, _, xq) = blocks(&cfg, 8);
        let _ = execute_mha(&[Command::FfnHidden { panel: 0 }], &qmha, &xq, &xq, None);
    }
}
