//! Lowering from the ResBlock operator graphs to the accelerator ISA,
//! plus an [`Executor`] that runs a graph on the command-stream
//! interpreter.
//!
//! [`lower_mha`] / [`lower_ffn`] walk a [`Graph`] in plan order and emit
//! [`Command`]s; [`crate::isa::mha_program`] and
//! [`crate::isa::ffn_program`] are now thin wrappers over this lowering,
//! so the static schedule the timing model runs is *derived from the
//! same dataflow description* every software backend executes. Nodes the
//! hardware fuses into a neighbouring unit (ReLU into the bias adders,
//! the residual add into the output drain) lower to no command at all —
//! the convention documented on [`Op`].
//!
//! [`AccelExec`] closes the loop: `run` lowers the graph, drives the
//! bit-exact ISA interpreter ([`crate::isa::execute_mha`] /
//! [`crate::isa::execute_ffn`]), and accumulates the timing
//! interpretation of the very same program into its [`ExecStats`].

use faults::{FaultKind, FaultPlan, Injector};
use graph::{Env, ExecStats, Executor, Graph, GraphKind, Node, Op, WeightId};
use quantized::{QuantFfnResBlock, QuantMhaResBlock};
use tensor::Mat;

use crate::config::AccelConfig;
use crate::isa::{
    execute_ffn, execute_mha, schedule_program, validate_ffn_program, validate_mha_program, Command,
};
use crate::partition::{qk_plan, PANEL_COLS};

fn producer<'g>(g: &'g Graph, name: &str) -> Option<&'g Node> {
    g.nodes.iter().find(|n| n.output == name)
}

/// Lowers the [`GraphKind::Mha`] graph to the Algorithm-1 command
/// stream at key/value length `s_kv`.
///
/// The per-head projections run inside the hardware's head loop, so
/// each `SplitHeads` node — not the full-width `Linear` that feeds it —
/// lowers to the `Project{Q,K,V}` command of its producer's weight.
/// `Concat` and the residual `Add` are free (panel writeback and the
/// output drain); `Linear(W_G)` lowers to one `OutputPanel` per head.
///
/// # Panics
///
/// Panics if the graph is not an MHA graph or a `SplitHeads` input is
/// not produced by a projection (e.g. the cached-KV graph, whose K/V
/// live in a cache the accelerator model does not stream).
pub fn lower_mha(g: &Graph, s_kv: usize) -> Vec<Command> {
    assert_eq!(g.kind, GraphKind::Mha, "lower_mha lowers the MHA graph");
    let tiles = qk_plan(s_kv).tiles;
    let mut prog = Vec::new();
    for node in &g.nodes {
        match node.op {
            // Full-width projections are realised per head (below).
            Op::Linear(WeightId::Wq | WeightId::Wk | WeightId::Wv) => {}
            Op::SplitHeads => {
                let head = node.head.expect("SplitHeads carries a head index");
                let src = producer(g, &node.inputs[0]).unwrap_or_else(|| {
                    panic!(
                        "SplitHeads input {:?} has no producer; cached graphs are not lowerable",
                        node.inputs[0]
                    )
                });
                match src.op {
                    Op::Linear(WeightId::Wq) => prog.push(Command::ProjectQ { head }),
                    Op::Linear(WeightId::Wk) => prog.push(Command::ProjectK { head }),
                    Op::Linear(WeightId::Wv) => prog.push(Command::ProjectV { head }),
                    ref other => panic!("SplitHeads fed by {other:?}, not a projection"),
                }
            }
            Op::HeadMatmul {
                transpose_rhs: true,
            } => {
                let head = node.head.expect("score matmul is per head");
                for tile in 0..tiles {
                    prog.push(Command::ScoreTile { head, tile });
                }
            }
            Op::ScaledMaskedSoftmax => {
                let head = node.head.expect("softmax is per head");
                prog.push(Command::Softmax { head });
            }
            Op::HeadMatmul {
                transpose_rhs: false,
            } => {
                let head = node.head.expect("context matmul is per head");
                prog.push(Command::Context { head });
            }
            // Panel writeback into data memory; no command.
            Op::Concat => {}
            // The hardware's output drain already performs the residual
            // add, so the fused `LinearAdd(Wo)` node lowers to exactly
            // the commands the unfused `Linear(Wo)` + `Add` pair did —
            // graph fusion is timing-transparent here.
            Op::Linear(WeightId::Wo) | Op::LinearAdd(WeightId::Wo) => {
                for panel in 0..g.cfg.h {
                    prog.push(Command::OutputPanel { panel });
                }
            }
            // Residual add is fused into the output drain; no command.
            Op::Add => {}
            Op::LayerNorm => prog.push(Command::LayerNorm),
            ref other => panic!("{other:?} is not part of the MHA dataflow"),
        }
    }
    prog
}

/// Lowers the [`GraphKind::Ffn`] graph to the Algorithm-1 command
/// stream (lines 14–22): one `FfnHidden` per 64-column hidden panel,
/// one `FfnOutput` per output panel, then `LayerNorm`. ReLU and the
/// residual add are fused into neighbouring units and lower to nothing.
///
/// # Panics
///
/// Panics if the graph is not an FFN graph.
pub fn lower_ffn(g: &Graph) -> Vec<Command> {
    assert_eq!(g.kind, GraphKind::Ffn, "lower_ffn lowers the FFN graph");
    let mut prog = Vec::new();
    for node in &g.nodes {
        match node.op {
            // ReLU runs on the bias adders and the residual add on the
            // output drain (Fig. 5), so the fused nodes lower to the
            // same panel commands as their unfused `Linear` producers —
            // same program, same cycle count.
            Op::Linear(WeightId::W1) | Op::LinearRelu(WeightId::W1) => {
                for panel in 0..g.cfg.d_ff.div_ceil(PANEL_COLS) {
                    prog.push(Command::FfnHidden { panel });
                }
            }
            // Fused into the bias adders (Fig. 5); no command.
            Op::Relu => {}
            Op::Linear(WeightId::W2) | Op::LinearAdd(WeightId::W2) => {
                for panel in 0..g.cfg.d_model.div_ceil(PANEL_COLS) {
                    prog.push(Command::FfnOutput { panel });
                }
            }
            // Residual add is fused into the output drain; no command.
            Op::Add => {}
            Op::LayerNorm => prog.push(Command::LayerNorm),
            ref other => panic!("{other:?} is not part of the FFN dataflow"),
        }
    }
    prog
}

/// Which quantized ResBlock an [`AccelExec`] runs against.
#[derive(Debug, Clone, Copy)]
pub enum AccelBlock<'a> {
    /// The MHA ResBlock (Algorithm 1, lines 1–13).
    Mha(&'a QuantMhaResBlock),
    /// The FFN ResBlock (lines 14–22).
    Ffn(&'a QuantFfnResBlock),
}

/// Graph executor backed by the accelerator's ISA interpreter: lowers
/// the graph to a command stream, executes it bit-exactly, and
/// accumulates the program's cycle count (under the configuration's
/// scheduling policy) into [`ExecStats::cycles`].
#[derive(Debug)]
pub struct AccelExec<'a> {
    block: AccelBlock<'a>,
    cfg: &'a AccelConfig,
    stats: ExecStats,
    injector: Option<Injector>,
}

impl<'a> AccelExec<'a> {
    /// Executor over a quantized block under a timing configuration.
    pub fn new(block: AccelBlock<'a>, cfg: &'a AccelConfig) -> Self {
        Self {
            block,
            cfg,
            stats: ExecStats::default(),
            injector: None,
        }
    }

    /// Installs a fault plan whose `IsaCommand` events corrupt the
    /// lowered command streams (program index = `run` call order).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injector = Some(Injector::new(plan));
        self
    }

    /// Faults landed in the command store so far.
    pub fn injected_faults(&self) -> u64 {
        self.injector.as_ref().map_or(0, Injector::injected)
    }

    /// Applies this run's scheduled command-store faults to `prog`,
    /// then puts it through the control unit's structural validator —
    /// the hardware analogue of an instruction-store parity + ordering
    /// check. A program that fails validation is discarded and
    /// re-lowered from the graph (recompute-from-source recovery), with
    /// the detection tallied in [`ExecStats::faults_detected`].
    fn harden_program(
        &mut self,
        mut prog: Vec<Command>,
        validate: impl Fn(&[Command]) -> Result<(), crate::isa::ProgramFault>,
        relower: impl Fn() -> Vec<Command>,
    ) -> Vec<Command> {
        let Some(inj) = self.injector.as_mut() else {
            return prog;
        };
        let mut hit = 0usize;
        for (slot, kind) in inj.isa_faults() {
            if slot < prog.len() {
                prog[slot] = corrupt_command(prog[slot], kind);
                hit += 1;
            }
        }
        inj.note_injected(hit);
        if hit > 0 && validate(&prog).is_err() {
            self.stats.faults_detected += 1;
            return relower();
        }
        prog
    }
}

/// Applies a fault to a command's index field (the bits a program-store
/// upset would corrupt). `LayerNorm` carries no operand bits and is
/// returned unchanged.
fn corrupt_command(cmd: Command, kind: FaultKind) -> Command {
    let flip = |v: usize| kind.apply_word(v as u32, 32) as usize;
    match cmd {
        Command::ProjectQ { head } => Command::ProjectQ { head: flip(head) },
        Command::ProjectK { head } => Command::ProjectK { head: flip(head) },
        Command::ProjectV { head } => Command::ProjectV { head: flip(head) },
        Command::ScoreTile { head, tile } => Command::ScoreTile {
            head: flip(head),
            tile,
        },
        Command::Softmax { head } => Command::Softmax { head: flip(head) },
        Command::Context { head } => Command::Context { head: flip(head) },
        Command::OutputPanel { panel } => Command::OutputPanel { panel: flip(panel) },
        Command::FfnHidden { panel } => Command::FfnHidden { panel: flip(panel) },
        Command::FfnOutput { panel } => Command::FfnOutput { panel: flip(panel) },
        Command::LayerNorm => Command::LayerNorm,
    }
}

impl Executor for AccelExec<'_> {
    type Value = Mat<i8>;

    fn run(
        &mut self,
        graph: &Graph,
        inputs: Vec<(&str, Mat<i8>)>,
        mask: Option<&Mat<bool>>,
    ) -> Env<Mat<i8>> {
        let mut env = Env::new(graph.plan().slot_names);
        for (name, value) in inputs {
            let slot = env.slot(name);
            env.set(slot, value);
        }
        let (y, prog, s_kv) = match (graph.kind, self.block) {
            (GraphKind::Mha, AccelBlock::Mha(block)) => {
                let xq = env.take("x_q");
                let xk = env.take("x_k");
                let xv = env.take("x_v");
                // The hardware streams one KV operand; self-attention
                // feeds the same codes to both projections.
                debug_assert_eq!(xk, xv, "accelerator streams a single KV input");
                let s_kv = xk.rows();
                let h = block.heads();
                let prog = self.harden_program(
                    lower_mha(graph, s_kv),
                    |p| validate_mha_program(p, h, s_kv),
                    || lower_mha(graph, s_kv),
                );
                let y = execute_mha(&prog, block, &xq, &xk, mask);
                (y, prog, s_kv)
            }
            (GraphKind::Ffn, AccelBlock::Ffn(block)) => {
                let x = env.take("x");
                let s_kv = x.rows();
                let (w1, w2) = block.sublayers();
                let (d_ff, d_model) = (w1.weight_q().cols(), w2.weight_q().cols());
                let prog = self.harden_program(
                    lower_ffn(graph),
                    |p| validate_ffn_program(p, d_model, d_ff),
                    || lower_ffn(graph),
                );
                let y = execute_ffn(&prog, block, &x);
                (y, prog, s_kv)
            }
            (GraphKind::MhaCached, _) => {
                panic!("the accelerator model has no cached-KV schedule")
            }
            (kind, _) => panic!("graph kind {kind:?} does not match the bound block"),
        };
        let cycles = schedule_program(self.cfg, &prog, s_kv);
        self.stats.nodes += graph.nodes.len();
        self.stats.cycles = Some(self.stats.cycles.unwrap_or(0) + cycles.0);
        let out = env.slot("y");
        env.set(out, y);
        env
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{ffn_graph, mha_graph, GraphConfig};
    use quantized::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::ffn::FfnResBlock;
    use transformer::mha::MhaResBlock;

    fn blocks(cfg: &ModelConfig, s: usize) -> (QuantMhaResBlock, QuantFfnResBlock, Mat<i8>) {
        let mut rng = StdRng::seed_from_u64(0xACCE);
        let mha = MhaResBlock::new(cfg, &mut rng);
        let ffn = FfnResBlock::new(cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..3)
            .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
            .collect();
        let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
        let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
        let xq = qmha.quantize_input_q(&calib[0]);
        (qmha, qffn, xq)
    }

    /// The pre-refactor hand-written Algorithm-1 loops — frozen here as
    /// the golden reference the lowering must reproduce exactly.
    fn handwritten_mha(h: usize, s_kv: usize) -> Vec<Command> {
        let mut prog = Vec::new();
        let tiles = qk_plan(s_kv).tiles;
        for head in 0..h {
            prog.push(Command::ProjectQ { head });
            prog.push(Command::ProjectK { head });
            for tile in 0..tiles {
                prog.push(Command::ScoreTile { head, tile });
            }
            prog.push(Command::Softmax { head });
            prog.push(Command::ProjectV { head });
            prog.push(Command::Context { head });
        }
        for panel in 0..h {
            prog.push(Command::OutputPanel { panel });
        }
        prog.push(Command::LayerNorm);
        prog
    }

    fn handwritten_ffn(d_model: usize, d_ff: usize) -> Vec<Command> {
        let mut prog = Vec::new();
        for panel in 0..d_ff.div_ceil(PANEL_COLS) {
            prog.push(Command::FfnHidden { panel });
        }
        for panel in 0..d_model.div_ceil(PANEL_COLS) {
            prog.push(Command::FfnOutput { panel });
        }
        prog.push(Command::LayerNorm);
        prog
    }

    #[test]
    fn lowered_mha_program_matches_handwritten() {
        for (h, s_kv) in [(8, 64), (2, 8), (4, 128)] {
            let g = mha_graph(&GraphConfig {
                d_model: h * PANEL_COLS,
                d_ff: 0,
                h,
            });
            assert_eq!(lower_mha(&g, s_kv), handwritten_mha(h, s_kv));
            assert_eq!(crate::isa::mha_program(h, s_kv), handwritten_mha(h, s_kv));
        }
    }

    #[test]
    fn lowered_ffn_program_matches_handwritten() {
        for (d_model, d_ff) in [(512, 2048), (64, 256), (100, 300)] {
            let g = ffn_graph(&GraphConfig {
                d_model,
                d_ff,
                h: 1,
            });
            assert_eq!(lower_ffn(&g), handwritten_ffn(d_model, d_ff));
            assert_eq!(
                crate::isa::ffn_program(d_model, d_ff),
                handwritten_ffn(d_model, d_ff)
            );
        }
    }

    #[test]
    fn fused_graphs_lower_to_identical_programs() {
        // Fusion must be invisible to the accelerator: the fused graph
        // lowers to the exact command stream of the unfused graph, so
        // every pinned cycle count (MHA 20998 / FFN 35846 at the paper
        // point) is preserved by construction.
        for (h, s_kv) in [(8, 64), (2, 8), (4, 128)] {
            let g = mha_graph(&GraphConfig {
                d_model: h * PANEL_COLS,
                d_ff: 0,
                h,
            });
            assert_eq!(lower_mha(&graph::fuse(&g), s_kv), lower_mha(&g, s_kv));
        }
        for (d_model, d_ff) in [(512, 2048), (64, 256), (100, 300)] {
            let g = ffn_graph(&GraphConfig {
                d_model,
                d_ff,
                h: 1,
            });
            assert_eq!(lower_ffn(&graph::fuse(&g)), lower_ffn(&g));
        }
    }

    #[test]
    fn accel_exec_is_bit_identical_and_counts_cycles() {
        let cfg = ModelConfig::tiny_for_tests();
        let (qmha, qffn, xq) = blocks(&cfg, 8);
        let acfg = AccelConfig::paper_default();
        let gcfg = GraphConfig {
            d_model: cfg.d_model,
            d_ff: cfg.d_ff,
            h: cfg.h,
        };

        let g = mha_graph(&gcfg);
        let mut exec = AccelExec::new(AccelBlock::Mha(&qmha), &acfg);
        let mut env = exec.run(
            &g,
            vec![
                ("x_q", xq.clone()),
                ("x_k", xq.clone()),
                ("x_v", xq.clone()),
            ],
            None,
        );
        let (want, _) = qmha.forward(&xq, &xq, None);
        assert_eq!(env.take("y"), want);
        let mha_cycles = schedule_program(&acfg, &lower_mha(&g, 8), 8);
        assert_eq!(exec.stats().cycles, Some(mha_cycles.0));

        let g = ffn_graph(&gcfg);
        let x = qffn.quantize_input(&tensor::init::normal(
            &mut StdRng::seed_from_u64(9),
            8,
            cfg.d_model,
            1.0,
        ));
        let mut exec = AccelExec::new(AccelBlock::Ffn(&qffn), &acfg);
        let mut env = exec.run(&g, vec![("x", x.clone())], None);
        let (want, _) = qffn.forward(&x);
        assert_eq!(env.take("y"), want);
        assert!(exec.stats().cycles.is_some());
    }

    #[test]
    fn isa_command_fault_is_detected_and_recovered_by_relowering() {
        use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite};
        let cfg = ModelConfig::tiny_for_tests();
        let (qmha, _, xq) = blocks(&cfg, 8);
        let acfg = AccelConfig::paper_default();
        let g = mha_graph(&GraphConfig {
            d_model: cfg.d_model,
            d_ff: cfg.d_ff,
            h: cfg.h,
        });
        let inputs = || {
            vec![
                ("x_q", xq.clone()),
                ("x_k", xq.clone()),
                ("x_v", xq.clone()),
            ]
        };
        let mut pristine = AccelExec::new(AccelBlock::Mha(&qmha), &acfg);
        let want = pristine.run(&g, inputs(), None).take("y");
        // Slot 2 is head 0's ScoreTile; flipping its head index makes
        // the program reference an unprojected head — the structural
        // validator flags it and the executor re-lowers from the graph.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::IsaCommand {
                program: 0,
                slot: 2,
            },
            kind: FaultKind::BitFlip { bit: 0 },
        }]);
        let mut exec = AccelExec::new(AccelBlock::Mha(&qmha), &acfg).with_fault_plan(plan);
        let got = exec.run(&g, inputs(), None).take("y");
        assert_eq!(got, want, "re-lowered program must compute correctly");
        assert_eq!(exec.injected_faults(), 1);
        assert_eq!(exec.stats().faults_detected, 1);
        // The next program index carries no events: clean, no detection.
        let again = exec.run(&g, inputs(), None).take("y");
        assert_eq!(again, want);
        assert_eq!(exec.stats().faults_detected, 1);
    }

    #[test]
    fn out_of_range_isa_fault_is_inert() {
        use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite};
        let cfg = ModelConfig::tiny_for_tests();
        let (qmha, _, xq) = blocks(&cfg, 8);
        let acfg = AccelConfig::paper_default();
        let g = mha_graph(&GraphConfig {
            d_model: cfg.d_model,
            d_ff: cfg.d_ff,
            h: cfg.h,
        });
        let plan = FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::IsaCommand {
                program: 0,
                slot: 10_000,
            },
            kind: FaultKind::BitFlip { bit: 0 },
        }]);
        let mut exec = AccelExec::new(AccelBlock::Mha(&qmha), &acfg).with_fault_plan(plan);
        let mut pristine = AccelExec::new(AccelBlock::Mha(&qmha), &acfg);
        let inputs = vec![
            ("x_q", xq.clone()),
            ("x_k", xq.clone()),
            ("x_v", xq.clone()),
        ];
        let got = exec.run(&g, inputs.clone(), None).take("y");
        let want = pristine.run(&g, inputs, None).take("y");
        assert_eq!(got, want);
        assert_eq!(exec.injected_faults(), 0);
        assert_eq!(exec.stats().faults_detected, 0);
    }

    #[test]
    #[should_panic(expected = "no cached-KV schedule")]
    fn cached_graph_is_rejected() {
        let cfg = ModelConfig::tiny_for_tests();
        let (qmha, _, xq) = blocks(&cfg, 8);
        let acfg = AccelConfig::paper_default();
        let g = graph::mha_cached_graph(&GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let mut exec = AccelExec::new(AccelBlock::Mha(&qmha), &acfg);
        let _ = exec.run(&g, vec![("x", xq)], None);
    }
}
