//! Array-level execution engine: Algorithm 1 executed *literally* on
//! the register-true systolic array.
//!
//! Where [`crate::top::Accelerator`] delegates numerics to the
//! `quantized` crate wholesale, this engine drives the hardware the way
//! the RTL does — GEMM pass by GEMM pass, one 64-column weight panel at
//! a time (Fig. 4), each pass clocked through the
//! [`crate::systolic::SystolicArray`] PE grid, with bias/requantization
//! on the drain path, the softmax module between the score and context
//! passes, and the LayerNorm module at the end. Its outputs are
//! bit-identical to [`quantized::QuantMhaResBlock::forward`] /
//! [`quantized::QuantFfnResBlock::forward`] (asserted by tests), which
//! closes the loop: *the paper's dataflow, executed on the paper's
//! array, computes the paper's datapath.*

use faults::{abft, FaultPlan, Injector};
use hwsim::cycles::Cycle;
use quantized::softmax::scaled_masked_softmax;
use quantized::{QLinear, QuantFfnResBlock, QuantMhaResBlock};
use tensor::Mat;

use crate::partition::{qk_plan, PANEL_COLS};
use crate::systolic::SystolicArray;

/// How the engine models each GEMM pass through the array.
///
/// Both modes produce **bit-identical** [`EngineRun`]s — same output
/// codes, same [`EngineStats`], same cycle counts (asserted by tests) —
/// because the PE grid is exact integer arithmetic and the wavefront
/// timing is a closed form of the operand shape alone. They differ only
/// in simulation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Fidelity {
    /// Cycle-by-cycle register-true PE-grid simulation
    /// ([`SystolicArray::simulate`]): `O(cycles · PEs)` per pass. Use
    /// when validating the dataflow itself.
    RegisterTrue,
    /// Fast analytic model ([`SystolicArray::simulate_analytic`]): the
    /// blocked/parallel `tensor::gemm::matmul_i8` kernel for the product
    /// plus closed-form cycles (`compute = k + m + n − 2`, `drain = n`).
    /// The default — orders of magnitude faster at paper shapes.
    #[default]
    Analytic,
}

/// How the engine checks each GEMM pass for datapath corruption.
///
/// Any mode other than [`CheckMode::Off`] leaves outputs untouched —
/// checkers only *observe* — so a fault-free run is bit-identical in
/// every mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CheckMode {
    /// No checking (the production fast path).
    #[default]
    Off,
    /// ABFT row/column checksums latched at tile load, verified at
    /// drain ([`faults::abft`]). Covers weight-SRAM and accumulator
    /// faults; blind to softmax/LayerNorm datapath faults.
    Abft,
    /// ABFT plus a golden-model cross-check: every pass is recomputed
    /// against the pristine operands and the final block output against
    /// the reference datapath. Catches everything ABFT can't (at golden
    /// simulation cost); faults the golden model sees but ABFT missed
    /// are tallied as *escapes*.
    AbftGolden,
}

/// Execution statistics of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of systolic-array GEMM passes executed.
    pub gemm_passes: usize,
    /// Total multiply-accumulates performed by the PE grid.
    pub macs: u64,
    /// Sum of isolated per-pass array cycles (compute + drain). This is
    /// the *unpipelined* cost; the scheduler's makespan is lower because
    /// consecutive passes overlap through the wavefront skew.
    pub isolated_cycles: Cycle,
    /// MAC capacity of the PE grids these passes occupied: Σ over passes
    /// of `pass_cycles × rows × cols` *of the grid that ran the pass*.
    /// Recorded by [`ArrayEngine`]; zero for hand-modeled stats. This is
    /// what makes [`EngineStats::array_utilization`] correct for
    /// rectangular (non-`64×64`) arrays and for stats merged across
    /// engines of different geometry, where no single `pe_count` exists.
    pub pe_cycles: u64,
    /// ABFT tile verifications performed.
    pub abft_checked: usize,
    /// Faults the injector actually landed (in-range plan events).
    pub faults_injected: usize,
    /// Corruptions detected (ABFT mismatch, golden-model divergence, or
    /// program-store validation failure).
    pub faults_detected: usize,
    /// Corruptions the golden model saw but the ABFT checksums missed —
    /// the checker's measured escape rate.
    pub faults_escaped: usize,
}

impl EngineStats {
    /// Accumulates another run's statistics into this one — how a batch
    /// of per-block [`EngineRun`]s (e.g. every ResBlock of one
    /// continuous-batching decode step) rolls up into one figure.
    pub fn merge(&mut self, other: &EngineStats) {
        self.gemm_passes += other.gemm_passes;
        self.macs += other.macs;
        self.isolated_cycles += other.isolated_cycles;
        self.pe_cycles += other.pe_cycles;
        self.abft_checked += other.abft_checked;
        self.faults_injected += other.faults_injected;
        self.faults_detected += other.faults_detected;
        self.faults_escaped += other.faults_escaped;
    }

    /// Fraction of the array's multiply-accumulate capacity these passes
    /// actually used. When the engine recorded per-pass capacity
    /// ([`EngineStats::pe_cycles`] > 0) this is `macs / pe_cycles`, which
    /// is exact for rectangular grids and for stats merged across arrays
    /// of different geometry; `pe_count` is then ignored. For
    /// hand-modeled stats with no recorded capacity it falls back to the
    /// historical `macs / (isolated_cycles · pe_count)`, which is only
    /// meaningful if every pass ran on the same `pe_count`-PE grid.
    /// Zero when no cycles were recorded.
    pub fn array_utilization(&self, pe_count: u64) -> f64 {
        if self.pe_cycles > 0 {
            return self.macs as f64 / self.pe_cycles as f64;
        }
        let cycles = self.isolated_cycles.get();
        if cycles == 0 || pe_count == 0 {
            return 0.0;
        }
        self.macs as f64 / (cycles as f64 * pe_count as f64)
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = EngineStats>>(iter: I) -> Self {
        iter.fold(EngineStats::default(), |mut acc, s| {
            acc.merge(&s);
            acc
        })
    }
}

/// Result of executing a ResBlock on the array.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The block's INT8 output codes.
    pub out: Mat<i8>,
    /// Execution statistics.
    pub stats: EngineStats,
}

/// The execution engine: a systolic array plus pass bookkeeping, an
/// optional per-instance fault [`Injector`], and an ABFT/golden checker.
#[derive(Debug, Clone)]
pub struct ArrayEngine {
    sa: SystolicArray,
    stats: EngineStats,
    fidelity: Fidelity,
    injector: Option<Injector>,
    check: CheckMode,
}

impl ArrayEngine {
    /// Creates an engine around an `s_max × 64` array using the default
    /// [`Fidelity::Analytic`] model.
    pub fn new(s_max: usize) -> Self {
        Self::with_fidelity(s_max, Fidelity::default())
    }

    /// Creates an engine around an `s_max × 64` array with an explicit
    /// fidelity mode.
    pub fn with_fidelity(s_max: usize, fidelity: Fidelity) -> Self {
        Self {
            sa: SystolicArray::paper(s_max),
            stats: EngineStats::default(),
            fidelity,
            injector: None,
            check: CheckMode::default(),
        }
    }

    /// Installs a fault plan on this engine (fresh injector counters).
    /// Builder-style; pair with [`ArrayEngine::with_check_mode`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.injector = Some(Injector::new(plan));
        self
    }

    /// Selects the per-pass checker mode.
    pub fn with_check_mode(mut self, check: CheckMode) -> Self {
        self.check = check;
        self
    }

    /// Installs or removes the fault plan in place.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.injector = plan.map(Injector::new);
    }

    /// Sets the per-pass checker mode in place.
    pub fn set_check_mode(&mut self, check: CheckMode) {
        self.check = check;
    }

    /// The active checker mode.
    pub fn check_mode(&self) -> CheckMode {
        self.check
    }

    /// Faults the injector has landed so far (across runs).
    pub fn injected_faults(&self) -> u64 {
        self.injector.as_ref().map_or(0, Injector::injected)
    }

    /// Creates a register-true engine (cycle-by-cycle PE simulation).
    pub fn register_true(s_max: usize) -> Self {
        Self::with_fidelity(s_max, Fidelity::RegisterTrue)
    }

    /// The underlying array geometry.
    pub fn array(&self) -> &SystolicArray {
        &self.sa
    }

    /// The engine's fidelity mode.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// One GEMM pass through the PE grid, with bookkeeping. The fault
    /// hooks are zero-cost when off: a fault-free engine takes the
    /// first branch, which is byte-for-byte the pre-instrumentation
    /// path.
    fn pass(&mut self, a: &Mat<i8>, b: &Mat<i8>) -> Mat<i32> {
        if self.injector.is_none() && self.check == CheckMode::Off {
            let sim = match self.fidelity {
                Fidelity::RegisterTrue => self.sa.simulate(a, b),
                Fidelity::Analytic => self.sa.simulate_analytic(a, b),
            };
            self.stats.gemm_passes += 1;
            self.stats.macs += (a.rows() * a.cols() * b.cols()) as u64;
            self.stats.isolated_cycles += sim.total;
            self.stats.pe_cycles += sim.total.get() * self.sa.pe_count() as u64;
            return sim.out;
        }
        self.checked_pass(a, b)
    }

    /// The instrumented pass: latch ABFT checksums from the pristine
    /// operands, corrupt the resident weight tile and drained
    /// accumulators per the fault plan, verify at drain.
    fn checked_pass(&mut self, a: &Mat<i8>, b: &Mat<i8>) -> Mat<i32> {
        // Checksums latch at tile *load*, before any fault can strike.
        let sums = (self.check != CheckMode::Off).then(|| abft::tile_checksums(a, b));
        let pass_idx = self.injector.as_mut().map(Injector::begin_pass);
        // Weight-SRAM faults corrupt the resident tile the array streams.
        let mut resident: Option<Mat<i8>> = None;
        if let (Some(inj), Some(pass)) = (self.injector.as_mut(), pass_idx) {
            if !inj.weight_events(pass).is_empty() {
                let mut tile = b.clone();
                let hit = inj.corrupt_weights(pass, &mut tile);
                if hit > 0 {
                    resident = Some(tile);
                }
                self.stats.faults_injected += hit;
            }
        }
        let b_used = resident.as_ref().unwrap_or(b);
        let sim = match self.fidelity {
            Fidelity::RegisterTrue => self.sa.simulate(a, b_used),
            Fidelity::Analytic => self.sa.simulate_analytic(a, b_used),
        };
        let mut out = sim.out;
        // Accumulator faults strike the drained registers.
        if let (Some(inj), Some(pass)) = (self.injector.as_mut(), pass_idx) {
            self.stats.faults_injected += inj.corrupt_acc(pass, &mut out);
        }
        if let Some(sums) = &sums {
            self.stats.abft_checked += 1;
            // The column check reads the *resident* (possibly corrupted)
            // tile, as a hardware checker sharing the SRAM port would.
            let mut detected = !abft::verify(a, b_used, &out, sums).ok();
            if self.check == CheckMode::AbftGolden {
                let golden = tensor::gemm::matmul_i8(a, b).expect("pass shapes");
                if golden != out && !detected {
                    self.stats.faults_escaped += 1;
                    detected = true;
                }
            }
            if detected {
                self.stats.faults_detected += 1;
            }
        }
        self.stats.gemm_passes += 1;
        self.stats.macs += (a.rows() * a.cols() * b.cols()) as u64;
        self.stats.isolated_cycles += sim.total;
        self.stats.pe_cycles += sim.total.get() * self.sa.pe_count() as u64;
        out
    }

    /// A full linear sublayer: every 64-column weight panel streamed
    /// through the array, bias added and requantized on the drain path.
    fn linear(&mut self, lin: &QLinear, x: &Mat<i8>) -> Mat<i8> {
        let panels = lin.weight_q().col_panels(PANEL_COLS);
        let mut outs = Vec::with_capacity(panels.len());
        let mut c0 = 0usize;
        for panel in &panels {
            let acc = self.pass(x, panel);
            let bias = &lin.bias_q()[c0..c0 + panel.cols()];
            outs.push(Mat::from_fn(acc.rows(), acc.cols(), |r, c| {
                lin.requantize_col(c0 + c, acc[(r, c)] + bias[c])
            }));
            c0 += panel.cols();
        }
        Mat::hconcat(&outs).expect("panels share rows")
    }

    /// Like [`ArrayEngine::linear`] but the raw accumulators (+bias) are
    /// returned for a caller-owned drain transform (ReLU, residual...).
    fn linear_acc(&mut self, lin: &QLinear, x: &Mat<i8>) -> Mat<i32> {
        let panels = lin.weight_q().col_panels(PANEL_COLS);
        let mut outs = Vec::with_capacity(panels.len());
        let mut c0 = 0usize;
        for panel in &panels {
            let acc = self.pass(x, panel);
            let bias = &lin.bias_q()[c0..c0 + panel.cols()];
            outs.push(Mat::from_fn(acc.rows(), acc.cols(), |r, c| {
                acc[(r, c)] + bias[c]
            }));
            c0 += panel.cols();
        }
        Mat::hconcat(&outs).expect("panels share rows")
    }

    /// `Q_i K_i^T` through the array, following the Section-III
    /// padding/tiling plan.
    fn qk(&mut self, qi: &Mat<i8>, ki: &Mat<i8>) -> Mat<i32> {
        let s = ki.rows();
        let plan = qk_plan(s);
        let k_padded = if plan.padded_k_rows > s {
            ki.padded(plan.padded_k_rows, ki.cols())
        } else {
            ki.clone()
        };
        let mut tiles = Vec::with_capacity(plan.tiles);
        for t in 0..plan.tiles {
            let r0 = t * PANEL_COLS;
            let rows = PANEL_COLS.min(k_padded.rows() - r0);
            let k_tile = k_padded
                .submatrix(r0, 0, rows, k_padded.cols())
                .expect("tile in range");
            tiles.push(self.pass(qi, &k_tile.transposed()));
        }
        Mat::hconcat(&tiles)
            .expect("tiles share rows")
            .submatrix(0, 0, qi.rows(), s)
            .expect("crop padding")
    }

    /// Executes the MHA ResBlock (Algorithm 1 lines 1–13) on the array.
    ///
    /// # Panics
    ///
    /// Panics if the inputs exceed the array's rows.
    pub fn execute_mha(
        &mut self,
        block: &QuantMhaResBlock,
        xq: &Mat<i8>,
        xkv: &Mat<i8>,
        mask: Option<&Mat<bool>>,
    ) -> EngineRun {
        self.stats = EngineStats::default();
        let (wq, wk, wv, wo) = block.projections();
        let d_k = block.d_k();
        // Lines 3-4 + line 6: the three projections (panel per head).
        let q = self.linear(wq, xq);
        let k = self.linear(wk, xkv);
        let v = self.linear(wv, xkv);
        // Lines 5-7, per head: scores -> softmax module -> context.
        let mut p_panels = Vec::with_capacity(block.heads());
        for i in 0..block.heads() {
            let c0 = i * d_k;
            let qi = q.submatrix(0, c0, q.rows(), d_k).expect("panel");
            let ki = k.submatrix(0, c0, k.rows(), d_k).expect("panel");
            let vi = v.submatrix(0, c0, v.rows(), d_k).expect("panel");
            let d = self.qk(&qi, &ki);
            let mut probs =
                scaled_masked_softmax(&d, block.d_scale(), d_k, mask, block.softmax_mode());
            if let Some(inj) = self.injector.as_mut() {
                self.stats.faults_injected += inj.corrupt_softmax(&mut probs);
            }
            let p_acc = self.pass(&probs, &vi);
            p_panels.push(p_acc.map(|&a| block.requantize_p(a)));
        }
        let p = Mat::hconcat(&p_panels).expect("heads share rows");
        // Lines 9-11: G = P·W_G + bias (+ residual), panel per head.
        let g_codes = self.linear(wo, &p);
        let mut g = Mat::from_fn(g_codes.rows(), g_codes.cols(), |r, c| {
            g_codes[(r, c)] as i32 + xq[(r, c)] as i32
        });
        if let Some(inj) = self.injector.as_mut() {
            self.stats.faults_injected += inj.corrupt_layernorm(&mut g);
        }
        // Line 12: the LayerNorm module.
        let out = block.layernorm().forward(&g);
        // The golden cross-check re-runs the reference datapath on the
        // same inputs — the only checker that sees softmax/LayerNorm
        // datapath faults, which carry no checksum.
        if self.check == CheckMode::AbftGolden {
            let (want, _) = block.forward(xq, xkv, mask);
            if want != out {
                self.stats.faults_detected += 1;
            }
        }
        EngineRun {
            out,
            stats: self.stats,
        }
    }

    /// Executes the FFN ResBlock (Algorithm 1 lines 14–22) on the array.
    ///
    /// # Panics
    ///
    /// Panics if the input exceeds the array's rows.
    pub fn execute_ffn(&mut self, block: &QuantFfnResBlock, x: &Mat<i8>) -> EngineRun {
        self.stats = EngineStats::default();
        let (w1, w2) = block.sublayers();
        // Lines 15-17: P_i = ReLU(X W_1i + b_1i), ReLU fused on drain.
        let hidden_acc = self.linear_acc(w1, x);
        let hidden = Mat::from_fn(hidden_acc.rows(), hidden_acc.cols(), |r, c| {
            w1.requantize_col(c, hidden_acc[(r, c)]).max(0)
        });
        // Lines 18-20: G_i = P W_2i + b_2i + X_i.
        let g_codes = self.linear(w2, &hidden);
        let mut g = Mat::from_fn(g_codes.rows(), g_codes.cols(), |r, c| {
            g_codes[(r, c)] as i32 + x[(r, c)] as i32
        });
        if let Some(inj) = self.injector.as_mut() {
            self.stats.faults_injected += inj.corrupt_layernorm(&mut g);
        }
        // Line 21.
        let out = block.layernorm().forward(&g);
        if self.check == CheckMode::AbftGolden {
            let (want, _) = block.forward(x);
            if want != out {
                self.stats.faults_detected += 1;
            }
        }
        EngineRun {
            out,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quantized::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::ffn::FfnResBlock;
    use transformer::mha::MhaResBlock;

    fn setup(s: usize) -> (QuantMhaResBlock, QuantFfnResBlock, Vec<Mat<i8>>) {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(77);
        let mha = MhaResBlock::new(&cfg, &mut rng);
        let ffn = FfnResBlock::new(&cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..4)
            .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
            .collect();
        let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
        let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
        let codes = calib.iter().map(|x| qmha.quantize_input_q(x)).collect();
        (qmha, qffn, codes)
    }

    #[test]
    fn mha_execution_is_bit_identical_to_datapath() {
        let (qmha, _, codes) = setup(8);
        let mut engine = ArrayEngine::new(8);
        for xq in &codes {
            let (want, _) = qmha.forward(xq, xq, None);
            let run = engine.execute_mha(&qmha, xq, xq, None);
            assert_eq!(run.out, want);
        }
    }

    #[test]
    fn masked_mha_execution_is_bit_identical() {
        let (qmha, _, codes) = setup(8);
        let mut engine = ArrayEngine::new(8);
        let mask = tensor::ops::causal_mask(8);
        let (want, _) = qmha.forward(&codes[0], &codes[0], Some(&mask));
        let run = engine.execute_mha(&qmha, &codes[0], &codes[0], Some(&mask));
        assert_eq!(run.out, want);
    }

    #[test]
    fn ffn_execution_is_bit_identical_to_datapath() {
        let cfg = ModelConfig::tiny_for_tests();
        let (_, qffn, _) = setup(8);
        let mut rng = StdRng::seed_from_u64(78);
        let mut engine = ArrayEngine::new(8);
        for _ in 0..3 {
            let x = tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0);
            let xq = qffn.quantize_input(&x);
            let (want, _) = qffn.forward(&xq);
            let run = engine.execute_ffn(&qffn, &xq);
            assert_eq!(run.out, want);
        }
    }

    #[test]
    fn mha_pass_count_matches_algorithm1() {
        // tiny config: h = 4 heads, d_model = 32 -> each projection has
        // ceil(32/64) = 1 panel; per head: QK^T 1 tile + PV 1; W_G 1
        // panel. passes = 3 proj + h*(1+1) + 1 = 12.
        let (qmha, _, codes) = setup(8);
        let mut engine = ArrayEngine::new(8);
        let run = engine.execute_mha(&qmha, &codes[0], &codes[0], None);
        assert_eq!(run.stats.gemm_passes, 3 + 4 * 2 + 1);
        assert!(run.stats.macs > 0);
        assert!(run.stats.isolated_cycles.get() > 0);
    }

    #[test]
    fn ffn_pass_count_matches_algorithm1() {
        // d_ff = 64 -> 1 W1 panel; d_model = 32 -> 1 W2 panel.
        let (_, qffn, codes) = setup(8);
        let mut engine = ArrayEngine::new(8);
        let run = engine.execute_ffn(&qffn, &codes[0]);
        assert_eq!(run.stats.gemm_passes, 2);
    }

    #[test]
    fn cross_attention_execution_matches() {
        let (qmha, _, codes) = setup(8);
        let mut engine = ArrayEngine::new(8);
        let xq = codes[0].submatrix(0, 0, 3, codes[0].cols()).unwrap();
        let (want, _) = qmha.forward(&xq, &codes[1], None);
        let run = engine.execute_mha(&qmha, &xq, &codes[1], None);
        assert_eq!(run.out, want);
    }

    #[test]
    fn fidelity_modes_are_bit_identical_for_mha() {
        // Analytic and register-true engines must agree on outputs AND
        // stats (pass counts, MACs, isolated cycles) across randomized
        // inputs and sequence lengths, masked and unmasked.
        for s in [3usize, 5, 8] {
            let (qmha, _, codes) = setup(s);
            let mut fast = ArrayEngine::new(8);
            let mut slow = ArrayEngine::register_true(8);
            assert_eq!(fast.fidelity(), Fidelity::Analytic);
            assert_eq!(slow.fidelity(), Fidelity::RegisterTrue);
            let mask = tensor::ops::causal_mask(s);
            for xq in &codes {
                let x = xq.submatrix(0, 0, s, xq.cols()).unwrap();
                for mask in [None, Some(&mask)] {
                    let a = fast.execute_mha(&qmha, &x, &x, mask);
                    let b = slow.execute_mha(&qmha, &x, &x, mask);
                    assert_eq!(a.out, b.out, "s={s}");
                    assert_eq!(a.stats, b.stats, "s={s}");
                }
            }
        }
    }

    #[test]
    fn fidelity_modes_are_bit_identical_for_ffn() {
        for s in [2usize, 7, 8] {
            let (_, qffn, codes) = setup(s);
            let mut fast = ArrayEngine::with_fidelity(8, Fidelity::Analytic);
            let mut slow = ArrayEngine::with_fidelity(8, Fidelity::RegisterTrue);
            for xq in &codes {
                let x = xq.submatrix(0, 0, s, xq.cols()).unwrap();
                let a = fast.execute_ffn(&qffn, &x);
                let b = slow.execute_ffn(&qffn, &x);
                assert_eq!(a.out, b.out, "s={s}");
                assert_eq!(a.stats, b.stats, "s={s}");
            }
        }
    }

    #[test]
    fn stats_merge_and_sum_aggregate_batches() {
        let (qmha, qffn, codes) = setup(8);
        let mut engine = ArrayEngine::new(8);
        let a = engine.execute_mha(&qmha, &codes[0], &codes[0], None).stats;
        let b = engine.execute_ffn(&qffn, &codes[1]).stats;
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.gemm_passes, a.gemm_passes + b.gemm_passes);
        assert_eq!(merged.macs, a.macs + b.macs);
        assert_eq!(
            merged.isolated_cycles,
            a.isolated_cycles + b.isolated_cycles
        );
        let summed: EngineStats = [a, b].into_iter().sum();
        assert_eq!(summed, merged);
        let util = merged.array_utilization(8 * 64);
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
        assert_eq!(EngineStats::default().array_utilization(64), 0.0);
    }

    #[test]
    fn utilization_is_correct_for_rectangular_and_mixed_geometries() {
        let (qmha, _, codes) = setup(8);
        // A non-square 8×64 grid: capacity is tracked per pass, so the
        // pe_count argument is ignored and the figure is exact.
        let mut small = ArrayEngine::new(8);
        let a = small.execute_mha(&qmha, &codes[0], &codes[0], None).stats;
        assert_eq!(
            a.pe_cycles,
            a.isolated_cycles.get() * (8 * 64),
            "every pass ran on the 8×64 grid"
        );
        let exact = a.macs as f64 / a.pe_cycles as f64;
        assert!((a.array_utilization(8 * 64) - exact).abs() < 1e-12);
        assert!((a.array_utilization(12_345) - exact).abs() < 1e-12);

        // Stats merged across two different grid heights: the correct
        // utilization is the capacity-weighted one; dividing by either
        // single grid's pe_count would over- or under-count.
        let mut tall = ArrayEngine::new(16);
        let xs = codes[1].submatrix(0, 0, 8, codes[1].cols()).unwrap();
        let b = tall.execute_mha(&qmha, &xs, &xs, None).stats;
        assert_eq!(b.pe_cycles, b.isolated_cycles.get() * (16 * 64));
        let mut merged = a;
        merged.merge(&b);
        let want = (a.macs + b.macs) as f64 / (a.pe_cycles + b.pe_cycles) as f64;
        let got = merged.array_utilization(0);
        assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        assert!(got > 0.0 && got <= 1.0);
        let naive_small = merged.macs as f64 / (merged.isolated_cycles.get() as f64 * (8.0 * 64.0));
        assert!(
            (got - naive_small).abs() > 1e-9,
            "single-geometry formula cannot express the mixed-grid figure"
        );

        // Hand-modeled stats (no recorded capacity) keep the historical
        // cycles × pe_count fallback.
        let hand = EngineStats {
            macs: 64,
            isolated_cycles: Cycle(2),
            ..EngineStats::default()
        };
        assert!((hand.array_utilization(64) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_plan_and_checker_change_no_output_bits() {
        // Hooks armed (empty plan) + ABFT checker on must be
        // bit-identical to the bare engine, with zero detections.
        let (qmha, qffn, codes) = setup(8);
        let mut plain = ArrayEngine::new(8);
        let mut checked = ArrayEngine::new(8)
            .with_fault_plan(faults::FaultPlan::empty())
            .with_check_mode(CheckMode::AbftGolden);
        for xq in &codes {
            let a = plain.execute_mha(&qmha, xq, xq, None);
            let b = checked.execute_mha(&qmha, xq, xq, None);
            assert_eq!(a.out, b.out);
            assert_eq!(a.stats.gemm_passes, b.stats.gemm_passes);
            assert_eq!(a.stats.macs, b.stats.macs);
            assert_eq!(a.stats.isolated_cycles, b.stats.isolated_cycles);
            assert_eq!(b.stats.abft_checked, b.stats.gemm_passes);
            assert_eq!(b.stats.faults_injected, 0);
            assert_eq!(b.stats.faults_detected, 0);
            assert_eq!(b.stats.faults_escaped, 0);
            let f = plain.execute_ffn(&qffn, xq);
            let g = checked.execute_ffn(&qffn, xq);
            assert_eq!(f.out, g.out);
            assert_eq!(g.stats.faults_detected, 0);
        }
    }

    #[test]
    fn weight_sram_flip_is_detected_by_abft() {
        use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite};
        let (qmha, _, codes) = setup(8);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::WeightSram {
                pass: 0,
                row: 3,
                col: 5,
            },
            kind: FaultKind::BitFlip { bit: 6 },
        }]);
        let mut pristine = ArrayEngine::new(8);
        let want = pristine.execute_mha(&qmha, &codes[0], &codes[0], None);
        let mut faulty = ArrayEngine::new(8)
            .with_fault_plan(plan)
            .with_check_mode(CheckMode::Abft);
        let run = faulty.execute_mha(&qmha, &codes[0], &codes[0], None);
        assert_eq!(run.stats.faults_injected, 1);
        assert!(run.stats.faults_detected >= 1, "ABFT must flag the tile");
        assert_eq!(run.stats.faults_escaped, 0);
        assert_ne!(run.out, want.out, "the flip corrupts the block output");
        // The next run re-uses the engine: pass indices have advanced
        // past the plan, so the fault never refires (one-shot SEU).
        let clean = faulty.execute_mha(&qmha, &codes[0], &codes[0], None);
        assert_eq!(clean.out, want.out);
        assert_eq!(clean.stats.faults_detected, 0);
    }

    #[test]
    fn accumulator_flip_is_detected_by_abft() {
        use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite};
        let (_, qffn, codes) = setup(8);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::Accumulator {
                pass: 1,
                row: 2,
                col: 7,
            },
            kind: FaultKind::BitFlip { bit: 20 },
        }]);
        let mut pristine = ArrayEngine::new(8);
        let want = pristine.execute_ffn(&qffn, &codes[0]);
        let mut faulty = ArrayEngine::new(8)
            .with_fault_plan(plan)
            .with_check_mode(CheckMode::Abft);
        let run = faulty.execute_ffn(&qffn, &codes[0]);
        assert_eq!(run.stats.faults_injected, 1);
        assert!(run.stats.faults_detected >= 1);
        assert_ne!(run.out, want.out);
    }

    #[test]
    fn softmax_fault_escapes_abft_but_golden_model_catches_it() {
        use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite};
        let (qmha, _, codes) = setup(8);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::SoftmaxValue {
                call: 0,
                row: 1,
                col: 2,
            },
            kind: FaultKind::BitFlip { bit: 6 },
        }]);
        let mut pristine = ArrayEngine::new(8);
        let want = pristine.execute_mha(&qmha, &codes[0], &codes[0], None);
        // ABFT alone: the corrupted probabilities *are* the stream the
        // checksums latch from, so the context pass verifies clean.
        let mut abft_only = ArrayEngine::new(8)
            .with_fault_plan(plan.clone())
            .with_check_mode(CheckMode::Abft);
        let run = abft_only.execute_mha(&qmha, &codes[0], &codes[0], None);
        assert_eq!(run.stats.faults_injected, 1);
        assert_eq!(
            run.stats.faults_detected, 0,
            "softmax faults are ABFT-blind"
        );
        assert_ne!(run.out, want.out);
        // Golden cross-check compares the block output to the reference
        // datapath and sees it.
        let mut golden = ArrayEngine::new(8)
            .with_fault_plan(plan)
            .with_check_mode(CheckMode::AbftGolden);
        let run = golden.execute_mha(&qmha, &codes[0], &codes[0], None);
        assert!(run.stats.faults_detected >= 1);
    }

    #[test]
    fn layernorm_fault_is_caught_by_golden_model() {
        use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite};
        let (_, qffn, codes) = setup(8);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::LayerNormValue {
                call: 0,
                row: 0,
                col: 3,
            },
            kind: FaultKind::BitFlip { bit: 13 },
        }]);
        let mut engine = ArrayEngine::new(8)
            .with_fault_plan(plan)
            .with_check_mode(CheckMode::AbftGolden);
        let run = engine.execute_ffn(&qffn, &codes[0]);
        assert_eq!(run.stats.faults_injected, 1);
        assert!(run.stats.faults_detected >= 1);
    }

    #[test]
    fn fidelity_modes_agree_under_faults() {
        // Pass numbering is identical in both fidelities, so the same
        // plan corrupts the same bits and both engines stay bit-equal.
        use faults::{FaultPlan, FaultSpace, SiteClass};
        let (qmha, _, codes) = setup(8);
        let space = FaultSpace {
            index_lo: 0,
            index_hi: 12,
            rows: 8,
            cols: 8,
            classes: vec![
                SiteClass::WeightSram,
                SiteClass::Accumulator,
                SiteClass::SoftmaxValue,
            ],
        };
        let plan = FaultPlan::seeded(0xBADC0DE, 4, &space);
        let mut fast = ArrayEngine::with_fidelity(8, Fidelity::Analytic)
            .with_fault_plan(plan.clone())
            .with_check_mode(CheckMode::Abft);
        let mut slow = ArrayEngine::with_fidelity(8, Fidelity::RegisterTrue)
            .with_fault_plan(plan)
            .with_check_mode(CheckMode::Abft);
        let a = fast.execute_mha(&qmha, &codes[0], &codes[0], None);
        let b = slow.execute_mha(&qmha, &codes[0], &codes[0], None);
        assert_eq!(a.out, b.out);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn stats_reset_between_runs() {
        let (qmha, _, codes) = setup(8);
        let mut engine = ArrayEngine::new(8);
        let a = engine.execute_mha(&qmha, &codes[0], &codes[0], None);
        let b = engine.execute_mha(&qmha, &codes[1], &codes[1], None);
        assert_eq!(a.stats.gemm_passes, b.stats.gemm_passes);
        assert_eq!(a.stats.macs, b.stats.macs);
    }
}
