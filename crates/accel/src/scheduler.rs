//! Algorithm 1 — the static computation flow of the accelerator — as a
//! dependency-driven schedule over the SA, Softmax and LayerNorm units.
//!
//! Every GEMM is a `k`-cycle stream through the `s × 64` array followed
//! by a 64-cycle column-serial drain; the policy decides whether the
//! drain blocks the array ([`crate::config::SchedPolicy::overlap_drain`])
//! and whether the softmax hides behind the `V·W_Vi` projection
//! ([`crate::config::SchedPolicy::overlap_softmax`], Algorithm 1 line 6).

use hwsim::cycles::Cycle;
use hwsim::timeline::{EventId, Timeline, UnitId};
use serde::Serialize;

use crate::config::AccelConfig;
use crate::layernorm_module;
use crate::partition::{qk_plan, PANEL_COLS};
use crate::softmax_module;

/// Outcome of scheduling one ResBlock.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduleReport {
    /// End-to-end latency in cycles.
    pub cycles: Cycle,
    /// End-to-end latency in microseconds at the configured clock.
    pub latency_us: f64,
    /// Cycles the systolic array spent streaming or draining.
    pub sa_busy: Cycle,
    /// SA busy fraction over the makespan ("the high hardware
    /// utilization of the SA" the computation flow is designed for).
    pub sa_utilization: f64,
    /// The full event timeline (render with
    /// [`hwsim::timeline::Timeline::gantt`]).
    pub timeline: Timeline,
}

struct Units {
    sa: UnitId,
    drain: UnitId,
    softmax: UnitId,
    layernorm: UnitId,
}

fn units(tl: &mut Timeline) -> Units {
    Units {
        sa: tl.add_unit("systolic_array"),
        drain: tl.add_unit("output_drain"),
        softmax: tl.add_unit("softmax"),
        layernorm: tl.add_unit("layernorm"),
    }
}

/// Schedules one GEMM pass; returns the event whose end marks the
/// *drained* result (what downstream consumers must wait for).
fn gemm(
    tl: &mut Timeline,
    u: &Units,
    label: &str,
    k: usize,
    overlap_drain: bool,
    deps: &[EventId],
) -> EventId {
    let drain_cycles = Cycle(PANEL_COLS as u64);
    if overlap_drain {
        let stream = tl.schedule(u.sa, format!("{label}:stream"), Cycle(k as u64), deps);
        tl.schedule(u.drain, format!("{label}:drain"), drain_cycles, &[stream])
    } else {
        tl.schedule(
            u.sa,
            label.to_string(),
            Cycle(k as u64) + drain_cycles,
            deps,
        )
    }
}

fn finish(cfg: &AccelConfig, tl: Timeline, sa: UnitId, _drain: UnitId) -> ScheduleReport {
    let cycles = tl.makespan();
    ScheduleReport {
        cycles,
        latency_us: cfg.clock.cycles_to_us(cycles),
        sa_busy: tl.busy(sa),
        sa_utilization: tl.busy(sa).get() as f64 / tl.makespan().get().max(1) as f64,
        timeline: tl,
    }
}

/// Schedules the MHA ResBlock (Algorithm 1 lines 1–13) for a self- or
/// cross-attention instance with `s_q` query rows and `s_kv` key/value
/// rows.
///
/// # Panics
///
/// Panics if either length is zero or exceeds `cfg.s`.
pub fn schedule_mha_cross(cfg: &AccelConfig, s_q: usize, s_kv: usize) -> ScheduleReport {
    cfg.validate();
    assert!(
        s_q > 0 && s_q <= cfg.s,
        "s_q {s_q} out of range (array has {} rows)",
        cfg.s
    );
    assert!(
        s_kv > 0 && s_kv <= cfg.s.max(PANEL_COLS),
        "s_kv {s_kv} out of range"
    );
    let d_model = cfg.model.d_model;
    let h = cfg.model.h;
    let d_k = cfg.model.d_k();
    let pol = cfg.sched;

    let mut tl = Timeline::new();
    let u = units(&mut tl);
    let mut pv_drains: Vec<EventId> = Vec::with_capacity(h);

    for i in 0..h {
        // Lines 3-4: Temp1 = Q·W_Qi + Bias, Temp2 = K·W_Ki + Bias.
        let qw = gemm(
            &mut tl,
            &u,
            &format!("h{i}:QWq"),
            d_model,
            pol.overlap_drain,
            &[],
        );
        let kw = gemm(
            &mut tl,
            &u,
            &format!("h{i}:KWk"),
            d_model,
            pol.overlap_drain,
            &[],
        );
        // Line 5: Softmax_Input = Temp1 × Temp2^T (tiled per Section III).
        let plan = qk_plan(s_kv);
        let mut last_qk = qw; // placeholder, overwritten in loop
        for t in 0..plan.tiles {
            last_qk = gemm(
                &mut tl,
                &u,
                &format!("h{i}:QK^T.{t}"),
                d_k,
                pol.overlap_drain,
                &[qw, kw],
            );
        }
        // Softmax over the s_kv score columns.
        let smx = tl.schedule(
            u.softmax,
            format!("h{i}:softmax"),
            softmax_module::latency_after_last_input(s_kv),
            &[last_qk],
        );
        // Line 6: Temp2 = V·W_Vi + Bias — in parallel with the softmax
        // when the policy allows (the paper's key overlap).
        let vw_deps: Vec<EventId> = if pol.overlap_softmax {
            vec![]
        } else {
            vec![smx]
        };
        let vw = gemm(
            &mut tl,
            &u,
            &format!("h{i}:VWv"),
            d_model,
            pol.overlap_drain,
            &vw_deps,
        );
        // Line 7: P_i = softmax_output × Temp2 (k = s_kv reduction).
        let pv = gemm(
            &mut tl,
            &u,
            &format!("h{i}:PV"),
            s_kv,
            pol.overlap_drain,
            &[smx, vw],
        );
        pv_drains.push(pv);
    }

    // Lines 9-11: G_i = P·W_Gi + Bias_Gi + Q_i — needs the complete P.
    let mut last_g = *pv_drains.last().expect("h >= 1");
    for i in 0..h {
        last_g = gemm(
            &mut tl,
            &u,
            &format!("G{i}"),
            d_model,
            pol.overlap_drain,
            &pv_drains,
        );
    }

    // Line 12: LayerNorm — accumulators ran inline with the G drains
    // (per the policy); the tail starts at the last G column.
    tl.schedule(
        u.layernorm,
        "layernorm",
        layernorm_module::total_tail(pol.layernorm, d_model),
        &[last_g],
    );

    finish(cfg, tl, u.sa, u.drain)
}

/// Schedules the self-attention MHA ResBlock at the configured maximum
/// sequence length (the paper's Table-III setting).
///
/// # Example
///
/// ```
/// use accel::{scheduler::schedule_mha, AccelConfig};
/// let rep = schedule_mha(&AccelConfig::paper_default());
/// assert_eq!(rep.cycles.get(), 20_998); // paper: 21,344
/// ```
pub fn schedule_mha(cfg: &AccelConfig) -> ScheduleReport {
    schedule_mha_cross(cfg, cfg.s, cfg.s)
}

/// Schedules the FFN ResBlock (Algorithm 1 lines 14–22) for `s` rows.
///
/// # Panics
///
/// Panics if `s == 0` or `s > cfg.s`.
pub fn schedule_ffn_len(cfg: &AccelConfig, s: usize) -> ScheduleReport {
    cfg.validate();
    assert!(
        s > 0 && s <= cfg.s,
        "s {s} out of range (array has {} rows)",
        cfg.s
    );
    let d_model = cfg.model.d_model;
    let d_ff = cfg.model.d_ff;
    let pol = cfg.sched;
    let panels_w1 = d_ff / PANEL_COLS; // 4h in Table-I configs
    let panels_w2 = d_model / PANEL_COLS; // h

    let mut tl = Timeline::new();
    let u = units(&mut tl);

    // Lines 15-17: P_i = ReLU(X·W_1i + b_1i) — ReLU fuses into the bias
    // adders on the drain path (Fig. 5), costing no extra cycles.
    let mut p_drains = Vec::with_capacity(panels_w1);
    for i in 0..panels_w1 {
        p_drains.push(gemm(
            &mut tl,
            &u,
            &format!("P{i}"),
            d_model,
            pol.overlap_drain,
            &[],
        ));
    }
    // Lines 18-20: G_i = P·W_2i + b_2i + X_i — k spans the whole d_ff,
    // so every P panel must be in the data memory first.
    let mut last_g = *p_drains.last().expect("d_ff >= 64");
    for i in 0..panels_w2 {
        last_g = gemm(
            &mut tl,
            &u,
            &format!("G{i}"),
            d_ff,
            pol.overlap_drain,
            &p_drains,
        );
    }
    // Line 21: LayerNorm.
    tl.schedule(
        u.layernorm,
        "layernorm",
        layernorm_module::total_tail(pol.layernorm, d_model),
        &[last_g],
    );

    finish(cfg, tl, u.sa, u.drain)
}

/// Schedules a **fused encoder layer** — MHA ResBlock immediately
/// followed by the FFN ResBlock on one timeline.
///
/// Extension beyond the paper: the FFN's first `X·W_1i` GEMM consumes
/// `X` (the MHA LayerNorm output) one column per cycle, exactly the
/// rate the LayerNorm module emits it — so with a bypass path the FFN
/// can start streaming as soon as the LayerNorm's first output column
/// appears, hiding almost the entire LayerNorm tail (~`d_model`
/// cycles/layer). `fuse = false` reproduces the paper's sequential
/// blocks.
pub fn schedule_encoder_layer(cfg: &AccelConfig, fuse: bool) -> ScheduleReport {
    cfg.validate();
    let d_model = cfg.model.d_model;
    let d_ff = cfg.model.d_ff;
    let h = cfg.model.h;
    let d_k = cfg.model.d_k();
    let s = cfg.s;
    let pol = cfg.sched;
    let panels_w1 = d_ff / PANEL_COLS;
    let panels_w2 = d_model / PANEL_COLS;

    let mut tl = Timeline::new();
    let u = units(&mut tl);

    // ---- MHA ResBlock (as in schedule_mha_cross, self-attention) ----
    let mut pv_drains: Vec<EventId> = Vec::with_capacity(h);
    for i in 0..h {
        let qw = gemm(
            &mut tl,
            &u,
            &format!("h{i}:QWq"),
            d_model,
            pol.overlap_drain,
            &[],
        );
        let kw = gemm(
            &mut tl,
            &u,
            &format!("h{i}:KWk"),
            d_model,
            pol.overlap_drain,
            &[],
        );
        let plan = qk_plan(s);
        let mut last_qk = qw;
        for t in 0..plan.tiles {
            last_qk = gemm(
                &mut tl,
                &u,
                &format!("h{i}:QK^T.{t}"),
                d_k,
                pol.overlap_drain,
                &[qw, kw],
            );
        }
        let smx = tl.schedule(
            u.softmax,
            format!("h{i}:softmax"),
            softmax_module::latency_after_last_input(s),
            &[last_qk],
        );
        let vw_deps: Vec<EventId> = if pol.overlap_softmax {
            vec![]
        } else {
            vec![smx]
        };
        let vw = gemm(
            &mut tl,
            &u,
            &format!("h{i}:VWv"),
            d_model,
            pol.overlap_drain,
            &vw_deps,
        );
        let pv = gemm(
            &mut tl,
            &u,
            &format!("h{i}:PV"),
            s,
            pol.overlap_drain,
            &[smx, vw],
        );
        pv_drains.push(pv);
    }
    let mut last_g = *pv_drains.last().expect("h >= 1");
    for i in 0..h {
        last_g = gemm(
            &mut tl,
            &u,
            &format!("G{i}"),
            d_model,
            pol.overlap_drain,
            &pv_drains,
        );
    }
    let mha_ln = tl.schedule(
        u.layernorm,
        "mha:layernorm",
        layernorm_module::total_tail(pol.layernorm, d_model),
        &[last_g],
    );

    // ---- FFN ResBlock ----
    // fused: the first X·W_1 stream chases the LayerNorm output columns
    // (starts one cycle after the first column emerges); sequential:
    // waits for the full LayerNorm output.
    let ln_output_start = tl
        .end_of(mha_ln)
        .saturating_sub(layernorm_module::output_cycles(d_model));
    let mut p_drains = Vec::with_capacity(panels_w1);
    for i in 0..panels_w1 {
        let ev = if fuse && i == 0 {
            let drain_cycles = Cycle(PANEL_COLS as u64);
            let dur = Cycle(d_model as u64)
                + if pol.overlap_drain {
                    Cycle::ZERO
                } else {
                    drain_cycles
                };
            let stream = tl.schedule_at(u.sa, "P0:chasing", ln_output_start + Cycle(1), dur, &[]);
            if pol.overlap_drain {
                tl.schedule(u.drain, "P0:drain", drain_cycles, &[stream])
            } else {
                stream
            }
        } else if fuse {
            gemm(
                &mut tl,
                &u,
                &format!("P{i}"),
                d_model,
                pol.overlap_drain,
                &[],
            )
        } else {
            gemm(
                &mut tl,
                &u,
                &format!("P{i}"),
                d_model,
                pol.overlap_drain,
                &[mha_ln],
            )
        };
        p_drains.push(ev);
    }
    let mut last_ffn_g = *p_drains.last().expect("d_ff >= 64");
    for i in 0..panels_w2 {
        last_ffn_g = gemm(
            &mut tl,
            &u,
            &format!("F{i}"),
            d_ff,
            pol.overlap_drain,
            &p_drains,
        );
    }
    tl.schedule(
        u.layernorm,
        "ffn:layernorm",
        layernorm_module::total_tail(pol.layernorm, d_model),
        &[last_ffn_g],
    );

    finish(cfg, tl, u.sa, u.drain)
}

/// Schedules the FFN ResBlock at the configured maximum sequence length.
pub fn schedule_ffn(cfg: &AccelConfig) -> ScheduleReport {
    schedule_ffn_len(cfg, cfg.s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LayerNormMode, SchedPolicy};

    fn paper() -> AccelConfig {
        AccelConfig::paper_default()
    }

    #[test]
    fn mha_cycle_count_near_paper() {
        let rep = schedule_mha(&paper());
        // Published: 21,344. Our model: per-head 1,984 ·8 + G 4,608 + LN 518.
        assert_eq!(rep.cycles, Cycle(20_998));
        let err = (rep.cycles.get() as f64 - 21_344.0).abs() / 21_344.0;
        assert!(err < 0.02, "MHA cycles {} vs paper 21,344", rep.cycles);
    }

    #[test]
    fn ffn_cycle_count_same_order_as_paper() {
        let rep = schedule_ffn(&paper());
        assert_eq!(rep.cycles, Cycle(35_846));
        // Published: 42,099 — our model omits some memory-system stalls,
        // staying within 15%.
        let err = (rep.cycles.get() as f64 - 42_099.0).abs() / 42_099.0;
        assert!(err < 0.16, "FFN cycles {} vs paper 42,099", rep.cycles);
    }

    #[test]
    fn ffn_to_mha_ratio_matches_paper_shape() {
        let mha = schedule_mha(&paper());
        let ffn = schedule_ffn(&paper());
        let ratio = ffn.cycles.get() as f64 / mha.cycles.get() as f64;
        // paper: 42,099 / 21,344 = 1.97; ours ~1.71 — FFN clearly ~2x.
        assert!((1.5..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn softmax_overlap_saves_cycles() {
        let mut cfg = paper();
        let with = schedule_mha(&cfg);
        cfg.sched.overlap_softmax = false;
        let without = schedule_mha(&cfg);
        assert!(without.cycles > with.cycles);
        // 8 heads × softmax latency (132) at most
        let saved = without.cycles.get() - with.cycles.get();
        assert!(saved >= 8 * 100, "saved only {saved}");
    }

    #[test]
    fn drain_overlap_saves_cycles() {
        let mut cfg = paper();
        let single = schedule_ffn(&cfg);
        cfg.sched.overlap_drain = true;
        let double = schedule_ffn(&cfg);
        assert!(double.cycles < single.cycles);
        // 40 GEMMs × 64 drain cycles bound the saving
        assert!(single.cycles.get() - double.cycles.get() <= 40 * 64 + 64);
    }

    #[test]
    fn layernorm_modes_ablate_as_fig7() {
        let mut cfg = paper();
        cfg.sched.layernorm = LayerNormMode::Straightforward;
        let sf = schedule_mha(&cfg);
        cfg.sched.layernorm = LayerNormMode::InlineMean;
        let s1 = schedule_mha(&cfg);
        cfg.sched.layernorm = LayerNormMode::InlineMeanAndVariance;
        let s12 = schedule_mha(&cfg);
        assert_eq!(sf.cycles.get() - s1.cycles.get(), 512);
        assert_eq!(s1.cycles.get() - s12.cycles.get(), 512);
    }

    #[test]
    fn naive_policy_is_strictly_worse() {
        let mut cfg = paper();
        let tuned = schedule_mha(&cfg);
        cfg.sched = SchedPolicy::naive();
        let naive = schedule_mha(&cfg);
        assert!(naive.cycles > tuned.cycles);
        assert!(naive.sa_utilization < tuned.sa_utilization + 1e-9);
    }

    #[test]
    fn sa_utilization_is_high_under_paper_policy() {
        let rep = schedule_mha(&paper());
        assert!(
            rep.sa_utilization > 0.95,
            "SA utilization {}",
            rep.sa_utilization
        );
        let rep = schedule_ffn(&paper());
        assert!(rep.sa_utilization > 0.95);
    }

    #[test]
    fn latency_us_uses_200mhz() {
        let rep = schedule_mha(&paper());
        assert!((rep.latency_us - rep.cycles.get() as f64 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn long_sequences_tile_qk() {
        let mut cfg = paper();
        cfg.s = 128;
        let rep128 = schedule_mha(&cfg);
        cfg.s = 64;
        let rep64 = schedule_mha(&cfg);
        assert!(rep128.cycles > rep64.cycles);
        // 128-length QK^T needs 2 tiles per head and softmax over 128
        // columns; both grow the makespan.
        let qk_events = rep128
            .timeline
            .events()
            .iter()
            .filter(|e| e.label.contains("QK^T"))
            .count();
        assert_eq!(qk_events, 16);
    }

    #[test]
    fn cross_attention_lengths_respected() {
        let cfg = paper();
        let rep = schedule_mha_cross(&cfg, 16, 64);
        assert!(rep.cycles < schedule_mha(&cfg).cycles + Cycle(1));
    }

    #[test]
    fn short_sequence_ffn_is_cheaper_only_via_drain() {
        // FFN stream costs don't depend on s (weights stream k = d_model
        // regardless); the schedule is s-independent in this model.
        let cfg = paper();
        let a = schedule_ffn_len(&cfg, 16);
        let b = schedule_ffn_len(&cfg, 64);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_sequence_rejected() {
        let cfg = paper();
        let _ = schedule_mha_cross(&cfg, 65, 64);
    }

    #[test]
    fn fused_layer_hides_the_mha_layernorm_tail() {
        let cfg = paper();
        let sequential = schedule_encoder_layer(&cfg, false);
        let fused = schedule_encoder_layer(&cfg, true);
        assert!(fused.cycles < sequential.cycles);
        let saved = sequential.cycles.get() - fused.cycles.get();
        // saves most of the MHA LayerNorm tail (518 cycles at d=512)
        assert!((400..=520).contains(&saved), "saved {saved}");
    }

    #[test]
    fn sequential_layer_equals_sum_of_blocks() {
        let cfg = paper();
        let seq = schedule_encoder_layer(&cfg, false);
        let sum = schedule_mha(&cfg).cycles + schedule_ffn(&cfg).cycles;
        assert_eq!(seq.cycles, sum);
    }

    #[test]
    fn fused_layer_works_under_all_policies() {
        for pol in [
            SchedPolicy::naive(),
            SchedPolicy::paper(),
            SchedPolicy::aggressive(),
        ] {
            let mut cfg = paper();
            cfg.sched = pol;
            let fused = schedule_encoder_layer(&cfg, true);
            let seq = schedule_encoder_layer(&cfg, false);
            assert!(fused.cycles <= seq.cycles, "{pol:?}");
        }
    }

    #[test]
    fn critical_path_ends_in_layernorm_and_spans_the_makespan() {
        let rep = schedule_mha(&paper());
        let path = rep.timeline.critical_path();
        assert!(!path.is_empty());
        let last = rep.timeline.event(*path.last().unwrap());
        assert_eq!(last.label, "layernorm");
        assert_eq!(last.end, rep.cycles);
        let first = rep.timeline.event(path[0]);
        assert_eq!(first.start, Cycle::ZERO);
        // contiguity: each hop starts exactly where the previous ended
        for pair in path.windows(2) {
            assert_eq!(
                rep.timeline.event(pair[0]).end,
                rep.timeline.event(pair[1]).start
            );
        }
    }

    #[test]
    fn gantt_contains_all_units() {
        let rep = schedule_mha(&paper());
        let g = rep.timeline.gantt(100);
        for name in ["systolic_array", "softmax", "layernorm"] {
            assert!(g.contains(name), "missing {name} in gantt");
        }
    }
}
