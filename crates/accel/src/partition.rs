//! The Fig. 4 matrix-partitioning scheme.
//!
//! Table I's structural pattern (`d_model = 64h`, `d_ff = 256h`) means
//! the three large weight matrices split exactly into 64-column panels:
//!
//! * `W_G  (d_model × d_model)` → `h` panels `W_G1..W_Gh`;
//! * `W_1  (d_model × d_ff)`    → `4h` panels `W_11..W_1,4h`;
//! * `W_2  (d_ff × d_model)`    → `h` panels `W_21..W_2h`;
//!
//! so every GEMM in both ResBlocks fits the one `s × 64` systolic array.
//! The only exception is `Q_i K_i^T`, whose output has `s` columns:
//! zero-pad `K_i` when `s < 64`, tile the output into `ceil(s/64)`
//! passes when `s > 64` (Section III).

use tensor::{gemm, Mat, ShapeError};

/// Width of every weight panel (= systolic-array columns = `d_k`).
pub const PANEL_COLS: usize = 64;

/// Splits a weight matrix into 64-column panels (Fig. 4).
///
/// # Example
///
/// ```
/// use accel::partition::weight_panels;
/// // Transformer-base W_1 (512 x 2048) -> 4h = 32 panels
/// let w1 = tensor::Mat::<i8>::zeros(512, 2048);
/// assert_eq!(weight_panels(&w1).len(), 32);
/// ```
///
/// # Panics
///
/// Panics if the width is not a multiple of 64 — the Table-I pattern the
/// partitioning method relies on.
pub fn weight_panels<T: Copy + Default>(w: &Mat<T>) -> Vec<Mat<T>> {
    assert_eq!(
        w.cols() % PANEL_COLS,
        0,
        "weight width {} is not a multiple of {PANEL_COLS}; \
         the Fig. 4 partitioning requires the d_model = 64h pattern",
        w.cols()
    );
    w.col_panels(PANEL_COLS)
}

/// Expected panel counts for the three large matrices of a model with
/// `h` heads: `(W_G, W_1, W_2) = (h, 4h, h)`.
pub fn expected_panel_counts(h: usize) -> (usize, usize, usize) {
    (h, 4 * h, h)
}

/// Computes `x · w` panel-by-panel with `i32` accumulation, exactly as
/// the systolic array sweeps Fig. 4's panels, and reassembles the
/// result. Bit-identical to the monolithic GEMM (verified by property
/// tests).
///
/// # Errors
///
/// Returns [`ShapeError`] if `x.cols() != w.rows()`.
///
/// # Panics
///
/// Panics if `w.cols()` is not a multiple of 64.
pub fn partitioned_matmul_i8(x: &Mat<i8>, w: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    if x.cols() != w.rows() {
        return Err(ShapeError::new(
            "partitioned_matmul_i8",
            x.shape(),
            w.shape(),
        ));
    }
    let panels = weight_panels(w);
    let mut outs = Vec::with_capacity(panels.len());
    for p in &panels {
        outs.push(gemm::matmul_i8(x, p)?);
    }
    Mat::hconcat(&outs)
}

/// The execution plan for `Q_i K_i^T` on an `s × 64` array
/// (Section III's padding/tiling rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QkPlan {
    /// Rows of `K_i` after zero-padding (only when `s < 64`).
    pub padded_k_rows: usize,
    /// Number of array passes (output-column tiles of width ≤ 64).
    pub tiles: usize,
}

/// Plans the `Q_i K_i^T` operation for sequence length `s`.
///
/// # Panics
///
/// Panics if `s == 0`.
///
/// # Example
///
/// ```
/// use accel::partition::qk_plan;
/// assert_eq!(qk_plan(16).padded_k_rows, 64); // zero-pad K_i
/// assert_eq!(qk_plan(128).tiles, 2);         // two output tiles
/// ```
pub fn qk_plan(s: usize) -> QkPlan {
    assert!(s > 0, "sequence length must be positive");
    if s <= PANEL_COLS {
        QkPlan {
            padded_k_rows: PANEL_COLS,
            tiles: 1,
        }
    } else {
        QkPlan {
            padded_k_rows: s,
            tiles: s.div_ceil(PANEL_COLS),
        }
    }
}

/// Executes `q · kᵀ` according to [`qk_plan`]: pads `k` with zero rows
/// when `s < 64`, tiles the output columns when `s > 64`, and returns
/// the exact `s × s` score accumulators (padding columns discarded).
///
/// # Errors
///
/// Returns [`ShapeError`] if `q.cols() != k.cols()`.
pub fn qk_matmul_i8(q: &Mat<i8>, k: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    if q.cols() != k.cols() {
        return Err(ShapeError::new("qk_matmul_i8", q.shape(), k.shape()));
    }
    let s = k.rows();
    let plan = qk_plan(s);
    // Zero-pad K's rows to the array width (extra output columns are
    // zero products and get cropped).
    let k_padded = if plan.padded_k_rows > s {
        k.padded(plan.padded_k_rows, k.cols())
    } else {
        k.clone()
    };
    let mut tiles_out = Vec::with_capacity(plan.tiles);
    for t in 0..plan.tiles {
        let r0 = t * PANEL_COLS;
        let rows = PANEL_COLS.min(k_padded.rows() - r0);
        let k_tile = k_padded.submatrix(r0, 0, rows, k_padded.cols())?;
        tiles_out.push(gemm::matmul_i8_nt(q, &k_tile)?);
    }
    let full = Mat::hconcat(&tiles_out)?;
    full.submatrix(0, 0, q.rows(), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;

    #[test]
    fn panel_counts_match_fig4_for_table1() {
        for cfg in ModelConfig::table1() {
            let (wg, w1, w2) = expected_panel_counts(cfg.h);
            let wg_m = Mat::<i8>::zeros(cfg.d_model, cfg.d_model);
            let w1_m = Mat::<i8>::zeros(cfg.d_model, cfg.d_ff);
            let w2_m = Mat::<i8>::zeros(cfg.d_ff, cfg.d_model);
            assert_eq!(weight_panels(&wg_m).len(), wg, "{} W_G", cfg.name);
            assert_eq!(weight_panels(&w1_m).len(), w1, "{} W_1", cfg.name);
            assert_eq!(weight_panels(&w2_m).len(), w2, "{} W_2", cfg.name);
        }
    }

    #[test]
    fn partitioned_gemm_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = tensor::init::uniform_i8(&mut rng, 16, 128);
        let w = tensor::init::uniform_i8(&mut rng, 128, 256);
        let full = gemm::matmul_i8(&x, &w).unwrap();
        let parts = partitioned_matmul_i8(&x, &w).unwrap();
        assert_eq!(full, parts);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn non_64h_width_rejected() {
        let w = Mat::<i8>::zeros(8, 100);
        let _ = weight_panels(&w);
    }

    #[test]
    fn qk_plan_pads_small_sequences() {
        assert_eq!(
            qk_plan(16),
            QkPlan {
                padded_k_rows: 64,
                tiles: 1
            }
        );
        assert_eq!(
            qk_plan(64),
            QkPlan {
                padded_k_rows: 64,
                tiles: 1
            }
        );
    }

    #[test]
    fn qk_plan_tiles_long_sequences() {
        assert_eq!(
            qk_plan(65),
            QkPlan {
                padded_k_rows: 65,
                tiles: 2
            }
        );
        assert_eq!(
            qk_plan(128),
            QkPlan {
                padded_k_rows: 128,
                tiles: 2
            }
        );
        assert_eq!(
            qk_plan(200),
            QkPlan {
                padded_k_rows: 200,
                tiles: 4
            }
        );
    }

    #[test]
    fn qk_matmul_matches_direct_for_all_regimes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &s in &[1usize, 7, 63, 64, 65, 100, 128, 130] {
            let q = tensor::init::uniform_i8(&mut rng, s, 64);
            let k = tensor::init::uniform_i8(&mut rng, s, 64);
            let direct = gemm::matmul_i8_nt(&q, &k).unwrap();
            let planned = qk_matmul_i8(&q, &k).unwrap();
            assert_eq!(direct, planned, "s={s}");
        }
    }

    #[test]
    fn qk_matmul_rejects_width_mismatch() {
        let q = Mat::<i8>::zeros(4, 64);
        let k = Mat::<i8>::zeros(4, 32);
        assert!(qk_matmul_i8(&q, &k).is_err());
    }
}
