//! The `s × 64` INT8 systolic array (Fig. 5's "SA Module").
//!
//! Output-stationary dataflow: matrix `A` (`s × k`) streams in from the
//! west with one-cycle skew per row, matrix `B` (`k × 64`) from the
//! north with one-cycle skew per column; every PE multiply-accumulates
//! the operand pair passing through it, so after the `k`-deep stream
//! (plus the wavefront skew) PE `(r, c)` holds `Σ_t A[r,t]·B[t,c]`. The
//! product then drains column by column ("it is designed to output the
//! product matrix column by column, so each column has `s` elements"),
//! through the `s` bias adders.
//!
//! Two views are provided:
//!
//! * [`SystolicArray::simulate`] — a register-true, cycle-by-cycle PE
//!   grid simulation, used by tests to prove the dataflow computes the
//!   exact INT8 GEMM and to validate the closed-form timing;
//! * [`SystolicArray::stream_cycles`]/[`SystolicArray::drain_cycles`] —
//!   the closed-form costs the scheduler uses (in steady state,
//!   back-to-back GEMMs pipeline through the skew, so throughput is `k`
//!   cycles per GEMM plus the drain policy).

use hwsim::cycles::Cycle;
use tensor::{gemm, Mat};

/// Geometry and timing of the systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

/// Result of a register-true array simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The exact product accumulators.
    pub out: Mat<i32>,
    /// Cycles until the last PE finished accumulating
    /// (`k + rows_a + cols_b − 2`).
    pub compute: Cycle,
    /// Column-serial drain cycles (`cols_b`).
    pub drain: Cycle,
    /// End-to-end cycles for this isolated GEMM.
    pub total: Cycle,
}

impl SystolicArray {
    /// Creates an array of `rows × cols` PEs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        Self { rows, cols }
    }

    /// The paper's array for max sequence length `s`: `s × 64`.
    pub fn paper(s: usize) -> Self {
        Self::new(s, crate::partition::PANEL_COLS)
    }

    /// Row count (`s`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count (64).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of processing elements (`64 s` multipliers + adders, the
    /// "biggest module in our design").
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Steady-state streaming cost of a GEMM with reduction depth `k`:
    /// one operand column/row pair per cycle.
    pub fn stream_cycles(&self, k: usize) -> Cycle {
        Cycle(k as u64)
    }

    /// Column-serial drain cost of one result (`cols` cycles).
    pub fn drain_cycles(&self) -> Cycle {
        Cycle(self.cols as u64)
    }

    /// Register-true simulation of one GEMM `a · b`.
    ///
    /// `a: [rows_a, k]` with `rows_a <= self.rows()`; `b: [k, cols_b]`
    /// with `cols_b <= self.cols()`.
    ///
    /// # Panics
    ///
    /// Panics if the operands exceed the array or widths mismatch.
    pub fn simulate(&self, a: &Mat<i8>, b: &Mat<i8>) -> SimResult {
        let (rows_a, k) = a.shape();
        let (kb, cols_b) = b.shape();
        assert_eq!(k, kb, "reduction depth mismatch: {k} vs {kb}");
        assert!(rows_a <= self.rows, "A has more rows than the array");
        assert!(cols_b <= self.cols, "B has more columns than the array");
        assert!(k > 0 && rows_a > 0 && cols_b > 0, "empty operands");

        // Per-PE operand registers (west-moving A, south-moving B) and
        // accumulators.
        let mut a_reg = vec![vec![(0i8, false); cols_b]; rows_a];
        let mut b_reg = vec![vec![(0i8, false); cols_b]; rows_a];
        let mut acc = Mat::<i32>::zeros(rows_a, cols_b);

        let compute_cycles = k + rows_a + cols_b - 2;
        for t in 0..compute_cycles {
            // Sweep from the south-east corner so each PE reads its
            // neighbour's *previous-cycle* register.
            for r in (0..rows_a).rev() {
                for c in (0..cols_b).rev() {
                    let a_in = if c == 0 {
                        // west edge: row r injects A[r][t - r] (skewed)
                        let idx = t as i64 - r as i64;
                        if (0..k as i64).contains(&idx) {
                            (a[(r, idx as usize)], true)
                        } else {
                            (0, false)
                        }
                    } else {
                        a_reg[r][c - 1]
                    };
                    let b_in = if r == 0 {
                        // north edge: column c injects B[t - c][c] (skewed)
                        let idx = t as i64 - c as i64;
                        if (0..k as i64).contains(&idx) {
                            (b[(idx as usize, c)], true)
                        } else {
                            (0, false)
                        }
                    } else {
                        b_reg[r - 1][c]
                    };
                    if a_in.1 && b_in.1 {
                        acc[(r, c)] += a_in.0 as i32 * b_in.0 as i32;
                    }
                    a_reg[r][c] = a_in;
                    b_reg[r][c] = b_in;
                }
            }
        }
        let compute = Cycle(compute_cycles as u64);
        let drain = Cycle(cols_b as u64);
        SimResult {
            out: acc,
            compute,
            drain,
            total: compute + drain,
        }
    }

    /// Analytic model of one GEMM `a · b`: the product from the fast
    /// blocked [`tensor::gemm::matmul_i8`] kernel plus the closed-form
    /// cycle counts (`compute = k + rows_a + cols_b − 2`,
    /// `drain = cols_b`).
    ///
    /// The PE grid is output-stationary and exact, and the wavefront
    /// timing depends only on the operand shape, so this is
    /// **bit-identical** to [`SystolicArray::simulate`] in both outputs
    /// and cycles (asserted by tests) — at GEMM cost instead of
    /// `O(cycles · PEs)` register stepping. Operand validation matches
    /// `simulate` panic for panic.
    ///
    /// # Panics
    ///
    /// Panics if the operands exceed the array or widths mismatch.
    pub fn simulate_analytic(&self, a: &Mat<i8>, b: &Mat<i8>) -> SimResult {
        let (rows_a, k) = a.shape();
        let (kb, cols_b) = b.shape();
        assert_eq!(k, kb, "reduction depth mismatch: {k} vs {kb}");
        assert!(rows_a <= self.rows, "A has more rows than the array");
        assert!(cols_b <= self.cols, "B has more columns than the array");
        assert!(k > 0 && rows_a > 0 && cols_b > 0, "empty operands");

        let out = gemm::matmul_i8(a, b).expect("widths checked above");
        let compute = Cycle((k + rows_a + cols_b - 2) as u64);
        let drain = Cycle(cols_b as u64);
        SimResult {
            out,
            compute,
            drain,
            total: compute + drain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::gemm;

    #[test]
    fn simulation_computes_exact_gemm() {
        let mut rng = StdRng::seed_from_u64(1);
        let sa = SystolicArray::new(8, 8);
        for &(m, k, n) in &[(8usize, 12usize, 8usize), (3, 5, 7), (1, 1, 1), (8, 64, 8)] {
            let a = tensor::init::uniform_i8(&mut rng, m, k);
            let b = tensor::init::uniform_i8(&mut rng, k, n);
            let sim = sa.simulate(&a, &b);
            let want = gemm::matmul_i8(&a, &b).unwrap();
            assert_eq!(sim.out, want, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn paper_array_simulates_one_projection_panel() {
        // Q (64x512) x W_Q1 (512x64): one Algorithm-1 line-3 GEMM. Use a
        // reduced depth to keep the test quick but the geometry real.
        let mut rng = StdRng::seed_from_u64(2);
        let sa = SystolicArray::paper(64);
        let a = tensor::init::uniform_i8(&mut rng, 64, 96);
        let b = tensor::init::uniform_i8(&mut rng, 96, 64);
        let sim = sa.simulate(&a, &b);
        assert_eq!(sim.out, gemm::matmul_i8(&a, &b).unwrap());
        // compute = k + rows + cols - 2
        assert_eq!(sim.compute, Cycle(96 + 64 + 64 - 2));
        assert_eq!(sim.drain, Cycle(64));
    }

    #[test]
    fn timing_formula_matches_simulation() {
        let sa = SystolicArray::new(16, 16);
        let mut rng = StdRng::seed_from_u64(3);
        let a = tensor::init::uniform_i8(&mut rng, 16, 40);
        let b = tensor::init::uniform_i8(&mut rng, 40, 16);
        let sim = sa.simulate(&a, &b);
        assert_eq!(sim.compute, Cycle(40 + 16 + 16 - 2));
        assert_eq!(sim.total, Cycle(40 + 16 + 16 - 2 + 16));
        assert_eq!(sa.stream_cycles(40), Cycle(40));
        assert_eq!(sa.drain_cycles(), Cycle(16));
    }

    #[test]
    fn analytic_matches_register_true_bit_for_bit() {
        // Randomized shapes: outputs AND all three cycle counts must be
        // identical between the two fidelity paths.
        let mut rng = StdRng::seed_from_u64(29);
        let sa = SystolicArray::new(16, 16);
        for case in 0..25 {
            let m = 1 + (case * 7) % 16;
            let n = 1 + (case * 11) % 16;
            let k = 1 + (case * 13) % 80;
            let a = tensor::init::uniform_i8(&mut rng, m, k);
            let b = tensor::init::uniform_i8(&mut rng, k, n);
            let slow = sa.simulate(&a, &b);
            let fast = sa.simulate_analytic(&a, &b);
            assert_eq!(fast.out, slow.out, "({m},{k},{n})");
            assert_eq!(fast.compute, slow.compute, "({m},{k},{n})");
            assert_eq!(fast.drain, slow.drain, "({m},{k},{n})");
            assert_eq!(fast.total, slow.total, "({m},{k},{n})");
        }
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn analytic_keeps_simulate_validation() {
        let sa = SystolicArray::new(4, 4);
        let a = Mat::<i8>::zeros(4, 3);
        let b = Mat::<i8>::zeros(4, 4);
        let _ = sa.simulate_analytic(&a, &b);
    }

    #[test]
    fn pe_count_and_geometry() {
        let sa = SystolicArray::paper(64);
        assert_eq!(sa.pe_count(), 4096);
        assert_eq!(sa.rows(), 64);
        assert_eq!(sa.cols(), 64);
    }

    #[test]
    fn partial_occupancy_supported() {
        // s = 5 sequence on a 64-row array
        let mut rng = StdRng::seed_from_u64(4);
        let sa = SystolicArray::paper(64);
        let a = tensor::init::uniform_i8(&mut rng, 5, 32);
        let b = tensor::init::uniform_i8(&mut rng, 32, 64);
        let sim = sa.simulate(&a, &b);
        assert_eq!(sim.out, gemm::matmul_i8(&a, &b).unwrap());
    }

    #[test]
    #[should_panic(expected = "more rows")]
    fn oversize_operand_rejected() {
        let sa = SystolicArray::new(4, 4);
        let a = Mat::<i8>::zeros(5, 4);
        let b = Mat::<i8>::zeros(4, 4);
        let _ = sa.simulate(&a, &b);
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn depth_mismatch_rejected() {
        let sa = SystolicArray::new(4, 4);
        let a = Mat::<i8>::zeros(4, 3);
        let b = Mat::<i8>::zeros(4, 4);
        let _ = sa.simulate(&a, &b);
    }
}
