//! The top-level [`Accelerator`] facade (Fig. 5): quantized weights
//! loaded into the weight memory, inputs streamed through the SA /
//! Softmax / LayerNorm pipeline, outputs plus a cycle-accurate execution
//! report.

use std::error::Error;
use std::fmt;

use quantized::{QuantFfnResBlock, QuantMhaResBlock};
use tensor::Mat;

use crate::area::{estimate_power, AreaModel, PowerEstimate};
use crate::config::AccelConfig;
use crate::scheduler::{self, ScheduleReport};

/// Errors of the accelerator facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelError {
    /// A run was requested before weights were loaded.
    WeightsNotLoaded(&'static str),
    /// The input sequence exceeds the array's row count.
    SequenceTooLong {
        /// Requested length.
        s: usize,
        /// Provisioned maximum.
        max: usize,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::WeightsNotLoaded(which) => {
                write!(f, "{which} weights not loaded into the weight memory")
            }
            AccelError::SequenceTooLong { s, max } => {
                write!(f, "sequence length {s} exceeds the array's {max} rows")
            }
        }
    }
}

impl Error for AccelError {}

/// Result of executing one ResBlock on the accelerator.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Timing of the run (cycles, µs, utilization, Gantt).
    pub schedule: ScheduleReport,
}

/// The accelerator: configuration + loaded quantized weights.
///
/// Numerics are delegated to the bit-exact [`quantized`] datapath;
/// timing to the [`scheduler`]. Both derive from the same configuration,
/// so a run's outputs are exactly what the RTL would produce and its
/// cycle count is what the control flow of Algorithm 1 implies.
#[derive(Debug, Clone)]
pub struct Accelerator {
    cfg: AccelConfig,
    mha: Option<QuantMhaResBlock>,
    ffn: Option<QuantFfnResBlock>,
}

impl Accelerator {
    /// Creates an accelerator with empty weight memory.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: AccelConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            mha: None,
            ffn: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Loads quantized MHA ResBlock weights into the weight memory.
    pub fn load_mha(&mut self, block: QuantMhaResBlock) {
        self.mha = Some(block);
    }

    /// Loads quantized FFN ResBlock weights into the weight memory.
    pub fn load_ffn(&mut self, block: QuantFfnResBlock) {
        self.ffn = Some(block);
    }

    /// The loaded MHA block, if any.
    pub fn mha_block(&self) -> Option<&QuantMhaResBlock> {
        self.mha.as_ref()
    }

    /// The loaded FFN block, if any.
    pub fn ffn_block(&self) -> Option<&QuantFfnResBlock> {
        self.ffn.as_ref()
    }

    /// Timing-only schedule of the MHA ResBlock at `s = cfg.s` (no
    /// weights required).
    pub fn schedule_mha(&self) -> ScheduleReport {
        scheduler::schedule_mha(&self.cfg)
    }

    /// Timing-only schedule of the FFN ResBlock at `s = cfg.s`.
    pub fn schedule_ffn(&self) -> ScheduleReport {
        scheduler::schedule_ffn(&self.cfg)
    }

    /// Executes the MHA ResBlock: INT8 inputs in the calibrated input
    /// scales, INT8 output, plus the cycle-accurate report for this
    /// sequence length.
    ///
    /// # Errors
    ///
    /// [`AccelError::WeightsNotLoaded`] without a loaded block;
    /// [`AccelError::SequenceTooLong`] if the input exceeds `cfg.s` rows.
    pub fn run_mha(
        &self,
        xq: &Mat<i8>,
        xkv: &Mat<i8>,
        mask: Option<&Mat<bool>>,
    ) -> Result<(Mat<i8>, RunReport), AccelError> {
        let block = self
            .mha
            .as_ref()
            .ok_or(AccelError::WeightsNotLoaded("MHA"))?;
        self.check_len(xq.rows())?;
        self.check_len(xkv.rows())?;
        let (out, _p) = block.forward(xq, xkv, mask);
        let schedule = scheduler::schedule_mha_cross(&self.cfg, xq.rows(), xkv.rows());
        Ok((out, RunReport { schedule }))
    }

    /// Executes the FFN ResBlock.
    ///
    /// # Errors
    ///
    /// [`AccelError::WeightsNotLoaded`] without a loaded block;
    /// [`AccelError::SequenceTooLong`] if the input exceeds `cfg.s` rows.
    pub fn run_ffn(&self, x: &Mat<i8>) -> Result<(Mat<i8>, RunReport), AccelError> {
        let block = self
            .ffn
            .as_ref()
            .ok_or(AccelError::WeightsNotLoaded("FFN"))?;
        self.check_len(x.rows())?;
        let (out, _hidden) = block.forward(x);
        let schedule = scheduler::schedule_ffn_len(&self.cfg, x.rows());
        Ok((out, RunReport { schedule }))
    }

    fn check_len(&self, s: usize) -> Result<(), AccelError> {
        if s == 0 || s > self.cfg.s {
            return Err(AccelError::SequenceTooLong { s, max: self.cfg.s });
        }
        Ok(())
    }

    /// The calibrated area model for this configuration.
    pub fn area(&self) -> AreaModel {
        AreaModel::new(self.cfg.clone())
    }

    /// Estimated on-chip power at the configured clock.
    pub fn power(&self) -> PowerEstimate {
        estimate_power(&self.area(), &self.cfg)
    }

    /// Renders a self-contained markdown report of this configuration:
    /// timing of both ResBlocks, resource table, data-memory plan and
    /// the power/energy operating point.
    pub fn full_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let cfg = &self.cfg;
        let _ = writeln!(
            out,
            "# Accelerator report: {} (s = {}, {:.0} MHz)\n",
            cfg.model.name,
            cfg.s,
            cfg.clock.as_mhz()
        );

        let mha = self.schedule_mha();
        let ffn = self.schedule_ffn();
        let _ = writeln!(out, "## Timing\n");
        let _ = writeln!(out, "| block | cycles | latency | SA utilization |");
        let _ = writeln!(out, "|---|---|---|---|");
        let _ = writeln!(
            out,
            "| MHA ResBlock | {} | {:.1} us | {:.1}% |",
            mha.cycles.get(),
            mha.latency_us,
            100.0 * mha.sa_utilization
        );
        let _ = writeln!(
            out,
            "| FFN ResBlock | {} | {:.1} us | {:.1}% |",
            ffn.cycles.get(),
            ffn.latency_us,
            100.0 * ffn.sa_utilization
        );

        let area = self.area();
        let _ = writeln!(out, "\n## Resources (Table-II model)\n");
        let _ = writeln!(out, "| module | LUT | FF | BRAM | DSP |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for m in area.table2() {
            let _ = writeln!(
                out,
                "| {} | {:.0} | {:.0} | {:.1} | {:.0} |",
                m.name, m.resources.lut, m.resources.ff, m.resources.bram, m.resources.dsp
            );
        }

        let dm = crate::datamem::plan(cfg);
        let _ = writeln!(
            out,
            "\n## Data memory (URAM)\n\n{} blocks of {} ({:.2} Mbit across {} buffers)",
            dm.total_uram,
            crate::datamem::VU13P_URAM,
            dm.total_bits as f64 / 1e6,
            dm.buffers.len()
        );

        let p = self.power();
        let _ = writeln!(
            out,
            "\n## Power & energy\n\n{:.1} W total ({:.1} dynamic + {:.1} static); \
             MHA {:.2} mJ, FFN {:.2} mJ per inference",
            p.total_w(),
            p.dynamic_w,
            p.static_w,
            crate::area::energy_uj(p.total_w(), mha.latency_us) / 1000.0,
            crate::area::energy_uj(p.total_w(), ffn.latency_us) / 1000.0,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quantized::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::ffn::FfnResBlock;
    use transformer::mha::MhaResBlock;

    fn tiny_accel() -> (Accelerator, Vec<Mat<f32>>) {
        let model_cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(5);
        let mha = MhaResBlock::new(&model_cfg, &mut rng);
        let ffn = FfnResBlock::new(&model_cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..4)
            .map(|_| tensor::init::normal(&mut rng, 8, model_cfg.d_model, 1.0))
            .collect();
        let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
        let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
        let cfg = AccelConfig {
            model: model_cfg,
            s: 16,
            ..AccelConfig::paper_default()
        };
        let mut accel = Accelerator::new(cfg);
        accel.load_mha(qmha);
        accel.load_ffn(qffn);
        (accel, calib)
    }

    #[test]
    fn run_mha_is_bit_identical_to_datapath() {
        let (accel, calib) = tiny_accel();
        let block = accel.mha_block().unwrap();
        let xq = block.quantize_input_q(&calib[0]);
        let (want, _) = block.forward(&xq, &xq, None);
        let (got, report) = accel.run_mha(&xq, &xq, None).unwrap();
        assert_eq!(got, want);
        assert!(report.schedule.cycles.get() > 0);
    }

    #[test]
    fn run_ffn_is_bit_identical_to_datapath() {
        let (accel, calib) = tiny_accel();
        let block = accel.ffn_block().unwrap();
        let x = block.quantize_input(&calib[1]);
        let (want, _) = block.forward(&x);
        let (got, report) = accel.run_ffn(&x).unwrap();
        assert_eq!(got, want);
        assert!(report.schedule.latency_us > 0.0);
    }

    #[test]
    fn missing_weights_error() {
        let accel = Accelerator::new(AccelConfig::paper_default());
        let x = Mat::<i8>::zeros(4, 512);
        match accel.run_ffn(&x) {
            Err(AccelError::WeightsNotLoaded("FFN")) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(accel.run_mha(&x, &x, None).is_err());
    }

    #[test]
    fn oversized_sequence_error() {
        let (accel, _) = tiny_accel();
        let x = Mat::<i8>::zeros(17, accel.config().model.d_model);
        match accel.run_ffn(&x) {
            Err(AccelError::SequenceTooLong { s: 17, max: 16 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_meaningful() {
        let e = AccelError::SequenceTooLong { s: 100, max: 64 };
        assert!(e.to_string().contains("100"));
        let e = AccelError::WeightsNotLoaded("MHA");
        assert!(e.to_string().contains("MHA"));
    }

    #[test]
    fn full_report_contains_every_section() {
        let accel = Accelerator::new(AccelConfig::paper_default());
        let rep = accel.full_report();
        for needle in [
            "# Accelerator report: Transformer-base",
            "## Timing",
            "20998",
            "## Resources",
            "471563",
            "## Data memory",
            "## Power & energy",
            "16.7 W total",
        ] {
            assert!(rep.contains(needle), "missing '{needle}' in report");
        }
    }

    #[test]
    fn paper_schedules_are_available_without_weights() {
        let accel = Accelerator::new(AccelConfig::paper_default());
        assert_eq!(accel.schedule_mha().cycles.get(), 20_998);
        assert_eq!(accel.schedule_ffn().cycles.get(), 35_846);
        let p = accel.power();
        assert!((p.total_w() - 16.7).abs() < 0.1);
    }
}
