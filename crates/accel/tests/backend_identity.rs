//! Cross-backend identity and accuracy contracts.
//!
//! Every backend lowers the *same* [`graph::mha_graph`] /
//! [`graph::ffn_graph`] builders; this suite pins what each is allowed
//! to do with them:
//!
//! * the paper backend, reached through the [`Backend`] trait, must be
//!   byte-for-byte the pre-refactor stack (golden command streams and
//!   the MHA 20998 / FFN 35846 cycle pins);
//! * the tiled-SA backend must be **bit-identical** to the quantized
//!   reference — tiling only regroups integer partial sums;
//! * the circulant backend is lossy by design and must stay above its
//!   documented SQNR floor on block-circulant weights;
//! * the explorer's Pareto fronts must span more than one backend.

use accel::circulant::{CirculantConfig, CIRC_SQNR_FLOOR_DB};
use accel::config::AccelConfig;
use accel::explorer::{self, ExploreConfig, ExplorerReport};
use accel::isa;
use accel::{Backend, BackendProgram, CirculantBackend, PaperBackend, TiledBackend, TiledConfig};
use graph::{ffn_graph, mha_graph, GraphConfig};
use quantized::{QuantFfnResBlock, QuantMhaResBlock, SoftmaxMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Mat;
use transformer::config::ModelConfig;
use transformer::ffn::FfnResBlock;
use transformer::mha::MhaResBlock;

fn graph_config(cfg: &AccelConfig) -> GraphConfig {
    GraphConfig {
        d_model: cfg.model.d_model,
        d_ff: cfg.model.d_ff,
        h: cfg.model.h,
    }
}

fn tiny_accel() -> AccelConfig {
    let mut cfg = AccelConfig::paper_default();
    cfg.model = ModelConfig::tiny_for_tests();
    cfg.s = 8;
    cfg
}

/// Quantized tiny blocks plus calibration-derived INT8 inputs.
fn tiny_quantized(seed: u64) -> (QuantMhaResBlock, QuantFfnResBlock, Mat<i8>, Mat<i8>) {
    let mcfg = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(seed);
    let mha = MhaResBlock::new(&mcfg, &mut rng);
    let ffn = FfnResBlock::new(&mcfg, &mut rng);
    let calib: Vec<Mat<f32>> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, 8, mcfg.d_model, 1.0))
        .collect();
    let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
    let xq = qmha.quantize_input_q(&calib[0]);
    let xf = qffn.quantize_input(&calib[1]);
    (qmha, qffn, xq, xf)
}

#[test]
fn paper_backend_through_the_trait_keeps_the_golden_pins() {
    let be = PaperBackend::paper_default();
    let cfg = be.config().clone();
    let gcfg = graph_config(&cfg);
    let mha = be.lower_mha(&mha_graph(&gcfg), cfg.s);
    let ffn = be.lower_ffn(&ffn_graph(&gcfg));
    match (&mha, &ffn) {
        (BackendProgram::Isa(m), BackendProgram::Isa(f)) => {
            assert_eq!(*m, isa::mha_program(cfg.model.h, cfg.s));
            assert_eq!(*f, isa::ffn_program(cfg.model.d_model, cfg.model.d_ff));
        }
        _ => panic!("paper backend must lower to ISA programs"),
    }
    assert_eq!(be.cycles(&mha, cfg.s), 20_998, "MHA pin moved");
    assert_eq!(be.cycles(&ffn, cfg.s), 35_846, "FFN pin moved");
}

#[test]
fn tiled_lowering_preserves_the_golden_command_stream() {
    // The tile scheduler sits *in front of* the paper's ISA lowering: it
    // may regroup work into DDR tiles, but the reconstructed command
    // stream must be exactly the golden program.
    let base = AccelConfig::paper_default();
    let gcfg = graph_config(&base);
    let be = TiledBackend::new(TiledConfig {
        base: base.clone(),
        rows: 16,
        cols: 16,
        tile_k: 512,
        ddr_bytes_per_cycle: 8,
        weight_cache_bytes: 0,
    });
    match be.lower_mha(&mha_graph(&gcfg), base.s) {
        BackendProgram::Tiled(p) => {
            assert_eq!(p.commands(), isa::mha_program(base.model.h, base.s))
        }
        _ => panic!("tiled backend must lower to a tile schedule"),
    }
    match be.lower_ffn(&ffn_graph(&gcfg)) {
        BackendProgram::Tiled(p) => {
            assert_eq!(
                p.commands(),
                isa::ffn_program(base.model.d_model, base.model.d_ff)
            )
        }
        _ => panic!("tiled backend must lower to a tile schedule"),
    }
}

#[test]
fn tiled_backend_is_bit_identical_to_the_quantized_reference() {
    let base = tiny_accel();
    let gcfg = graph_config(&base);
    let (qmha, qffn, xq, xf) = tiny_quantized(0x71D);
    // A deliberately awkward grid: tiles never divide the tiny shapes
    // evenly, so every ragged-edge path is on the identity hook.
    let be = TiledBackend::new(TiledConfig {
        base: base.clone(),
        rows: 4,
        cols: 4,
        tile_k: 16,
        ddr_bytes_per_cycle: 8,
        weight_cache_bytes: 0,
    });

    let prog = be.lower_mha(&mha_graph(&gcfg), base.s);
    let got = be.run_mha(&prog, &qmha, &xq, &xq, None);
    let (want, _) = qmha.forward(&xq, &xq, None);
    assert_eq!(got, want, "tiled MHA diverged from the reference");

    let prog = be.lower_ffn(&ffn_graph(&gcfg));
    let got = be.run_ffn(&prog, &qffn, &xf);
    let (want, _) = qffn.forward(&xf);
    assert_eq!(got, want, "tiled FFN diverged from the reference");
}

#[test]
fn circulant_ffn_stays_above_its_documented_sqnr_floor() {
    let be = CirculantBackend::new(CirculantConfig {
        base: tiny_accel(),
        block: 8,
        lanes: 4,
    });
    let db = explorer::measure_circulant_ffn_sqnr(&be, 0xC1AC);
    assert!(
        db >= CIRC_SQNR_FLOOR_DB,
        "circulant FFN SQNR {db:.1} dB below the {CIRC_SQNR_FLOOR_DB} dB floor"
    );
}

#[test]
fn all_backends_lower_the_same_shared_graphs() {
    // One set of graph builders feeds every backend; none may construct
    // its own dataflow.
    let base = tiny_accel();
    let gcfg = graph_config(&base);
    let mha_g = mha_graph(&gcfg);
    let ffn_g = ffn_graph(&gcfg);

    let paper = PaperBackend::new(base.clone());
    let tiled = TiledBackend::new(TiledConfig {
        base: base.clone(),
        rows: 4,
        cols: 4,
        tile_k: 16,
        ddr_bytes_per_cycle: 8,
        weight_cache_bytes: 0,
    });
    let circ = CirculantBackend::new(CirculantConfig {
        base: base.clone(),
        block: 8,
        lanes: 4,
    });

    let backends: Vec<&dyn Backend> = vec![&paper, &tiled, &circ];
    for be in backends {
        let caps = be.caps();
        if caps.supports_mha {
            assert!(!be.lower_mha(&mha_g, base.s).is_empty(), "{}", caps.name);
        }
        assert!(caps.supports_ffn, "{} must run the FFN", caps.name);
        let prog = be.lower_ffn(&ffn_g);
        assert!(!prog.is_empty(), "{}", caps.name);
        assert!(be.cycles(&prog, base.s) > 0, "{}", caps.name);
    }
}

#[test]
fn explorer_fronts_span_multiple_backends() {
    let r = explorer::explore(&ExploreConfig {
        base: tiny_accel(),
        tiled_grids: vec![4, 8],
        tiled_bandwidths: vec![8],
        tiled_weight_caches: vec![0, 4 << 10],
        circ_blocks: vec![4, 8],
        seed: 0xF00,
    });
    let mha = ExplorerReport::front_backends(&r.mha_front);
    let ffn = ExplorerReport::front_backends(&r.ffn_front);
    assert!(mha.len() >= 2, "MHA front collapsed to {mha:?}");
    assert!(ffn.len() >= 2, "FFN front collapsed to {ffn:?}");
}
