//! Property tests of the Table-II area model: the model must be
//! monotone in the array size and reproduce the paper's published
//! synthesis point exactly at the reference configuration.

use accel::area::{AreaModel, PeImpl, FF_PER_PE, LUT_PER_PE};
use accel::config::AccelConfig;
use proptest::prelude::*;

fn model_at(s: usize) -> AreaModel {
    let mut cfg = AccelConfig::paper_default();
    cfg.s = s;
    AreaModel::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn top_area_is_monotone_in_array_rows(a in 1usize..256, b in 1usize..256) {
        // A taller array can never need fewer resources: every module
        // scales with `s` except the weight memory, which is constant.
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assume!(lo < hi);
        let small = model_at(lo).top();
        let large = model_at(hi).top();
        prop_assert!(small.lut <= large.lut, "LUT {} > {}", small.lut, large.lut);
        prop_assert!(small.ff <= large.ff);
        prop_assert!(small.bram <= large.bram);
        prop_assert!(small.dsp <= large.dsp);
    }

    #[test]
    fn systolic_array_scales_linearly_with_pe_count(s in 1usize..256) {
        // The SA is a pure per-PE cost: `s × 64` PEs at the calibrated
        // LUT/FF rates, no BRAM, no DSP (the paper's LUT mapping).
        let sa = model_at(s).systolic_array();
        let pes = (s * 64) as f64;
        prop_assert!((sa.lut - LUT_PER_PE * pes).abs() < 1e-6);
        prop_assert!((sa.ff - FF_PER_PE * pes).abs() < 1e-6);
        prop_assert!(sa.bram == 0.0 && sa.dsp == 0.0);
    }

    #[test]
    fn dsp_mapping_trades_luts_for_one_dsp_per_pe(s in 1usize..256) {
        let m = model_at(s);
        let lut = m.systolic_array_with(PeImpl::LutFabric);
        let dsp = m.systolic_array_with(PeImpl::Dsp);
        prop_assert!(dsp.dsp == (s * 64) as f64);
        prop_assert!(dsp.lut < lut.lut, "DSP mapping must save LUTs");
    }
}

#[test]
fn reference_config_reproduces_the_published_table2_point() {
    // Table II, VU13P, Vivado 2018.2 — the single published synthesis
    // point that calibrates every per-primitive constant.
    let m = AreaModel::new(AccelConfig::paper_default());
    let top = m.top();
    assert_eq!(top.lut.round() as u64, 471_563, "Top LUT");
    assert_eq!(top.ff.round() as u64, 217_859, "Top FF");
    assert_eq!(top.bram.round() as u64, 498, "Top BRAM");
    assert_eq!(top.dsp.round() as u64, 129, "Top DSP");

    let sa = m.systolic_array();
    assert_eq!(sa.lut.round() as u64, 420_867, "SA LUT");
    assert_eq!(sa.ff.round() as u64, 173_110, "SA FF");

    let sm = m.softmax();
    assert_eq!(sm.lut.round() as u64, 21_190, "Softmax LUT");
    assert_eq!(sm.ff.round() as u64, 32_623, "Softmax FF");

    assert_eq!(m.weight_memory().bram.round() as u64, 456, "weight BRAM");
    assert!(m.fits_vu13p(), "the paper design must fit its device");
}
