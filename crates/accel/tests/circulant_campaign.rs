//! Fault-injection campaign smoke test for the block-circulant path.
//!
//! The serving campaign's ABFT checksums guard the GEMM backends; the
//! circulant backend's frequency-domain datapath carries its *own*
//! checker (accumulation checksum + IFFT DC identity — see
//! `accel::circulant` module docs). This suite is the campaign-side
//! contract: a seeded sweep of single-bit spectral flips must all be
//! flagged, a clean run must stay silent, and the advertised
//! compression ratio must match what the backend actually stores.
//!
//! Like the serving fault matrix, the sweep picks its seed up from
//! `ACCEL_FAULT_SEED` (via [`faults::env_seed`]) so CI can rerun it at
//! several seeds without a recompile.

use accel::circulant::{
    circulantize_ffn, dc_check_tolerance, CircFault, CirculantBackend, CirculantConfig,
};
use accel::config::AccelConfig;
use accel::Backend;
use graph::ffn_graph;
use quantized::QuantFfnResBlock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Mat;
use transformer::config::ModelConfig;
use transformer::ffn::FfnResBlock;

const BLOCK: usize = 8;

fn backend() -> CirculantBackend {
    let mut base = AccelConfig::paper_default();
    base.model = ModelConfig::tiny_for_tests();
    base.s = 8;
    CirculantBackend::new(CirculantConfig {
        base,
        block: BLOCK,
        lanes: 4,
    })
}

fn fixture(seed: u64) -> (QuantFfnResBlock, Mat<i8>) {
    let cfg = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut block = FfnResBlock::new(&cfg, &mut rng);
    circulantize_ffn(&mut block, BLOCK);
    let calib: Vec<Mat<f32>> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
        .collect();
    let q = QuantFfnResBlock::from_f32(&block, &calib);
    let xq = q.quantize_input(&calib[0]);
    (q, xq)
}

#[test]
fn seeded_flip_campaign_is_fully_detected() {
    let be = backend();
    let (q, xq) = fixture(0x5EED);
    let prog = be.lower_ffn(&ffn_graph(&q.graph_config()));
    let mut rng = StdRng::seed_from_u64(faults::env_seed().unwrap_or(0xCAFA_0117));
    let d_model = 32usize;
    let d_ff = 64usize;
    for trial in 0..32 {
        let layer = rng.random_range(1u8..=2);
        let out_blocks = if layer == 1 { d_ff } else { d_model } / BLOCK;
        // Bits 14..30: above the checksum tolerance, so every flip is
        // inside the checker's guaranteed-detection band.
        let fault = CircFault {
            layer,
            row: rng.random_range(0..8),
            out_block: rng.random_range(0..out_blocks),
            bin: rng.random_range(0..BLOCK),
            bit: rng.random_range(14u32..30),
        };
        let (_, report) = be.run_ffn_checked(&prog, &q, &xq, Some(fault));
        assert!(
            report.violations >= 1,
            "trial {trial}: undetected flip {fault:?}"
        );
    }
}

#[test]
fn clean_campaign_run_raises_no_alarms() {
    let be = backend();
    let (q, xq) = fixture(0x5EED);
    let prog = be.lower_ffn(&ffn_graph(&q.graph_config()));
    let (_, report) = be.run_ffn_checked(&prog, &q, &xq, None);
    assert_eq!(report.violations, 0, "false positives break the campaign");
    assert!(report.blocks_checked > 0);
    // The detection band really is above the rounding tolerance.
    assert!(1i64 << 14 > dc_check_tolerance(BLOCK) * BLOCK as i64);
}

#[test]
fn advertised_compression_matches_stored_words() {
    let be = backend();
    let caps = be.caps();
    assert_eq!(caps.weight_compression, BLOCK as f64);
    let dense_words = 2 * 32 * 64;
    assert_eq!(
        be.stored_weight_words() * BLOCK,
        dense_words,
        "stored kernel words must be exactly 1/b of the dense count"
    );
}
