//! E2 — Eq. (3): the share of MHA multiplications spent in `Q_i K_i^T`,
//! swept over sequence length and head count. Reports both the exact
//! MAC ratio and the paper's closed form `s / (s + 256h² + 64)` (whose
//! printed algebra carries extra dimension factors — see DESIGN.md).

use accel::analysis::{qk_ratio, qk_ratio_closed_form};
use serde::Serialize;
use transformer::config::ModelConfig;

#[derive(Serialize)]
struct Row {
    model: String,
    h: usize,
    s: usize,
    exact_pct: f64,
    paper_closed_form_pct: f64,
}

fn main() {
    let mut rows = Vec::new();
    for cfg in ModelConfig::table1() {
        for &s in &[16usize, 32, 64, 128, 256, 512] {
            rows.push(Row {
                model: cfg.name.clone(),
                h: cfg.h,
                s,
                exact_pct: 100.0 * qk_ratio(&cfg, s),
                paper_closed_form_pct: 100.0 * qk_ratio_closed_form(cfg.h, s),
            });
        }
    }
    println!("E2 — Eq. (3): Q_i K_i^T share of MHA multiplications\n");
    let table = bench_harness::render_table(
        &["model", "h", "s", "exact %", "paper closed form %"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.h.to_string(),
                    r.s.to_string(),
                    format!("{:.3}", r.exact_pct),
                    format!("{:.3}", r.paper_closed_form_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!("conclusion (paper): the ratio is very small, so handling QK^T specially");
    println!("does not hurt overall systolic-array utilization — holds for both columns.");
    bench_harness::write_json("eq3_ratio", &rows);
}
