//! E11 (extension) — scaling study: cycle counts, resources and power
//! when the accelerator is re-provisioned for every Table-I model and
//! for longer sequence lengths. The paper's future-work section points
//! at "multiple Transformer networks"; the calibrated models let us
//! extrapolate.

use accel::area::{estimate_power, AreaModel};
use accel::AccelConfig;
use serde::Serialize;
use transformer::config::ModelConfig;

#[derive(Serialize)]
struct Row {
    model: String,
    s: usize,
    mha_cycles: u64,
    ffn_cycles: u64,
    mha_us: f64,
    ffn_us: f64,
    lut: f64,
    bram: f64,
    power_w: f64,
    fits_vu13p: bool,
}

fn main() {
    let mut rows = Vec::new();
    for model in ModelConfig::table1() {
        for &s in &[64usize, 128] {
            let mut cfg = AccelConfig::paper_default();
            cfg.model = model.clone();
            cfg.s = s;
            let mha = accel::scheduler::schedule_mha(&cfg);
            let ffn = accel::scheduler::schedule_ffn(&cfg);
            let area = AreaModel::new(cfg.clone());
            let top = area.top();
            let p = estimate_power(&area, &cfg);
            rows.push(Row {
                model: model.name.clone(),
                s,
                mha_cycles: mha.cycles.get(),
                ffn_cycles: ffn.cycles.get(),
                mha_us: mha.latency_us,
                ffn_us: ffn.latency_us,
                lut: top.lut,
                bram: top.bram,
                power_w: p.total_w(),
                fits_vu13p: area.fits_vu13p(),
            });
        }
    }
    println!("E11 — scaling the accelerator across Table-I models and sequence lengths\n");
    let table = bench_harness::render_table(
        &[
            "model",
            "s",
            "MHA cyc",
            "FFN cyc",
            "MHA us",
            "FFN us",
            "LUT",
            "BRAM",
            "power W",
            "fits VU13P",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.s.to_string(),
                    r.mha_cycles.to_string(),
                    r.ffn_cycles.to_string(),
                    format!("{:.1}", r.mha_us),
                    format!("{:.1}", r.ffn_us),
                    format!("{:.0}", r.lut),
                    format!("{:.0}", r.bram),
                    format!("{:.1}", r.power_w),
                    r.fits_vu13p.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    bench_harness::write_json("scaling", &rows);
}
