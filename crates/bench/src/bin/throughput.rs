//! E17 — continuous-batching decode throughput.
//!
//! Runs the serving layer's [`ContinuousBatcher`] over a paper-shape
//! decoder (Transformer-base ResBlock dimensions: `d_model = 512`,
//! `d_ff = 2048`, `h = 8`) at batch sizes 1..64 and reports:
//!
//! * measured **tokens/sec** (wall clock, this host's CPU kernels) and
//!   the speedup over `max_batch = 1` — the continuous-batching win on
//!   the software side comes from amortizing each layer's weight-panel
//!   streaming across all in-flight rows;
//! * **per-token latency p50/p95** (milliseconds): each generated token
//!   is attributed the wall time of the engine step that produced it, so
//!   the tail shows what batching costs individual requests while the
//!   throughput column shows what it buys the fleet;
//! * modeled **array utilization** of the same decode step on the
//!   paper's `64 × 64` systolic array ([`accel::EngineStats`], analytic
//!   wavefront timing): a 1-row decode GEMM leaves almost the entire PE
//!   grid idle, which is exactly the idle capacity continuous batching
//!   reclaims.
//!
//! Every request decodes a fixed token budget (`ignore_eos`), so each
//! batch size does identical work. Results land in
//! `results/BENCH_decode.json`; run with `cargo run --release --bin
//! throughput`.

use std::time::Instant;

use accel::EngineStats;
use hwsim::cycles::Cycle;
use quantized::incremental::KvArena;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use serving::{ContinuousBatcher, EngineConfig, Request};
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen, BOS};

/// The accelerator's array height (and the paper's max sequence length).
const S_MAX: usize = 64;
/// Weight-panel width / array column count.
const PANEL: usize = 64;

/// Requests per batch-size configuration.
const N_REQUESTS: usize = 48;
/// Tokens decoded per request (every request decodes exactly this
/// many). Long enough that the steady-state decode loop — not the
/// per-request encoder prefill — dominates the wall clock.
const MAX_NEW: usize = 24;

#[derive(Serialize)]
struct BatchPoint {
    max_batch: usize,
    tokens: usize,
    elapsed_s: f64,
    tokens_per_sec: f64,
    speedup_vs_b1: f64,
    /// Median per-token latency in milliseconds (each generated token's
    /// latency is the wall time of the engine step that produced it).
    token_latency_ms_p50: f64,
    /// 95th-percentile per-token latency in milliseconds — the tail that
    /// batching trades against throughput.
    token_latency_ms_p95: f64,
    /// Mean fraction of occupied decode slots across all steps.
    slot_occupancy: f64,
    /// Modeled fraction of the `64 × 64` array's MAC capacity used by
    /// one decode step at this batch size.
    array_utilization: f64,
}

/// Nearest-rank percentile (`q` in 0..=100) of an unsorted sample set.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "empty latency sample set");
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// The long-prompt/short-answer workload: chunked prefill through the
/// serving engine versus token-at-a-time prompt ingestion.
#[derive(Serialize)]
struct PrefillBench {
    /// Prompt length per request (plus one `BOS` row each).
    prompt_tokens: usize,
    new_tokens: usize,
    requests: usize,
    prefill_chunk: usize,
    max_prefill_rows: usize,
    /// Token-at-a-time ingestion rate (rows/s through `step_session`).
    sequential_prefill_tok_s: f64,
    /// Chunked ingestion rate through the engine (prefill rows divided
    /// by the wall time of the steps that consumed them — conservative,
    /// since those steps also carry decode rows).
    chunked_prefill_tok_s: f64,
    prefill_speedup: f64,
    /// Sequential time-to-first-token: wall time to ingest `[BOS]` +
    /// prompt one row per step (the first generated token is the argmax
    /// of the final ingestion step's logits).
    sequential_ttft_ms: f64,
    /// Chunked-prefill TTFT percentiles across requests: cumulative
    /// engine wall time up to each request's `first_token_step`.
    ttft_ms_p50: f64,
    ttft_ms_p99: f64,
}

/// Paged INT8 KV residency versus the flat `max_len`-row reservation
/// the pre-paging session caches made.
#[derive(Serialize)]
struct KvBench {
    page_rows: usize,
    max_len: usize,
    /// Mean resident KV bytes per session at the concurrency peak.
    paged_int8_bytes_per_session: usize,
    /// What a flat INT8 cache reserved per session: `layers × {K,V} ×
    /// max_len × d_model` codes, regardless of tokens actually held.
    flat_int8_bytes_per_session: usize,
    /// The FP32 serving-cache equivalent of the same reservation.
    flat_fp32_bytes_per_session: usize,
    kv_budget_bytes: usize,
    flat_fp32_sessions_in_budget: usize,
    flat_int8_sessions_in_budget: usize,
    paged_int8_sessions_in_budget: usize,
    /// Concurrent-session gain at a fixed KV budget: flat FP32
    /// reservation over measured paged INT8 residency.
    session_gain_vs_flat_fp32: f64,
    session_gain_vs_flat_int8: f64,
}

/// Graph-fusion differential at the batch-16 operating point: the same
/// workload with the rewrite pass on (default) and off (`ACCEL_NO_FUSE`
/// semantics, i.e. the pre-fusion engine). Both runs happen in the same
/// process on the same warmed pool, so the ratio isolates the fusion
/// win from machine noise — the recorded pre-fusion number from the
/// unfused engine's own bench run is kept alongside for reference.
#[derive(Serialize)]
struct FusionBench {
    max_batch: usize,
    fused_tok_s: f64,
    unfused_tok_s: f64,
    /// Same-run fused-over-unfused throughput ratio (asserted >= 1.15).
    fusion_speedup: f64,
    /// Batch-16 tokens/sec recorded by the unfused engine's bench run
    /// (the committed pre-fusion `BENCH_decode.json`).
    recorded_unfused_tok_s: f64,
    speedup_vs_recorded: f64,
    /// Fused drains per engine step per decoder layer (>= 2: both MHA
    /// output projections always fuse; the FFN adds two more).
    fused_ops_per_step_per_layer: f64,
    /// Intermediate tensors' bytes never materialized, whole run.
    intermediates_elided_mb: f64,
}

#[derive(Serialize)]
struct DecodeBench {
    model: String,
    d_model: usize,
    d_ff: usize,
    heads: usize,
    n_layers: usize,
    requests: usize,
    tokens_per_request: usize,
    pe_count: u64,
    points: Vec<BatchPoint>,
    fusion: FusionBench,
    prefill: PrefillBench,
    kv: KvBench,
}

/// One modeled GEMM pass through the `S_MAX × 64` array: `m × k` times
/// `k × n`, analytic wavefront timing (`compute = k + m + n − 2`,
/// `drain = n` — the same closed form as
/// `accel::systolic::SystolicArray::simulate_analytic`).
fn pass(m: usize, k: usize, n: usize) -> EngineStats {
    EngineStats {
        gemm_passes: 1,
        macs: (m * k * n) as u64,
        isolated_cycles: Cycle((k + m + n - 2 + n) as u64),
        ..EngineStats::default()
    }
}

/// Models one batched decode step at batch size `b` on the paper array:
/// the per-layer weight GEMMs run once over all `b` stacked rows, while
/// the per-request attention passes stay single-row (their cache
/// lengths differ). `ctx` is the mean self-attention cache length and
/// `src` the source length the cross-attention attends over.
fn model_decode_step(cfg: &ModelConfig, b: usize, ctx: usize, src: usize) -> EngineStats {
    let d = cfg.d_model;
    let panels = d / PANEL;
    let mut step = EngineStats::default();
    for _ in 0..cfg.n_layers {
        // Self-attention: W_Q, W_K, W_V, W_G batched over all rows.
        for _ in 0..4 * panels {
            step.merge(&pass(b, d, PANEL));
        }
        // Cross-attention: only W_Q and W_G run per step (the source-side
        // K/V projections are computed once at admission).
        for _ in 0..2 * panels {
            step.merge(&pass(b, d, PANEL));
        }
        // Per-request, per-head attention (single query row).
        for _ in 0..b {
            for _ in 0..cfg.h {
                // QK^T score tiles (64-row K tiles), then P·V.
                for t0 in (0..ctx).step_by(PANEL) {
                    step.merge(&pass(1, cfg.d_k(), PANEL.min(ctx - t0)));
                }
                step.merge(&pass(1, ctx, cfg.d_k()));
                for t0 in (0..src).step_by(PANEL) {
                    step.merge(&pass(1, cfg.d_k(), PANEL.min(src - t0)));
                }
                step.merge(&pass(1, src, cfg.d_k()));
            }
        }
        // FFN: both sublayers batched.
        for _ in 0..cfg.d_ff / PANEL {
            step.merge(&pass(b, d, PANEL));
        }
        for _ in 0..panels {
            step.merge(&pass(b, cfg.d_ff, PANEL));
        }
    }
    step
}

/// Batch-16 tokens/sec from the unfused engine's committed bench run —
/// the pre-fusion `BENCH_decode.json` this change was measured against.
const RECORDED_UNFUSED_B16_TOK_S: f64 = 6084.0;

/// One decode run (no per-token latency attribution): submit every
/// source, drain the engine, return throughput and the engine stats.
fn decode_run(
    q: &quantized::QuantSeq2Seq,
    srcs: &[Vec<usize>],
    max_batch: usize,
) -> (f64, serving::ServingStats) {
    let mut engine = ContinuousBatcher::new(
        q,
        EngineConfig {
            max_batch,
            bucket_max_waste: usize::MAX,
            ignore_eos: true,
            ..EngineConfig::default()
        },
    )
    .expect("nonzero max_batch");
    for (id, src) in srcs.iter().enumerate() {
        engine
            .submit(Request::new(id as u64, src.clone(), MAX_NEW))
            .expect("valid request");
    }
    let t0 = Instant::now();
    let responses = engine.run_to_completion();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(responses.len(), srcs.len());
    let stats = engine.stats();
    (stats.tokens_generated as f64 / elapsed, stats)
}

/// The fused-vs-unfused differential at `max_batch = 16`. Flips the
/// process-wide fusion gate (`tensor::envcfg`) around two back-to-back
/// runs of the identical workload; results are bit-identical either way
/// (`tests/fusion_identity.rs`), so this measures speed alone.
fn bench_fusion(q: &quantized::QuantSeq2Seq, srcs: &[Vec<usize>], n_layers: usize) -> FusionBench {
    const B: usize = 16;
    // Interleave two runs per side and keep each side's best: the
    // differential is what the assert below pins, and best-of-N against
    // best-of-N cancels the scheduler noise a shared box injects into
    // any single pass.
    let mut unfused_tok_s = f64::MIN;
    let mut fused_tok_s = f64::MIN;
    let mut stats = serving::ServingStats::default();
    for _ in 0..2 {
        tensor::envcfg::set_fuse_override(Some(false));
        let (u, _) = decode_run(q, srcs, B);
        unfused_tok_s = unfused_tok_s.max(u);
        tensor::envcfg::set_fuse_override(Some(true));
        let (f, s) = decode_run(q, srcs, B);
        if f > fused_tok_s {
            fused_tok_s = f;
            stats = s;
        }
    }
    tensor::envcfg::set_fuse_override(None);

    let fusion_speedup = fused_tok_s / unfused_tok_s;
    let per_step_layer = stats.ops_fused as f64 / (stats.steps * n_layers) as f64;
    println!(
        "fusion (batch {B}): unfused {unfused_tok_s:>7.1} tok/s -> fused {fused_tok_s:>7.1} \
         tok/s ({fusion_speedup:.2}x)  {per_step_layer:.1} fused drains/step/layer  \
         {:.1} MB of intermediates elided",
        stats.intermediates_elided_bytes as f64 / (1 << 20) as f64
    );
    assert!(
        fusion_speedup >= 1.15,
        "fused decode must clear 1.15x the unfused engine at batch {B} (got {fusion_speedup:.2}x)"
    );
    assert!(
        per_step_layer >= 2.0,
        "expected >= 2 elided intermediates per decoder layer per step (got {per_step_layer:.2})"
    );
    FusionBench {
        max_batch: B,
        fused_tok_s,
        unfused_tok_s,
        fusion_speedup,
        recorded_unfused_tok_s: RECORDED_UNFUSED_B16_TOK_S,
        speedup_vs_recorded: fused_tok_s / RECORDED_UNFUSED_B16_TOK_S,
        fused_ops_per_step_per_layer: per_step_layer,
        intermediates_elided_mb: stats.intermediates_elided_bytes as f64 / (1 << 20) as f64,
    }
}

fn main() {
    // Paper-shape ResBlocks (Transformer-base row of Table I) with a
    // small vocabulary and depth so the FP32 calibration stays cheap;
    // per-step cost is dominated by the 512/2048 weight GEMMs either way.
    let cfg = ModelConfig {
        name: "Transformer-base-2L".into(),
        d_model: 512,
        d_ff: 2048,
        h: 8,
        n_layers: 2,
        vocab: 64,
        max_len: S_MAX,
    };
    println!(
        "building {} (d_model={}, d_ff={}, h={}, {} layers)...",
        cfg.name, cfg.d_model, cfg.d_ff, cfg.h, cfg.n_layers
    );
    let mut rng = StdRng::seed_from_u64(0xD0_0DE);
    let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 6);
    let calib = gen.corpus(4, &mut StdRng::seed_from_u64(0xCA11B));
    let q = quantized::QuantSeq2Seq::from_trained(&fp32, &calib, quantized::SoftmaxMode::Hardware);

    let srcs: Vec<Vec<usize>> = gen
        .corpus(N_REQUESTS, &mut StdRng::seed_from_u64(0xF00D))
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    let mean_src = srcs.iter().map(Vec::len).sum::<usize>() / srcs.len();
    let pe_count = (S_MAX * PANEL) as u64;

    let mut points: Vec<BatchPoint> = Vec::new();
    for &max_batch in &[1usize, 2, 4, 8, 16, 32, 64] {
        let mut engine = ContinuousBatcher::new(
            &q,
            EngineConfig {
                max_batch,
                bucket_max_waste: usize::MAX,
                ignore_eos: true,
                ..EngineConfig::default()
            },
        )
        .expect("nonzero max_batch");
        for (id, src) in srcs.iter().enumerate() {
            engine
                .submit(Request::new(id as u64, src.clone(), MAX_NEW))
                .expect("valid request");
        }
        // Drive the engine step by step so each generated token can be
        // attributed the wall time of the batched step that produced it
        // (every active request yields exactly one token per step).
        let mut latencies_ms: Vec<f64> = Vec::new();
        let t0 = Instant::now();
        loop {
            let tokens_before = engine.stats().tokens_generated;
            let ts = Instant::now();
            if !engine.step() {
                break;
            }
            let step_ms = ts.elapsed().as_secs_f64() * 1e3;
            let produced = engine.stats().tokens_generated - tokens_before;
            latencies_ms.extend(std::iter::repeat_n(step_ms, produced));
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), N_REQUESTS);
        assert!(responses.iter().all(|r| r.tokens.len() == MAX_NEW));
        let stats = engine.stats();
        let tokens = stats.tokens_generated;
        assert_eq!(latencies_ms.len(), tokens, "one latency sample per token");
        let p50 = percentile(&mut latencies_ms, 50.0);
        let p95 = percentile(&mut latencies_ms, 95.0);
        let tokens_per_sec = tokens as f64 / elapsed;
        let speedup = points
            .first()
            .map_or(1.0, |p0: &BatchPoint| tokens_per_sec / p0.tokens_per_sec);
        // Model the array at this batch size's *typical* step: mean
        // occupied rows, mid-decode self-attention context.
        let rows = ((stats.rows as f64 / stats.steps as f64).round() as usize).max(1);
        let modeled = model_decode_step(&cfg, rows, MAX_NEW / 2 + 1, mean_src);
        let utilization = modeled.array_utilization(pe_count);
        println!(
            "max_batch {max_batch:>2}: {tokens_per_sec:>7.1} tok/s  ({speedup:>4.2}x vs b=1)  \
             latency p50 {p50:.2} ms / p95 {p95:.2} ms  occupancy {:.2}  \
             modeled array utilization {:.1}%",
            stats.occupancy(max_batch),
            utilization * 100.0
        );
        points.push(BatchPoint {
            max_batch,
            tokens,
            elapsed_s: elapsed,
            tokens_per_sec,
            speedup_vs_b1: speedup,
            token_latency_ms_p50: p50,
            token_latency_ms_p95: p95,
            slot_occupancy: stats.occupancy(max_batch),
            array_utilization: utilization,
        });
    }

    let b16 = points
        .iter()
        .find(|p| p.max_batch == 16)
        .expect("batch 16 measured");
    // The prepacked weight cache removed the per-call pack cost that the
    // original 4x threshold was largely amortizing (batch 1 sped up ~3x,
    // far more than the batched sizes), so the relative batching win now
    // reflects pure row amortization of the weight GEMMs.
    assert!(
        b16.speedup_vs_b1 >= 1.5,
        "continuous batching must reach 1.5x throughput at batch 16 (got {:.2}x)",
        b16.speedup_vs_b1
    );

    let fusion = bench_fusion(&q, &srcs, cfg.n_layers);
    let (prefill, kv) = bench_long_context();

    let report = DecodeBench {
        model: cfg.name.clone(),
        d_model: cfg.d_model,
        d_ff: cfg.d_ff,
        heads: cfg.h,
        n_layers: cfg.n_layers,
        requests: N_REQUESTS,
        tokens_per_request: MAX_NEW,
        pe_count,
        points,
        fusion,
        prefill,
        kv,
    };
    bench_harness::write_json("BENCH_decode", &report);
}

/// Prompt length for the long-context workload.
const PROMPT_LEN: usize = 512;
/// Short answer decoded after the prompt.
const PREFILL_NEW: usize = 24;
/// Concurrent long-context requests through the engine.
const PREFILL_REQS: usize = 8;
/// Requests measured on the (slow) token-at-a-time baseline — it is a
/// rate, so a couple of 513-row ingestions give a stable number.
const SEQ_SAMPLES: usize = 2;
/// Prompt rows a prefilling request may consume per engine step.
const PREFILL_CHUNK: usize = 64;
/// Per-step prefill-row budget shared by all prefilling slots.
const MAX_PREFILL_ROWS: usize = 256;
/// Fixed KV memory budget for the concurrent-sessions comparison.
const KV_BUDGET: usize = 256 << 20;

/// E18 — chunked prefill + paged INT8 KV on a long-prompt/short-answer
/// workload: 512-token prompts into a `max_len = 640` paper-shape
/// decoder, 24 generated tokens each. Returns the prefill-throughput /
/// TTFT section and the KV-residency section of the report.
fn bench_long_context() -> (PrefillBench, KvBench) {
    let cfg = ModelConfig {
        name: "Transformer-base-2L-long".into(),
        d_model: 512,
        d_ff: 2048,
        h: 8,
        n_layers: 2,
        vocab: 64,
        max_len: PROMPT_LEN + 2 * S_MAX, // 640: prompt + answer headroom
    };
    println!(
        "\nbuilding {} (max_len={}) for the long-context workload...",
        cfg.name, cfg.max_len
    );
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 6);
    let calib = gen.corpus(4, &mut StdRng::seed_from_u64(0x10AE));
    let q = quantized::QuantSeq2Seq::from_trained(&fp32, &calib, quantized::SoftmaxMode::Hardware);

    let srcs: Vec<Vec<usize>> = gen
        .corpus(PREFILL_REQS, &mut StdRng::seed_from_u64(0x10AF))
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    let mut prng = StdRng::seed_from_u64(0x10B0);
    let prompts: Vec<Vec<usize>> = (0..PREFILL_REQS)
        .map(|_| {
            (0..PROMPT_LEN)
                .map(|_| prng.random_range(3..cfg.vocab))
                .collect()
        })
        .collect();

    // Token-at-a-time baseline: the pre-chunking way to ingest a prompt
    // is one `step_session` per row.
    let mut seq_ingest_s = 0.0;
    for r in 0..SEQ_SAMPLES {
        let mut arena = KvArena::for_model(&q);
        let mut session = q.start_session(&mut arena, &srcs[r]);
        let t0 = Instant::now();
        let mut logits = q.step_session(&mut arena, &mut session, BOS);
        for &t in &prompts[r] {
            logits = q.step_session(&mut arena, &mut session, t);
        }
        std::hint::black_box(&logits);
        seq_ingest_s += t0.elapsed().as_secs_f64();
    }
    let sequential_ttft_ms = seq_ingest_s / SEQ_SAMPLES as f64 * 1e3;
    let sequential_tok_s = (SEQ_SAMPLES * (1 + PROMPT_LEN)) as f64 / seq_ingest_s;

    // Chunked prefill through the engine, all requests concurrent.
    let mut engine = ContinuousBatcher::new(
        &q,
        EngineConfig {
            max_batch: PREFILL_REQS,
            bucket_max_waste: usize::MAX,
            prefill_chunk: PREFILL_CHUNK,
            max_prefill_rows: MAX_PREFILL_ROWS,
            ignore_eos: true,
            ..EngineConfig::default()
        },
    )
    .expect("nonzero max_batch");
    for (id, (src, prompt)) in srcs.iter().zip(&prompts).enumerate() {
        engine
            .submit(Request::new(id as u64, src.clone(), PREFILL_NEW).with_prompt(prompt.clone()))
            .expect("valid request");
    }
    let mut cum_ms_by_step: Vec<f64> = Vec::new();
    let mut cum_ms = 0.0;
    let mut prefill_s = 0.0;
    let mut prev_prefill_rows = 0;
    loop {
        let ts = Instant::now();
        if !engine.step() {
            break;
        }
        let dt = ts.elapsed().as_secs_f64();
        cum_ms += dt * 1e3;
        cum_ms_by_step.push(cum_ms);
        let s = engine.stats();
        if s.prefill_rows > prev_prefill_rows {
            prefill_s += dt;
            prev_prefill_rows = s.prefill_rows;
        }
    }
    let responses = engine.run_to_completion();
    assert_eq!(responses.len(), PREFILL_REQS);
    assert!(responses.iter().all(|r| r.tokens.len() == PREFILL_NEW));
    let stats = engine.stats();
    assert_eq!(stats.prefill_rows, PREFILL_REQS * (1 + PROMPT_LEN));
    let chunked_tok_s = stats.prefill_rows as f64 / prefill_s;

    let mut ttfts_ms: Vec<f64> = responses
        .iter()
        .map(|r| {
            let step = r.first_token_step.expect("every request generated");
            cum_ms_by_step[step]
        })
        .collect();
    let ttft_p50 = percentile(&mut ttfts_ms, 50.0);
    let ttft_p99 = percentile(&mut ttfts_ms, 99.0);
    let speedup = chunked_tok_s / sequential_tok_s;
    println!(
        "prefill ({PROMPT_LEN}-token prompts, chunk {PREFILL_CHUNK}): sequential \
         {sequential_tok_s:>7.1} tok/s -> chunked {chunked_tok_s:>8.1} tok/s ({speedup:.2}x)  \
         TTFT p50 {ttft_p50:.1} ms / p99 {ttft_p99:.1} ms (sequential {sequential_ttft_ms:.1} ms)"
    );
    // The token-at-a-time baseline feeds one-row chunks, which now take
    // the fused decode-attention drain — the sequential side got faster,
    // so the chunked advantage tightened from >= 5x to >= 4x.
    assert!(
        speedup >= 4.0,
        "chunked prefill must be >= 4x token-at-a-time on a {PROMPT_LEN}-token prompt \
         (got {speedup:.2}x)"
    );

    // KV residency: what the flat max_len-row per-session reservation
    // cost versus the pages actually held at the concurrency peak.
    let paged_per_session = stats.kv_bytes_peak / PREFILL_REQS;
    let flat_int8 = cfg.n_layers * 2 * cfg.max_len * cfg.d_model;
    let flat_fp32 = flat_int8 * std::mem::size_of::<f32>();
    let gain_fp32 = flat_fp32 as f64 / paged_per_session as f64;
    let gain_int8 = flat_int8 as f64 / paged_per_session as f64;
    println!(
        "kv per session: flat fp32 {:.2} MB / flat int8 {:.2} MB -> paged int8 {:.2} MB \
         ({gain_fp32:.2}x sessions vs flat fp32, {gain_int8:.2}x vs flat int8 at a fixed budget)",
        flat_fp32 as f64 / (1 << 20) as f64,
        flat_int8 as f64 / (1 << 20) as f64,
        paged_per_session as f64 / (1 << 20) as f64,
    );
    assert!(
        gain_fp32 >= 4.0,
        "paged INT8 KV must fit >= 4x the sessions of the flat FP32 reservation \
         (got {gain_fp32:.2}x)"
    );

    (
        PrefillBench {
            prompt_tokens: PROMPT_LEN,
            new_tokens: PREFILL_NEW,
            requests: PREFILL_REQS,
            prefill_chunk: PREFILL_CHUNK,
            max_prefill_rows: MAX_PREFILL_ROWS,
            sequential_prefill_tok_s: sequential_tok_s,
            chunked_prefill_tok_s: chunked_tok_s,
            prefill_speedup: speedup,
            sequential_ttft_ms,
            ttft_ms_p50: ttft_p50,
            ttft_ms_p99: ttft_p99,
        },
        KvBench {
            page_rows: tensor::kvpool::page_rows_from_env(tensor::kvpool::DEFAULT_PAGE_ROWS),
            max_len: cfg.max_len,
            paged_int8_bytes_per_session: paged_per_session,
            flat_int8_bytes_per_session: flat_int8,
            flat_fp32_bytes_per_session: flat_fp32,
            kv_budget_bytes: KV_BUDGET,
            flat_fp32_sessions_in_budget: KV_BUDGET / flat_fp32,
            flat_int8_sessions_in_budget: KV_BUDGET / flat_int8,
            paged_int8_sessions_in_budget: KV_BUDGET / paged_per_session,
            session_gain_vs_flat_fp32: gain_fp32,
            session_gain_vs_flat_int8: gain_int8,
        },
    )
}
