//! E1 — Table I: variations on the Transformer and BERT architectures,
//! extended with the Fig. 4 partition counts that the `d_model = 64h`
//! pattern implies.

use serde::Serialize;
use transformer::config::ModelConfig;

#[derive(Serialize)]
struct Row {
    name: String,
    d_model: usize,
    d_ff: usize,
    h: usize,
    d_k: usize,
    follows_64h: bool,
    wg_panels: usize,
    w1_panels: usize,
    w2_panels: usize,
}

fn main() {
    let mut rows = Vec::new();
    for cfg in ModelConfig::table1() {
        let (wg, w1, w2) = accel::partition::expected_panel_counts(cfg.h);
        rows.push(Row {
            name: cfg.name.clone(),
            d_model: cfg.d_model,
            d_ff: cfg.d_ff,
            h: cfg.h,
            d_k: cfg.d_k(),
            follows_64h: cfg.follows_64h_pattern(),
            wg_panels: wg,
            w1_panels: w1,
            w2_panels: w2,
        });
    }
    println!("Table I — variations on the Transformer and BERT architectures");
    println!(
        "(paper columns: d_model, d_ff, h; extension: d_k, 64h pattern, Fig.4 panel counts)\n"
    );
    let table = bench_harness::render_table(
        &[
            "model",
            "d_model",
            "d_ff",
            "h",
            "d_k",
            "64h?",
            "W_G panels",
            "W_1 panels",
            "W_2 panels",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.d_model.to_string(),
                    r.d_ff.to_string(),
                    r.h.to_string(),
                    r.d_k.to_string(),
                    r.follows_64h.to_string(),
                    r.wg_panels.to_string(),
                    r.w1_panels.to_string(),
                    r.w2_panels.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    bench_harness::write_json("table1", &rows);
}
