//! E7/E10 — Table II: utilization report for the accelerator and its
//! primary modules on the VU13P, from the calibrated area model, plus
//! the 200 MHz / 16.7 W operating point.

use accel::area::{estimate_power, AreaModel};
use accel::AccelConfig;
use hwsim::resources::Device;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: String,
    lut: f64,
    ff: f64,
    bram: f64,
    dsp: f64,
}

fn main() {
    let cfg = AccelConfig::paper_default();
    let model = AreaModel::new(cfg.clone());
    let rows: Vec<Row> = model
        .table2()
        .into_iter()
        .map(|m| Row {
            name: m.name,
            lut: m.resources.lut,
            ff: m.resources.ff,
            bram: m.resources.bram,
            dsp: m.resources.dsp,
        })
        .collect();

    println!(
        "Table II — utilization report (model: {}, s = {})",
        cfg.model.name, cfg.s
    );
    println!("paper reference row 'Top': 471563 LUT / 217859 FF / 498 BRAM / 129 DSP\n");
    let table = bench_harness::render_table(
        &["module", "LUT", "CLB Registers", "BRAM", "DSP"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.0}", r.lut),
                    format!("{:.0}", r.ff),
                    format!("{:.1}", r.bram),
                    format!("{:.0}", r.dsp),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");

    let device = Device::vu13p();
    let (l, f, b, d) = device.utilization_pct(&model.top());
    println!(
        "Top utilization of {}: {l:.1}% LUT, {f:.1}% FF, {b:.1}% BRAM, {d:.1}% DSP",
        device.name
    );

    // Extension: the Fig. 5 activation buffers live in URAM (a separate
    // Vivado column, absent from the paper's table).
    let dm = accel::datamem::plan(&cfg);
    println!(
        "\nData memory (Fig. 5 activation buffers, URAM): {} blocks of {} available ({:.1} Mbit total)",
        dm.total_uram,
        accel::datamem::VU13P_URAM,
        dm.total_bits as f64 / 1e6
    );

    let p = estimate_power(&model, &cfg);
    println!(
        "\nOperating point: {:.0} MHz, power = {:.1} W total ({:.1} W dynamic + {:.1} W static); paper: 16.7 W (13.3 + 3.4)",
        cfg.clock.as_mhz(),
        p.total_w(),
        p.dynamic_w,
        p.static_w
    );
    bench_harness::write_json("table2", &rows);
}
