//! E13 (extension) — per-tensor vs per-channel weight quantization.
//!
//! The paper quantizes per tensor (one scale per weight matrix). A
//! per-output-column scheme costs one extra requantizer constant per
//! drain column and nothing else in this architecture; this harness
//! quantifies how much datapath error it buys back on the ResBlocks.

use quantized::calib::MhaScales;
use quantized::{QuantFfnResBlock, QuantMhaResBlock, QuantScheme, SoftmaxMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use tensor::Mat;
use transformer::config::ModelConfig;
use transformer::ffn::FfnResBlock;
use transformer::mha::MhaResBlock;

#[derive(Serialize)]
struct Row {
    block: String,
    scheme: String,
    rms_error: f64,
    max_error: f64,
    sqnr_db: f64,
}

fn errors(got: &Mat<f32>, want: &Mat<f32>) -> (f64, f64, f64) {
    let mse = tensor::ops::mse(got, want).unwrap() as f64;
    let max = got
        .as_slice()
        .iter()
        .zip(want.as_slice())
        .map(|(a, b)| (a - b).abs() as f64)
        .fold(0.0, f64::max);
    (mse.sqrt(), max, quantized::sqnr::sqnr_db(want, got))
}

fn main() {
    let cfg = ModelConfig {
        name: "ablation".into(),
        d_model: 128,
        d_ff: 512,
        h: 2,
        n_layers: 1,
        vocab: 16,
        max_len: 16,
    };
    let s = 16;
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let mut mha = MhaResBlock::new(&cfg, &mut rng);
    let mut ffn = FfnResBlock::new(&cfg, &mut rng);
    let calib: Vec<Mat<f32>> = (0..8)
        .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
        .collect();
    let test: Vec<Mat<f32>> = (0..8)
        .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
        .collect();

    // Shared activation scales so the comparison isolates the weight
    // granularity: calibrate once via the per-tensor constructor's path.
    let baseline = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let scales = MhaScales {
        x_q: baseline.projections().0.in_scale(),
        x_kv: baseline.projections().1.in_scale(),
        q: baseline.projections().0.out_scale(),
        k: baseline.projections().1.out_scale(),
        v: baseline.projections().2.out_scale(),
        p: baseline.p_scale(),
        out: baseline.out_scale(),
    };

    let mut rows = Vec::new();
    for (scheme, name) in [
        (QuantScheme::PerTensor, "per-tensor (paper)"),
        (QuantScheme::PerChannel, "per-channel"),
    ] {
        let qmha = QuantMhaResBlock::from_f32_with_scales_scheme(
            &mha,
            scales,
            SoftmaxMode::Hardware,
            scheme,
        );
        let mut rms_acc = 0.0;
        let mut max_acc: f64 = 0.0;
        let mut sqnr_acc = 0.0;
        for x in &test {
            let want = mha.forward(x, x, x, None);
            let got = qmha.forward_f32(x, x, None);
            let (rms, max, db) = errors(&got, &want);
            rms_acc += rms;
            max_acc = max_acc.max(max);
            sqnr_acc += db;
        }
        rows.push(Row {
            block: "MHA ResBlock".into(),
            scheme: name.into(),
            rms_error: rms_acc / test.len() as f64,
            max_error: max_acc,
            sqnr_db: sqnr_acc / test.len() as f64,
        });
    }

    let ffn_baseline = QuantFfnResBlock::from_f32(&ffn, &calib);
    let fscales = quantized::calib::FfnScales {
        x: ffn_baseline.sublayers().0.in_scale(),
        hidden: ffn_baseline.sublayers().0.out_scale(),
        out: ffn_baseline.out_scale(),
    };
    for (scheme, name) in [
        (QuantScheme::PerTensor, "per-tensor (paper)"),
        (QuantScheme::PerChannel, "per-channel"),
    ] {
        let qffn = QuantFfnResBlock::from_f32_with_scales_scheme(&ffn, fscales, scheme);
        let mut rms_acc = 0.0;
        let mut max_acc: f64 = 0.0;
        let mut sqnr_acc = 0.0;
        for x in &test {
            let want = ffn.forward(x);
            let got = qffn.forward_f32(x);
            let (rms, max, db) = errors(&got, &want);
            rms_acc += rms;
            max_acc = max_acc.max(max);
            sqnr_acc += db;
        }
        rows.push(Row {
            block: "FFN ResBlock".into(),
            scheme: name.into(),
            rms_error: rms_acc / test.len() as f64,
            max_error: max_acc,
            sqnr_db: sqnr_acc / test.len() as f64,
        });
    }

    println!(
        "E13 — weight-quantization granularity ablation (d_model = {}, s = {s})",
        cfg.d_model
    );
    println!("(LayerNorm-domain outputs are O(1); errors are absolute)\n");
    let table = bench_harness::render_table(
        &["block", "scheme", "RMS error", "max error", "SQNR dB"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.block.clone(),
                    r.scheme.clone(),
                    format!("{:.4}", r.rms_error),
                    format!("{:.4}", r.max_error),
                    format!("{:.1}", r.sqnr_db),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!("hardware cost of per-channel: one requantizer constant per drain column; no datapath change.");
    println!(
        "note: Xavier-random weights have homogeneous column norms, so the two schemes tie here;"
    );
    println!(
        "the stress case below shows the gap once column magnitudes skew (as in trained models)."
    );

    // Stress case: one dominant output column (the regime trained
    // models drift toward), where per-tensor quantization crushes the
    // resolution of every other column.
    let mut rng2 = StdRng::seed_from_u64(0xD00D);
    let mut w = tensor::init::normal(&mut rng2, 64, 16, 0.05);
    for r in 0..64 {
        w[(r, 0)] *= 80.0;
    }
    let lin = transformer::linear::Linear::from_parts("skew", w, vec![0.0; 16]);
    let x = tensor::init::normal(&mut rng2, 8, 64, 1.0);
    let want = quantized::calib::linear_f32(&lin, &x);
    let in_s = fixedmath::quant::QuantParams::from_max_abs(tensor::ops::max_abs(&x));
    let out_s = fixedmath::quant::QuantParams::from_max_abs(tensor::ops::max_abs(&want));
    let mut stress = Vec::new();
    for (scheme, name) in [
        (QuantScheme::PerTensor, "per-tensor (paper)"),
        (QuantScheme::PerChannel, "per-channel"),
    ] {
        let q = quantized::QLinear::from_f32_scheme(&lin, in_s, out_s, scheme);
        let got = q.dequantize_output(&q.forward(&q.quantize_input(&x)));
        let (rms, max, db) = errors(&got, &want);
        stress.push(Row {
            block: "skewed linear (stress)".into(),
            scheme: name.into(),
            rms_error: rms,
            max_error: max,
            sqnr_db: db,
        });
    }
    println!();
    let table = bench_harness::render_table(
        &["block", "scheme", "RMS error", "max error", "SQNR dB"],
        &stress
            .iter()
            .map(|r| {
                vec![
                    r.block.clone(),
                    r.scheme.clone(),
                    format!("{:.4}", r.rms_error),
                    format!("{:.4}", r.max_error),
                    format!("{:.1}", r.sqnr_db),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    rows.extend(stress);
    bench_harness::write_json("quant_scheme", &rows);
}
