//! E9 — Section V-A: the two-step INT8 quantization study.
//!
//! The paper trains Transformer-base on IWSLT'16 de-en and reports
//! BLEU 23.88 (FP32) → 23.48 (INT8, FP32 softmax) → 23.57 (INT8 +
//! hardware softmax). The corpus is not redistributable, so this
//! harness trains a small Transformer from scratch on a synthetic
//! reversal task, quantizes it with the same two-step recipe, and
//! scores real corpus BLEU. The shape target is: a small BLEU cost for
//! INT8, and a negligible delta for the shift-add softmax on top.
//!
//! Run with `--release`; training takes a minute or two.

use quantized::{QuantSeq2Seq, SoftmaxMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};
use transformer::train::{evaluate, study_config, train, TrainSpec};

#[derive(Serialize)]
struct Row {
    task: String,
    step: String,
    bleu: f64,
    exact_match: f32,
    paper_bleu: f64,
}

fn run_task(task: Task) -> Vec<Row> {
    let cfg = study_config();
    println!(
        "E9 — quantization study: training '{}' (d_model={}, h={}, {}+{} layers) on the {} task...",
        cfg.name,
        cfg.d_model,
        cfg.h,
        cfg.n_layers,
        cfg.n_layers,
        task.name()
    );

    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(task, cfg.vocab, 4, 10);
    let spec = TrainSpec {
        steps: 1200,
        batch: 8,
        warmup: 150,
        lr_scale: 0.5,
        ..TrainSpec::default()
    };
    let t0 = std::time::Instant::now();
    let report = train(&mut model, &gen, &spec);
    println!(
        "trained {} steps in {:.1?}; loss {:.3} -> {:.3}",
        spec.steps,
        t0.elapsed(),
        report.losses[0],
        report.final_loss
    );

    let mut eval_rng = StdRng::seed_from_u64(0xE7A1);
    let test = gen.corpus(64, &mut eval_rng);
    let calib = gen.corpus(16, &mut eval_rng);

    let fp32 = evaluate(&mut model, &test);
    println!(
        "FP32: BLEU {:.2}, exact match {:.0}%",
        fp32.bleu,
        100.0 * fp32.exact_match
    );

    let q1 = QuantSeq2Seq::from_trained(&model, &calib, SoftmaxMode::Fp32);
    let e1 = q1.evaluate_parallel(&test, 8);
    println!(
        "INT8 + FP32 softmax: BLEU {:.2}, exact match {:.0}%",
        e1.bleu,
        100.0 * e1.exact_match
    );

    let mut q2 = q1.clone();
    q2.set_softmax_mode(SoftmaxMode::Hardware);
    let e2 = q2.evaluate_parallel(&test, 8);
    println!(
        "INT8 + hardware softmax: BLEU {:.2}, exact match {:.0}%",
        e2.bleu,
        100.0 * e2.exact_match
    );

    let rows = vec![
        Row {
            task: task.name().into(),
            step: "FP32".into(),
            bleu: fp32.bleu,
            exact_match: fp32.exact_match,
            paper_bleu: 23.88,
        },
        Row {
            task: task.name().into(),
            step: "INT8 + FP32 softmax (step 1)".into(),
            bleu: e1.bleu,
            exact_match: e1.exact_match,
            paper_bleu: 23.48,
        },
        Row {
            task: task.name().into(),
            step: "INT8 + hardware softmax (step 2)".into(),
            bleu: e2.bleu,
            exact_match: e2.exact_match,
            paper_bleu: 23.57,
        },
    ];

    println!();
    let table = bench_harness::render_table(
        &[
            "configuration",
            "BLEU",
            "exact match",
            "paper BLEU (IWSLT de-en)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.step.clone(),
                    format!("{:.2}", r.bleu),
                    format!("{:.0}%", 100.0 * r.exact_match),
                    format!("{:.2}", r.paper_bleu),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    rows
}

fn main() {
    // Two synthetic corpora: pure reordering (reverse) and the
    // grammar-like SVO->SOV clause task (closest stand-in for de->en).
    let mut all = Vec::new();
    for task in [Task::Reverse, Task::Grammar] {
        all.extend(run_task(task));
        println!();
    }
    println!("shape targets: INT8 drop small relative to FP32; hardware-softmax delta ~0.");
    bench_harness::write_json("quantization", &all);
}
