//! E5 — Fig. 6: the scaled masked-softmax module. Reports (a) the
//! accuracy of the shift-add EXP/LN pipeline against exact FP32
//! softmax, (b) the module latency and the Section-IV hiding condition
//! against the `V·W_Vi` projection.

use accel::softmax_module::{hides_behind_vw, latency_after_last_input};
use fixedmath::explog::{exp_unit_max_abs_error, exp_unit_pwl2_max_abs_error};
use quantized::softmax::{scaled_masked_softmax, SoftmaxMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use tensor::Mat;

#[derive(Serialize)]
struct AccuracyRow {
    s: usize,
    masked: bool,
    max_code_err: i32,
    mean_abs_code_err: f64,
    row_sum_min: i32,
    row_sum_max: i32,
}

fn accuracy(s: usize, masked: bool, seed: u64) -> AccuracyRow {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = Mat::from_fn(s, s, |_, _| rng.random_range(-80_000..80_000i32));
    let mask = masked.then(|| tensor::ops::causal_mask(s));
    let hw = scaled_masked_softmax(&d, 5e-5, 64, mask.as_ref(), SoftmaxMode::Hardware);
    let sw = scaled_masked_softmax(&d, 5e-5, 64, mask.as_ref(), SoftmaxMode::Fp32);
    let mut max_err = 0i32;
    let mut sum_err = 0f64;
    for (a, b) in hw.as_slice().iter().zip(sw.as_slice()) {
        let e = (*a as i32 - *b as i32).abs();
        max_err = max_err.max(e);
        sum_err += e as f64;
    }
    let mut row_sum_min = i32::MAX;
    let mut row_sum_max = i32::MIN;
    for r in 0..s {
        let sum: i32 = hw.row(r).iter().map(|&x| x as i32).sum();
        row_sum_min = row_sum_min.min(sum);
        row_sum_max = row_sum_max.max(sum);
    }
    AccuracyRow {
        s,
        masked,
        max_code_err: max_err,
        mean_abs_code_err: sum_err / hw.len() as f64,
        row_sum_min,
        row_sum_max,
    }
}

#[derive(Serialize)]
struct LatencyRow {
    s: usize,
    latency_cycles: u64,
    vw_stream_plus_drain: u64,
    hidden: bool,
}

fn main() {
    println!("E5 — Fig. 6 softmax module\n");
    println!(
        "EXP unit max abs error over [-16, 0]: {:.4} (paper's 1-segment 2^f)",
        exp_unit_max_abs_error()
    );
    println!(
        "                                      {:.4} (2-segment PWL ablation: one comparator + two adders)\n",
        exp_unit_pwl2_max_abs_error()
    );

    let acc: Vec<AccuracyRow> = [16usize, 64, 128]
        .iter()
        .flat_map(|&s| [accuracy(s, false, 7), accuracy(s, true, 8)])
        .collect();
    println!("accuracy vs exact FP32 softmax (INT8 probability codes, 0..=127):");
    let table = bench_harness::render_table(
        &[
            "s",
            "masked",
            "max |Δcode|",
            "mean |Δcode|",
            "row-sum min",
            "row-sum max",
        ],
        &acc.iter()
            .map(|r| {
                vec![
                    r.s.to_string(),
                    r.masked.to_string(),
                    r.max_code_err.to_string(),
                    format!("{:.2}", r.mean_abs_code_err),
                    r.row_sum_min.to_string(),
                    r.row_sum_max.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");

    let d_model = 512;
    let lat: Vec<LatencyRow> = [16usize, 32, 64, 128, 256, 512]
        .iter()
        .map(|&s| LatencyRow {
            s,
            latency_cycles: latency_after_last_input(s).get(),
            vw_stream_plus_drain: (d_model + 64) as u64,
            hidden: hides_behind_vw(s, d_model),
        })
        .collect();
    println!("module latency vs the V*W_V hiding budget (d_model = 512):");
    let table = bench_harness::render_table(
        &["s", "softmax cycles", "V*W_V budget", "hidden?"],
        &lat.iter()
            .map(|r| {
                vec![
                    r.s.to_string(),
                    r.latency_cycles.to_string(),
                    r.vw_stream_plus_drain.to_string(),
                    r.hidden.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    bench_harness::write_json("softmax_module_accuracy", &acc);
    bench_harness::write_json("softmax_module_latency", &lat);
}
