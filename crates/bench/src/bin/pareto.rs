//! E16 (extension) — design-space Pareto analysis: which array sizes
//! are worth building, per target model and per workload, and where the
//! paper's `s = 64` sits.

use accel::sweep::{evaluate_point_fixed_workload, pareto_latency_vs_lut, sweep};
use serde::Serialize;
use transformer::config::ModelConfig;

#[derive(Serialize)]
struct Out {
    grid: Vec<accel::sweep::DesignPoint>,
    frontier_own_s: Vec<accel::sweep::DesignPoint>,
    frontier_fixed_s64: Vec<accel::sweep::DesignPoint>,
}

fn print_points(title: &str, pts: &[accel::sweep::DesignPoint]) {
    println!("{title}");
    let table = bench_harness::render_table(
        &["model", "s", "layer us", "LUT", "BRAM", "W", "fits"],
        &pts.iter()
            .map(|p| {
                vec![
                    p.model.clone(),
                    p.s.to_string(),
                    format!("{:.1}", p.layer_latency_us),
                    format!("{:.0}", p.lut),
                    format!("{:.0}", p.bram),
                    format!("{:.1}", p.power_w),
                    p.fits.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
}

fn main() {
    println!("E16 — design-space Pareto analysis on the VU13P\n");
    let grid = sweep(&ModelConfig::table1(), &[16, 32, 64, 128, 256]);
    print_points(
        "full grid (each array at its own max sequence length):",
        &grid,
    );

    let frontier = pareto_latency_vs_lut(&grid);
    print_points(
        "Pareto frontier (layer latency vs LUTs, feasible only):",
        &frontier,
    );

    // The deployment question the paper answers: fixed 64-token
    // sentences, candidate arrays 64..256 rows.
    let base = ModelConfig::transformer_base();
    let fixed: Vec<_> = [64usize, 96, 128, 192, 256]
        .iter()
        .map(|&array_s| evaluate_point_fixed_workload(&base, array_s, 64))
        .collect();
    print_points(
        "fixed s = 64 workload on larger arrays (rows idle, LUTs wasted):",
        &fixed,
    );
    let fixed_frontier = pareto_latency_vs_lut(&fixed);
    println!(
        "frontier of the fixed-workload sweep: s = {} only — the paper's sizing rule\n(array rows = max sequence length) is Pareto-optimal.",
        fixed_frontier[0].s
    );

    bench_harness::write_json(
        "pareto",
        &Out {
            grid,
            frontier_own_s: frontier,
            frontier_fixed_s64: fixed_frontier,
        },
    );
}
