//! Runs every fast experiment binary in sequence (everything except the
//! training-heavy E9 quantization study) and leaves the JSON artifacts
//! under `results/`. Convenience driver for regenerating EXPERIMENTS.md
//! inputs:
//!
//! ```text
//! cargo run -p bench-harness --release --bin report
//! cargo run -p bench-harness --release --bin quantization
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "eq3_ratio",
        "partition_check",
        "cycle_counts",
        "softmax_module",
        "layernorm_latency",
        "table2",
        "table3",
        "scaling",
        "full_inference",
        "quant_scheme",
        "gpu_crossover",
        "emit_rtl",
        "pareto",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe dir").to_path_buf();
    let release = dir.ends_with("release");
    for bin in bins {
        println!("\n=== {bin} ===\n");
        let direct = dir.join(bin);
        let status = if direct.exists() {
            Command::new(&direct).status()
        } else {
            // sibling binary not built yet: go through cargo with the
            // same profile
            let mut cmd = Command::new("cargo");
            cmd.args(["run", "-q", "-p", "bench-harness"]);
            if release {
                cmd.arg("--release");
            }
            cmd.args(["--bin", bin]).status()
        }
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("\nall experiments complete; JSON artifacts in results/");
    println!("(run the training-based E9 separately: cargo run -p bench-harness --release --bin quantization)");
}
