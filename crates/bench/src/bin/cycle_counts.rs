//! E4 — Algorithm-1 cycle counts (paper: 21,344 MHA / 42,099 FFN at
//! s = 64, batch 1), under the published policy and the scheduling
//! ablations, bracketing the published numbers.

use accel::{AccelConfig, SchedPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    mha_cycles: u64,
    ffn_cycles: u64,
    mha_sa_util: f64,
    ffn_sa_util: f64,
}

fn run(policy: SchedPolicy, name: &str) -> Row {
    let mut cfg = AccelConfig::paper_default();
    cfg.sched = policy;
    let mha = accel::scheduler::schedule_mha(&cfg);
    let ffn = accel::scheduler::schedule_ffn(&cfg);
    Row {
        policy: name.into(),
        mha_cycles: mha.cycles.get(),
        ffn_cycles: ffn.cycles.get(),
        mha_sa_util: mha.sa_utilization,
        ffn_sa_util: ffn.sa_utilization,
    }
}

fn main() {
    let rows = vec![
        run(SchedPolicy::naive(), "naive (no optimisation)"),
        run(SchedPolicy::paper(), "paper (softmax overlap + LN step1+2)"),
        run(SchedPolicy::aggressive(), "aggressive (+ drain overlap)"),
    ];
    println!("E4 — ResBlock cycle counts (Transformer-base, s = 64, batch 1)");
    println!("paper reference: MHA 21,344 cycles / FFN 42,099 cycles\n");
    let table = bench_harness::render_table(
        &[
            "policy",
            "MHA cycles",
            "FFN cycles",
            "MHA SA util",
            "FFN SA util",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    r.mha_cycles.to_string(),
                    r.ffn_cycles.to_string(),
                    format!("{:.1}%", 100.0 * r.mha_sa_util),
                    format!("{:.1}%", 100.0 * r.ffn_sa_util),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let paper_row = &rows[1];
    println!(
        "model-vs-paper: MHA {} vs 21,344 ({:+.1}%), FFN {} vs 42,099 ({:+.1}%)",
        paper_row.mha_cycles,
        100.0 * (paper_row.mha_cycles as f64 - 21_344.0) / 21_344.0,
        paper_row.ffn_cycles,
        100.0 * (paper_row.ffn_cycles as f64 - 42_099.0) / 42_099.0,
    );
    bench_harness::write_json("cycle_counts", &rows);
}
