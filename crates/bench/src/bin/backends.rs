//! E19 (extension) — cross-backend design-space exploration: the paper's
//! full-size systolic array vs a KV260-class tiled array vs an
//! FTRANS-style block-circulant FFN unit, all lowered from the same
//! graph IR and placed on a cycles × LUT × accuracy Pareto front.

use accel::explorer::{explore_default, ExplorerReport};

fn print_points(title: &str, pts: &[accel::explorer::BackendPoint]) {
    println!("{title}");
    let table = bench_harness::render_table(
        &[
            "backend", "wl", "config", "cycles", "us", "LUT", "DSP", "BRAM", "DDR B", "SQNR dB",
        ],
        &pts.iter()
            .map(|p| {
                vec![
                    p.backend.clone(),
                    p.workload.clone(),
                    p.config.clone(),
                    p.cycles.to_string(),
                    format!("{:.1}", p.latency_us),
                    format!("{:.0}", p.lut),
                    format!("{:.0}", p.dsp),
                    format!("{:.0}", p.bram),
                    p.ddr_bytes.to_string(),
                    p.sqnr_db.map_or("exact".into(), |db| format!("{db:.1}")),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
}

fn main() {
    println!("E19 — cross-backend explorer at the paper design point\n");
    let report = explore_default();
    print_points("all candidates:", &report.points);
    print_points(
        "MHA Pareto front (cycles x LUT x noise):",
        &report.mha_front,
    );
    print_points(
        "FFN Pareto front (cycles x LUT x noise):",
        &report.ffn_front,
    );
    println!(
        "front backends — MHA: {:?}, FFN: {:?}",
        ExplorerReport::front_backends(&report.mha_front),
        ExplorerReport::front_backends(&report.ffn_front),
    );
    bench_harness::write_json("BENCH_backends", &report);
}
