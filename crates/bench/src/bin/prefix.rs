//! E20 — shared-prefix KV cache: TTFT and KV residency under prefix
//! reuse.
//!
//! Serving fleets front most requests with a common preamble (system
//! prompt, few-shot examples, retrieval header). The serving layer's
//! radix prefix index snapshots every prompt's page-aligned prefix at
//! the prefill→decode transition; a later request whose prompt extends a
//! cached prefix **forks** the snapshot — sharing its KV pages
//! copy-on-write — and prefills only the suffix.
//!
//! Two sections:
//!
//! * **TTFT sweep** — sequential requests (`max_batch = 1`) over a
//!   paper-shape 2-layer decoder at 0% / 50% / 90% prompt share (the
//!   leading fraction of every prompt that is a common prefix), each
//!   level run with the cache disabled and enabled in the same process.
//!   Time-to-first-token is each request's own prefill window (engine
//!   wall time from its admission to its `first_token_step`). Asserted:
//!   ≥ 3× TTFT p50 at 90% share.
//! * **KV residency** — `N` *concurrent* requests with a fully shared
//!   prompt against a warmed cache: copy-on-write page sharing must make
//!   the fleet's peak KV cost approximately **one** prompt's pages plus
//!   per-request decode tails (asserted ≤ 2× one session's bytes), where
//!   the cold engine pays the prompt `N` times — which is exactly the
//!   sessions-per-KV-budget multiplier reported.
//!
//! Bit-identity of hit-path decode is pinned separately
//! (`tests/prefix_identity.rs`); this binary measures what the reuse
//! buys. Results land in `results/BENCH_prefix.json`; run with
//! `cargo run --release --bin prefix`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use serving::{ContinuousBatcher, EngineConfig, Request, Response};
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};

/// Prompt length per request (tokens, before the implicit `BOS` row).
const PROMPT_LEN: usize = 256;
/// Tokens decoded per request.
const MAX_NEW: usize = 8;
/// Requests per share level in the sequential TTFT sweep.
const N_REQUESTS: usize = 8;
/// Concurrent requests in the KV-residency section.
const N_CONCURRENT: usize = 8;
/// Prompt rows a prefilling request may consume per engine step.
const PREFILL_CHUNK: usize = 64;
/// Fixed KV memory budget for the sessions-per-budget comparison.
const KV_BUDGET: usize = 256 << 20;

/// Nearest-rank percentile (`q` in 0..=100) of an unsorted sample set.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "empty sample set");
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// One share level of the sequential TTFT sweep, cold (cache disabled)
/// vs warm (cache enabled) on the identical request stream.
#[derive(Serialize)]
struct SharePoint {
    /// Fraction of every prompt that is the common leading prefix.
    share: f64,
    shared_tokens: usize,
    /// Cold-engine TTFT percentiles (ms).
    cold_ttft_ms_p50: f64,
    cold_ttft_ms_p99: f64,
    /// Warm-engine TTFT percentiles (ms).
    warm_ttft_ms_p50: f64,
    warm_ttft_ms_p99: f64,
    /// Cold-over-warm TTFT p50 — the headline reuse win.
    ttft_speedup_p50: f64,
    /// Prefill rows each engine actually ingested.
    cold_prefill_rows: usize,
    warm_prefill_rows: usize,
    prefix_hits: usize,
    prefix_misses: usize,
    /// Prompt rows admissions reattached instead of re-prefilling.
    prefix_rows_reused: usize,
}

/// The concurrent fully-shared-prompt residency comparison.
#[derive(Serialize)]
struct KvSharing {
    requests: usize,
    prompt_tokens: usize,
    /// Peak resident KV bytes, cold engine (every session pays its whole
    /// prompt).
    cold_kv_bytes_peak: usize,
    /// Peak resident KV bytes, warm engine (prompt pages shared
    /// copy-on-write across all sessions and the cache entry; shared
    /// pages counted once).
    warm_kv_bytes_peak: usize,
    /// `warm_peak / (cold_peak / N)` — what one *additional* fully
    /// shared session costs relative to a cold session. ~1 means the
    /// whole fleet rides one copy of the prompt (asserted ≤ 2).
    shared_session_cost_ratio: f64,
    kv_budget_bytes: usize,
    cold_sessions_in_budget: usize,
    warm_sessions_in_budget: usize,
    /// Concurrent-session gain at the fixed budget.
    session_gain: f64,
}

#[derive(Serialize)]
struct PrefixBench {
    model: String,
    d_model: usize,
    n_layers: usize,
    prompt_tokens: usize,
    new_tokens: usize,
    requests_per_level: usize,
    prefill_chunk: usize,
    page_rows: usize,
    points: Vec<SharePoint>,
    kv: KvSharing,
}

fn engine_config(prefix_cache_bytes: usize, max_batch: usize) -> EngineConfig {
    EngineConfig {
        max_batch,
        bucket_max_waste: usize::MAX,
        prefill_chunk: PREFILL_CHUNK,
        max_prefill_rows: PREFILL_CHUNK * 4,
        ignore_eos: true,
        prefix_cache_bytes,
        ..EngineConfig::default()
    }
}

/// Runs `reqs` sequentially (`max_batch = 1`) and returns each
/// request's TTFT in milliseconds (id order) plus the engine stats.
///
/// With one slot, request `i` is admitted on the step after request
/// `i-1`'s retirement, so its TTFT window is the cumulative wall time
/// from that step through its `first_token_step`.
fn sequential_ttfts(
    q: &quantized::QuantSeq2Seq,
    reqs: Vec<Request>,
    prefix_cache_bytes: usize,
) -> (Vec<f64>, serving::ServingStats) {
    let n = reqs.len();
    let mut engine =
        ContinuousBatcher::new(q, engine_config(prefix_cache_bytes, 1)).expect("nonzero max_batch");
    for r in reqs {
        engine.submit(r).expect("valid request");
    }
    let mut cum_ms: Vec<f64> = Vec::new();
    let mut total_ms = 0.0;
    loop {
        let t0 = Instant::now();
        if !engine.step() {
            break;
        }
        total_ms += t0.elapsed().as_secs_f64() * 1e3;
        cum_ms.push(total_ms);
    }
    let mut responses: Vec<Response> = engine.run_to_completion();
    assert_eq!(responses.len(), n);
    assert!(responses.iter().all(|r| r.tokens.len() == MAX_NEW));
    responses.sort_by_key(|r| r.id);
    let ttfts = responses
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let first = r.first_token_step.expect("every request generated");
            // Admission is the step after the previous request's last
            // decode step (requests run one at a time in id order).
            let admitted_after = if i == 0 {
                None
            } else {
                let prev = responses[i - 1]
                    .first_token_step
                    .expect("every request generated");
                Some(prev + MAX_NEW - 1)
            };
            match admitted_after {
                None => cum_ms[first],
                Some(p) => cum_ms[first] - cum_ms[p],
            }
        })
        .collect();
    (ttfts, engine.stats())
}

fn share_level(
    q: &quantized::QuantSeq2Seq,
    src: &[usize],
    share: f64,
    rng: &mut StdRng,
    vocab: usize,
) -> SharePoint {
    let shared_tokens = ((PROMPT_LEN as f64) * share).round() as usize;
    let common: Vec<usize> = (0..shared_tokens)
        .map(|_| rng.random_range(3..vocab))
        .collect();
    let reqs = || -> Vec<Request> {
        let mut tail_rng = StdRng::seed_from_u64(0x0E20_7A11 + shared_tokens as u64);
        (0..N_REQUESTS)
            .map(|id| {
                let mut prompt = common.clone();
                prompt.extend(
                    (0..PROMPT_LEN - shared_tokens).map(|_| tail_rng.random_range(3..vocab)),
                );
                Request::new(id as u64, src.to_vec(), MAX_NEW).with_prompt(prompt)
            })
            .collect()
    };
    let (mut cold, cold_stats) = sequential_ttfts(q, reqs(), 0);
    let (mut warm, warm_stats) = sequential_ttfts(q, reqs(), usize::MAX);
    let point = SharePoint {
        share,
        shared_tokens,
        cold_ttft_ms_p50: percentile(&mut cold, 50.0),
        cold_ttft_ms_p99: percentile(&mut cold, 99.0),
        warm_ttft_ms_p50: percentile(&mut warm, 50.0),
        warm_ttft_ms_p99: percentile(&mut warm, 99.0),
        ttft_speedup_p50: percentile(&mut cold, 50.0) / percentile(&mut warm, 50.0),
        cold_prefill_rows: cold_stats.prefill_rows,
        warm_prefill_rows: warm_stats.prefill_rows,
        prefix_hits: warm_stats.prefix_hits,
        prefix_misses: warm_stats.prefix_misses,
        prefix_rows_reused: warm_stats.prefix_rows_reused,
    };
    assert_eq!(cold_stats.prefix_hits, 0, "disabled cache must never hit");
    assert_eq!(
        point.cold_prefill_rows - point.warm_prefill_rows,
        point.prefix_rows_reused,
        "every reused row is a prefill row the warm engine skipped"
    );
    println!(
        "share {share:>4.0}%: TTFT p50 {:>7.1} ms -> {:>7.1} ms ({:.2}x)  p99 {:>7.1} -> {:>7.1} ms  \
         hits {}/{}  rows reused {}",
        point.cold_ttft_ms_p50,
        point.warm_ttft_ms_p50,
        point.ttft_speedup_p50,
        point.cold_ttft_ms_p99,
        point.warm_ttft_ms_p99,
        point.prefix_hits,
        point.prefix_hits + point.prefix_misses,
        point.prefix_rows_reused,
        share = share * 100.0,
    );
    point
}

/// `N` concurrent requests with a *fully* shared prompt: with the cache
/// warm, every admission forks the same snapshot and the prompt's pages
/// exist once; cold, each session materializes its own copy.
fn kv_sharing(q: &quantized::QuantSeq2Seq, src: &[usize], vocab: usize) -> KvSharing {
    let mut rng = StdRng::seed_from_u64(0xE20C0);
    let prompt: Vec<usize> = (0..PROMPT_LEN)
        .map(|_| rng.random_range(3..vocab))
        .collect();
    let run = |budget: usize| {
        let mut engine = ContinuousBatcher::new(q, engine_config(budget, N_CONCURRENT))
            .expect("nonzero max_batch");
        if budget > 0 {
            // Prime the cache with one solo request, so the concurrent
            // wave below hits on admission.
            engine
                .submit(Request::new(u64::MAX, src.to_vec(), MAX_NEW).with_prompt(prompt.clone()))
                .expect("valid request");
            engine.run_to_completion();
        }
        for id in 0..N_CONCURRENT {
            engine
                .submit(Request::new(id as u64, src.to_vec(), MAX_NEW).with_prompt(prompt.clone()))
                .expect("valid request");
        }
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), N_CONCURRENT);
        engine.stats()
    };
    let cold = run(0);
    let warm = run(usize::MAX);
    assert_eq!(warm.prefix_hits, N_CONCURRENT, "every admission must hit");
    let cold_per_session = cold.kv_bytes_peak / N_CONCURRENT;
    let cost_ratio = warm.kv_bytes_peak as f64 / cold_per_session as f64;
    let kv = KvSharing {
        requests: N_CONCURRENT,
        prompt_tokens: PROMPT_LEN,
        cold_kv_bytes_peak: cold.kv_bytes_peak,
        warm_kv_bytes_peak: warm.kv_bytes_peak,
        shared_session_cost_ratio: cost_ratio,
        kv_budget_bytes: KV_BUDGET,
        cold_sessions_in_budget: KV_BUDGET / cold_per_session,
        warm_sessions_in_budget: KV_BUDGET / (warm.kv_bytes_peak / N_CONCURRENT),
        session_gain: cold.kv_bytes_peak as f64 / warm.kv_bytes_peak as f64,
    };
    println!(
        "\nkv ({N_CONCURRENT} fully shared sessions): cold peak {:.2} MB -> warm peak {:.2} MB  \
         whole fleet costs {cost_ratio:.2}x one cold session  \
         sessions in {} MB budget: {} -> {}",
        kv.cold_kv_bytes_peak as f64 / (1 << 20) as f64,
        kv.warm_kv_bytes_peak as f64 / (1 << 20) as f64,
        KV_BUDGET >> 20,
        kv.cold_sessions_in_budget,
        kv.warm_sessions_in_budget,
    );
    assert!(
        cost_ratio <= 2.0,
        "{N_CONCURRENT} fully shared sessions must cost ~1x one session's KV \
         (copy-on-write pages; got {cost_ratio:.2}x)"
    );
    kv
}

fn main() {
    // Paper-shape ResBlocks, shallow and small-vocab so calibration is
    // cheap; prefill cost is dominated by the 512/2048 GEMMs either way.
    let cfg = ModelConfig {
        name: "Transformer-base-2L-prefix".into(),
        d_model: 512,
        d_ff: 2048,
        h: 8,
        n_layers: 2,
        vocab: 64,
        max_len: PROMPT_LEN + 4 * MAX_NEW,
    };
    println!(
        "building {} (d_model={}, {} layers, max_len={})...",
        cfg.name, cfg.d_model, cfg.n_layers, cfg.max_len
    );
    let mut rng = StdRng::seed_from_u64(0xE20_5EED);
    let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 6);
    let calib = gen.corpus(4, &mut StdRng::seed_from_u64(0xE20_CA11));
    let q = quantized::QuantSeq2Seq::from_trained(&fp32, &calib, quantized::SoftmaxMode::Hardware);
    // Every request shares one source: prefix reuse requires identical
    // encoder memory (the cross-attention K/V belong to the source).
    let src = calib[0].0.clone();

    let mut prompt_rng = StdRng::seed_from_u64(0xE20_0123);
    let points: Vec<SharePoint> = [0.0, 0.5, 0.9]
        .iter()
        .map(|&share| share_level(&q, &src, share, &mut prompt_rng, cfg.vocab))
        .collect();
    let at90 = points.last().expect("three share levels");
    assert!(
        at90.ttft_speedup_p50 >= 3.0,
        "prefix cache must cut TTFT p50 by >= 3x at 90% share (got {:.2}x)",
        at90.ttft_speedup_p50
    );

    let kv = kv_sharing(&q, &src, cfg.vocab);

    let report = PrefixBench {
        model: cfg.name.clone(),
        d_model: cfg.d_model,
        n_layers: cfg.n_layers,
        prompt_tokens: PROMPT_LEN,
        new_tokens: MAX_NEW,
        requests_per_level: N_REQUESTS,
        prefill_chunk: PREFILL_CHUNK,
        page_rows: tensor::kvpool::page_rows_from_env(tensor::kvpool::DEFAULT_PAGE_ROWS),
        points,
        kv,
    };
    bench_harness::write_json("BENCH_prefix", &report);
}
