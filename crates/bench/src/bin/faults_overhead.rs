//! E18 — ABFT checker overhead on the continuous-batching decode path.
//!
//! Runs the same paper-shape decode workload (`d_model = 512`,
//! `d_ff = 2048`, `h = 8`, 2 layers) twice through the serving engine:
//! once with the fault hooks fully off (the production fast path — one
//! relaxed atomic load per GEMM) and once with the ABFT row checker
//! enabled on every QLinear pass. The row check is O(mk + mn) against
//! the O(mkn) GEMM it guards, so the overhead target is **< 10%**
//! tokens/sec; the assertion below allows 20% to absorb CI noise.
//!
//! No fault plan is installed, so the checker-on run must also be
//! bit-identical to the checker-off run and record zero detections —
//! both are asserted. Results land in `results/BENCH_faults.json`; run
//! with `cargo run --release --bin faults_overhead`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use serving::{ContinuousBatcher, EngineConfig, Request, Response};
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};

/// Requests per measured run.
const N_REQUESTS: usize = 16;
/// Tokens decoded per request (`ignore_eos`, so both runs do identical
/// work).
const MAX_NEW: usize = 16;
/// Decode slots — mid-size batch where the weight GEMMs dominate.
const MAX_BATCH: usize = 8;
/// Timed repetitions per configuration (best-of, to shed scheduler
/// noise).
const REPS: usize = 3;

#[derive(Serialize)]
struct CheckerPoint {
    checker: bool,
    tokens: usize,
    /// Best-of-`REPS` wall time for the full decode loop.
    elapsed_s: f64,
    tokens_per_sec: f64,
    /// ABFT row checks performed (one per QLinear GEMM pass).
    checked: u64,
    /// Must stay 0: no fault plan is installed.
    detected: u64,
}

#[derive(Serialize)]
struct FaultsBench {
    model: String,
    d_model: usize,
    d_ff: usize,
    heads: usize,
    n_layers: usize,
    requests: usize,
    tokens_per_request: usize,
    max_batch: usize,
    off: CheckerPoint,
    on: CheckerPoint,
    /// Throughput lost to the checker, in percent of the unchecked rate.
    overhead_pct: f64,
}

/// One full decode of the workload; returns the responses plus the
/// wall-clock seconds and the checker counter deltas for this run.
fn run_once(q: &quantized::QuantSeq2Seq, srcs: &[Vec<usize>]) -> (Vec<Response>, f64, u64, u64) {
    let before = faults::counters();
    let mut engine = ContinuousBatcher::new(
        q,
        EngineConfig {
            max_batch: MAX_BATCH,
            bucket_max_waste: usize::MAX,
            ignore_eos: true,
            ..EngineConfig::default()
        },
    )
    .expect("nonzero max_batch");
    for (id, src) in srcs.iter().enumerate() {
        engine
            .submit(Request::new(id as u64, src.clone(), MAX_NEW))
            .expect("valid request");
    }
    let t0 = Instant::now();
    let responses = engine.run_to_completion();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(responses.len(), N_REQUESTS);
    assert!(responses.iter().all(|r| r.tokens.len() == MAX_NEW));
    let after = faults::counters();
    (
        responses,
        elapsed,
        after.checked - before.checked,
        after.detected - before.detected,
    )
}

/// Best-of-`REPS` measurement at one checker setting.
fn measure(
    q: &quantized::QuantSeq2Seq,
    srcs: &[Vec<usize>],
    checker: bool,
) -> (Vec<Response>, CheckerPoint) {
    faults::set_checker(Some(checker));
    let mut best: Option<(Vec<Response>, f64, u64, u64)> = None;
    for _ in 0..REPS {
        let run = run_once(q, srcs);
        if best.as_ref().is_none_or(|b| run.1 < b.1) {
            best = Some(run);
        }
    }
    faults::set_checker(None);
    let (responses, elapsed, checked, detected) = best.expect("REPS > 0");
    let tokens = N_REQUESTS * MAX_NEW;
    let point = CheckerPoint {
        checker,
        tokens,
        elapsed_s: elapsed,
        tokens_per_sec: tokens as f64 / elapsed,
        checked,
        detected,
    };
    (responses, point)
}

fn main() {
    let cfg = ModelConfig {
        name: "Transformer-base-2L".into(),
        d_model: 512,
        d_ff: 2048,
        h: 8,
        n_layers: 2,
        vocab: 64,
        max_len: 64,
    };
    println!(
        "building {} (d_model={}, d_ff={}, h={}, {} layers)...",
        cfg.name, cfg.d_model, cfg.d_ff, cfg.h, cfg.n_layers
    );
    let mut rng = StdRng::seed_from_u64(0xD0_0DE);
    let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 6);
    let calib = gen.corpus(4, &mut StdRng::seed_from_u64(0xCA11B));
    let q = quantized::QuantSeq2Seq::from_trained(&fp32, &calib, quantized::SoftmaxMode::Hardware);

    let srcs: Vec<Vec<usize>> = gen
        .corpus(N_REQUESTS, &mut StdRng::seed_from_u64(0xF00D))
        .into_iter()
        .map(|(s, _)| s)
        .collect();

    assert!(
        !faults::plan_active(),
        "overhead bench must run without a fault plan"
    );
    let (base_out, off) = measure(&q, &srcs, false);
    let (checked_out, on) = measure(&q, &srcs, true);

    // The checker only observes: same bits out, nothing to detect.
    assert_eq!(base_out, checked_out, "checker-on run changed output bits");
    assert_eq!(off.checked, 0, "checker-off run must not run the checker");
    assert!(on.checked > 0, "checker-on run must exercise the checker");
    assert_eq!(on.detected, 0, "fault-free run must detect nothing");

    let overhead_pct = 100.0 * (1.0 - on.tokens_per_sec / off.tokens_per_sec);
    println!(
        "checker off: {:>7.1} tok/s   checker on: {:>7.1} tok/s   overhead {:.1}% \
         ({} row checks)",
        off.tokens_per_sec, on.tokens_per_sec, overhead_pct, on.checked
    );
    assert!(
        overhead_pct < 20.0,
        "ABFT checker overhead {overhead_pct:.1}% exceeds the 20% ceiling (target < 10%)"
    );

    let report = FaultsBench {
        model: cfg.name.clone(),
        d_model: cfg.d_model,
        d_ff: cfg.d_ff,
        heads: cfg.h,
        n_layers: cfg.n_layers,
        requests: N_REQUESTS,
        tokens_per_request: MAX_NEW,
        max_batch: MAX_BATCH,
        off,
        on,
        overhead_pct,
    };
    bench_harness::write_json("BENCH_faults", &report);
}
