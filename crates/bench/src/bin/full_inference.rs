//! E12 (extension) — full-model inference latency, projected from the
//! calibrated per-ResBlock models: the paper's future-work target
//! ("an accelerator for the complete Transformer inference"), with the
//! weight-bandwidth constraint the multi-layer case introduces.

use accel::pipeline::{encoder_layer, full_inference, PipelineConfig};
use accel::AccelConfig;
use serde::Serialize;
use transformer::config::ModelConfig;

#[derive(Serialize)]
struct Row {
    model: String,
    bandwidth_b_per_cycle: u64,
    layer_stall_cycles: u64,
    encoder_us: f64,
    decoder_us: f64,
    sentence_us: f64,
}

fn main() {
    println!("E12 — full Transformer inference on the accelerator (s_src = s_tgt = 64)");
    println!("weight double-buffering hides loads behind compute; stalls appear when it can't\n");
    let mut rows = Vec::new();
    for model in [
        ModelConfig::transformer_base(),
        ModelConfig::transformer_big(),
    ] {
        for bw in [32u64, 64, 128, 256] {
            let cfg = AccelConfig {
                model: model.clone(),
                ..AccelConfig::paper_default()
            };
            let pcfg = PipelineConfig {
                weight_bandwidth_bytes_per_cycle: bw,
            };
            let layer = encoder_layer(&cfg, &pcfg);
            let rep = full_inference(&cfg, &pcfg, 64, 64);
            rows.push(Row {
                model: model.name.clone(),
                bandwidth_b_per_cycle: bw,
                layer_stall_cycles: layer.weight_stall.get(),
                encoder_us: cfg.clock.cycles_to_us(rep.encoder_cycles),
                decoder_us: cfg.clock.cycles_to_us(rep.decoder_cycles),
                sentence_us: rep.total_us,
            });
        }
    }
    let table = bench_harness::render_table(
        &[
            "model",
            "BW (B/cyc)",
            "stall/layer",
            "encoder us",
            "decoder us",
            "sentence us",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.bandwidth_b_per_cycle.to_string(),
                    r.layer_stall_cycles.to_string(),
                    format!("{:.0}", r.encoder_us),
                    format!("{:.0}", r.decoder_us),
                    format!("{:.0}", r.sentence_us),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let cfg64 = AccelConfig::paper_default();
    println!(
        "arithmetic intensity of one base layer at s = 64: {:.1} MAC/byte (weight-bound: every\nweight byte is used exactly s times at batch 1)\n",
        accel::pipeline::layer_arithmetic_intensity(&cfg64)
    );
    println!("observations:");
    println!(
        "- a single DDR4 channel (64 B/cycle) stalls the base model ~11.8k cycles/layer: the FFN's"
    );
    println!("  2.1 MB of weights take longer to load than the MHA takes to compute");
    println!(
        "- autoregressive decoding dominates sentence latency ~50:1: every step must re-stream all"
    );
    println!(
        "  weights (k = d_model regardless of row occupancy), so batch-1 decode is weight-bound"
    );
    bench_harness::write_json("full_inference", &rows);
}
