//! E14 (extension) — the batch-size crossover behind Table III.
//!
//! The paper's 14.6× / 3.4× speed-ups hold at **batch 1**, where the
//! GPU pays its per-op overhead on every sentence. This harness sweeps
//! the batch size through the calibrated GPU model (with a *modelled*
//! efficiency ramp — see `baseline::gpu::GpuModel::efficiency_at_batch`)
//! against the fixed-latency accelerator, locating where the GPU's
//! per-sentence latency crosses below the FPGA's. Qualitative by
//! construction; the batch-1 endpoint is the calibrated Table III.

use accel::{AccelConfig, Accelerator};
use baseline::gpu::{ffn_trace, mha_trace, GpuModel};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    batch: usize,
    gpu_mha_us_per_sentence: f64,
    gpu_ffn_us_per_sentence: f64,
    fpga_mha_us: f64,
    fpga_ffn_us: f64,
    mha_speedup: f64,
    ffn_speedup: f64,
}

fn main() {
    let cfg = AccelConfig::paper_default();
    let accel = Accelerator::new(cfg.clone());
    let gpu = GpuModel::v100_pytorch();
    let fpga_mha = accel.schedule_mha().latency_us;
    let fpga_ffn = accel.schedule_ffn().latency_us;
    let mha_t = mha_trace(&cfg.model, cfg.s);
    let ffn_t = ffn_trace(&cfg.model, cfg.s);

    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let gm = gpu.latency_us_per_sentence(&mha_t, batch);
        let gf = gpu.latency_us_per_sentence(&ffn_t, batch);
        rows.push(Row {
            batch,
            gpu_mha_us_per_sentence: gm,
            gpu_ffn_us_per_sentence: gf,
            fpga_mha_us: fpga_mha,
            fpga_ffn_us: fpga_ffn,
            mha_speedup: gm / fpga_mha,
            ffn_speedup: gf / fpga_ffn,
        });
    }

    println!("E14 — batch-size crossover (FPGA latency is batch-1 by design; GPU amortises)");
    println!(
        "GPU efficiency ramp is modelled, not measured — batch-1 row is the calibrated Table III\n"
    );
    let table = bench_harness::render_table(
        &[
            "batch",
            "GPU MHA us/sent",
            "GPU FFN us/sent",
            "FPGA MHA us",
            "FPGA FFN us",
            "MHA x",
            "FFN x",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.batch.to_string(),
                    format!("{:.1}", r.gpu_mha_us_per_sentence),
                    format!("{:.1}", r.gpu_ffn_us_per_sentence),
                    format!("{:.1}", r.fpga_mha_us),
                    format!("{:.1}", r.fpga_ffn_us),
                    format!("{:.2}", r.mha_speedup),
                    format!("{:.2}", r.ffn_speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let cross = rows.iter().find(|r| r.mha_speedup < 1.0).map(|r| r.batch);
    match cross {
        Some(b) => println!(
            "the GPU's per-sentence MHA latency crosses below the FPGA's around batch {b};"
        ),
        None => println!("the GPU never crosses below the FPGA in this sweep;"),
    }
    println!(
        "the paper's latency-critical (batch-1, mobile/embedded) framing is where the design wins."
    );
    bench_harness::write_json("gpu_crossover", &rows);
}
