//! E3 — Fig. 4: partitioned-GEMM equivalence check over every Table-I
//! configuration, plus the Q_i K_i^T padding/tiling plan across
//! sequence lengths. Exits non-zero on any mismatch.

use accel::partition::{partitioned_matmul_i8, qk_matmul_i8, qk_plan, weight_panels};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use tensor::gemm;
use transformer::config::ModelConfig;

#[derive(Serialize)]
struct Row {
    check: String,
    detail: String,
    ok: bool,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0xF164);
    let mut rows: Vec<Row> = Vec::new();
    let s = 16; // small row count keeps the full-width GEMMs quick

    for cfg in ModelConfig::table1() {
        // W_G, W_1, W_2 panels and equivalence.
        let specs = [
            ("W_G", cfg.d_model, cfg.d_model, cfg.h),
            ("W_1", cfg.d_model, cfg.d_ff, 4 * cfg.h),
            ("W_2", cfg.d_ff, cfg.d_model, cfg.h),
        ];
        for (name, rows_w, cols_w, want_panels) in specs {
            let x = tensor::init::uniform_i8(&mut rng, s, rows_w);
            let w = tensor::init::uniform_i8(&mut rng, rows_w, cols_w);
            let panels_ok = weight_panels(&w).len() == want_panels;
            let equal = partitioned_matmul_i8(&x, &w).unwrap() == gemm::matmul_i8(&x, &w).unwrap();
            rows.push(Row {
                check: format!("{}: {name}", cfg.name),
                detail: format!("{want_panels} panels, bit-identical GEMM"),
                ok: panels_ok && equal,
            });
        }
    }

    for &seq in &[7usize, 63, 64, 65, 128, 200] {
        let q = tensor::init::uniform_i8(&mut rng, seq, 64);
        let k = tensor::init::uniform_i8(&mut rng, seq, 64);
        let plan = qk_plan(seq);
        let equal = qk_matmul_i8(&q, &k).unwrap() == gemm::matmul_i8_nt(&q, &k).unwrap();
        rows.push(Row {
            check: format!("QK^T s={seq}"),
            detail: format!("pad to {} rows, {} tile(s)", plan.padded_k_rows, plan.tiles),
            ok: equal,
        });
    }

    println!("E3 — Fig. 4 partitioning equivalence\n");
    let table = bench_harness::render_table(
        &["check", "plan", "ok"],
        &rows
            .iter()
            .map(|r| vec![r.check.clone(), r.detail.clone(), r.ok.to_string()])
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    bench_harness::write_json("partition_check", &rows);
    if rows.iter().any(|r| !r.ok) {
        eprintln!("PARTITION CHECK FAILED");
        std::process::exit(1);
    }
    println!("all partitioned computations bit-identical to monolithic GEMMs");
}
