//! E8 — Table III: FPGA vs GPU latency and speed-up for both ResBlocks
//! (batch 1, s = 64, 200 MHz), using the cycle-accurate schedule for the
//! FPGA side and the calibrated V100/PyTorch model for the GPU side.

use accel::{AccelConfig, Accelerator};
use baseline::gpu::{ffn_trace, mha_trace, GpuModel};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    layer: String,
    fpga_cycles: u64,
    fpga_us: f64,
    gpu_us: f64,
    speedup: f64,
    paper_fpga_us: f64,
    paper_gpu_us: f64,
    paper_speedup: f64,
}

fn main() {
    let cfg = AccelConfig::paper_default();
    let accel = Accelerator::new(cfg.clone());
    let gpu = GpuModel::v100_pytorch();

    let mha = accel.schedule_mha();
    let ffn = accel.schedule_ffn();
    let gpu_mha = gpu.latency_us(&mha_trace(&cfg.model, cfg.s));
    let gpu_ffn = gpu.latency_us(&ffn_trace(&cfg.model, cfg.s));

    let rows = vec![
        Row {
            layer: "MHA ResBlock".into(),
            fpga_cycles: mha.cycles.get(),
            fpga_us: mha.latency_us,
            gpu_us: gpu_mha,
            speedup: gpu_mha / mha.latency_us,
            paper_fpga_us: 106.7,
            paper_gpu_us: 1557.8,
            paper_speedup: 14.6,
        },
        Row {
            layer: "FFN ResBlock".into(),
            fpga_cycles: ffn.cycles.get(),
            fpga_us: ffn.latency_us,
            gpu_us: gpu_ffn,
            speedup: gpu_ffn / ffn.latency_us,
            paper_fpga_us: 210.5,
            paper_gpu_us: 713.4,
            paper_speedup: 3.4,
        },
    ];

    println!("Table III — FPGA vs GPU latency (batch 1, s = 64, 200 MHz)\n");
    let table = bench_harness::render_table(
        &[
            "layer",
            "FPGA cycles",
            "FPGA us",
            "GPU us",
            "speed-up",
            "paper FPGA",
            "paper GPU",
            "paper x",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.layer.clone(),
                    r.fpga_cycles.to_string(),
                    format!("{:.1}", r.fpga_us),
                    format!("{:.1}", r.gpu_us),
                    format!("{:.1}x", r.speedup),
                    format!("{:.1}us", r.paper_fpga_us),
                    format!("{:.1}us", r.paper_gpu_us),
                    format!("{:.1}x", r.paper_speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    println!(
        "shape check: MHA speed-up ({:.1}x) >> FFN speed-up ({:.1}x), as in the paper (14.6x vs 3.4x)",
        rows[0].speedup, rows[1].speedup
    );
    // Energy extension: FPGA 16.7 W vs a 250 W-class V100.
    use accel::area::{energy_uj, V100_TDP_W};
    let p = accel::area::estimate_power(&accel::area::AreaModel::new(cfg.clone()), &cfg);
    for r in &rows {
        let e_fpga = energy_uj(p.total_w(), r.fpga_us);
        let e_gpu = energy_uj(V100_TDP_W, r.gpu_us);
        println!(
            "energy/{}: FPGA {:.2} mJ vs GPU {:.1} mJ -> {:.0}x more efficient",
            r.layer,
            e_fpga / 1000.0,
            e_gpu / 1000.0,
            e_gpu / e_fpga
        );
    }
    bench_harness::write_json("table3", &rows);
}
