//! E21 — overload behaviour of the TCP front door.
//!
//! Drives the real network stack (TCP loopback, framed protocol,
//! admission control, continuous batching engine) with an open-loop
//! Poisson workload at a sweep of offered loads around the measured
//! capacity knee, and records what a serving system is judged on:
//!
//! * TTFT (submit → first streamed token) p50/p99 per offered load,
//! * per-token latency p50/p99 per offered load,
//! * goodput (completed requests/s) and shed rate per offered load,
//! * the overload guarantee: goodput at 2× the knee must hold at
//!   ≥ 70% of peak goodput — load shedding, not collapse.
//!
//! Writes `results/BENCH_serving.json`.

use bench_harness::{render_table, write_json};
use frontdoor::{
    AdmissionConfig, Arrival, Client, DoorConfig, FrontDoor, ServerFrame, Workload, WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use serving::EngineConfig;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};

const MAX_NEW: u32 = 8;
const SWEEP_REQUESTS: usize = 120;
const PROBE_REQUESTS: usize = 96;
const MAX_BATCH: usize = 8;

fn percentile(samples: &mut [f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "empty sample set");
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

#[derive(Serialize)]
struct LoadPoint {
    offered_rps: f64,
    offered_over_knee: f64,
    submitted: usize,
    completed: usize,
    shed: usize,
    goodput_rps: f64,
    ttft_p50_ms: f64,
    ttft_p99_ms: f64,
    per_token_p50_ms: f64,
    per_token_p99_ms: f64,
}

#[derive(Serialize)]
struct ServingBench {
    model: String,
    d_model: usize,
    n_layers: usize,
    max_batch: usize,
    max_new: u32,
    requests_per_point: usize,
    knee_rps: f64,
    peak_goodput_rps: f64,
    goodput_at_2x_knee_rps: f64,
    goodput_retention_at_2x: f64,
    points: Vec<LoadPoint>,
}

fn build_model() -> (quantized::QuantSeq2Seq, ModelConfig) {
    let cfg = ModelConfig {
        name: "Transformer-base-2L-serving".into(),
        d_model: 64,
        d_ff: 256,
        h: 8,
        n_layers: 2,
        vocab: 64,
        max_len: 64,
    };
    let mut rng = StdRng::seed_from_u64(0xE21_5EED);
    let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 6);
    let calib = gen.corpus(4, &mut StdRng::seed_from_u64(0xE21_CA11));
    let q = quantized::QuantSeq2Seq::from_trained(&fp32, &calib, quantized::SoftmaxMode::Hardware);
    (q, cfg)
}

fn door_config() -> DoorConfig {
    DoorConfig {
        engine: EngineConfig {
            ignore_eos: true, // constant work per request
            ..EngineConfig::with_max_batch(MAX_BATCH)
        },
        admission: AdmissionConfig {
            max_buffered: 2 * MAX_BATCH,
            // Quotas out of the way: this experiment studies the
            // bounded buffer, not tenant contracts.
            bucket_capacity: 1e12,
            bucket_refill_per_sec: 1e12,
            ..AdmissionConfig::default()
        },
        idle_timeout: Duration::from_secs(30),
        ..DoorConfig::default()
    }
}

/// Runs `body` against a fresh door; returns the door's final state.
fn with_door<R>(
    model: &quantized::QuantSeq2Seq,
    body: impl FnOnce(SocketAddr) -> R,
) -> (FrontDoor<'_>, R) {
    let mut door = FrontDoor::new(model, door_config()).expect("bind");
    let addr = door.local_addr().expect("addr");
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            door.run(&stop).expect("event loop");
            door
        });
        let out = body(addr);
        stop.store(true, Ordering::Relaxed);
        (handle.join().expect("door thread"), out)
    })
}

/// Closed-loop capacity probe: saturate the engine with a standing
/// backlog and measure drain throughput — the knee of the system.
fn probe_knee(model: &quantized::QuantSeq2Seq, vocab: usize) -> f64 {
    let (_door, rps) = with_door(model, |addr| {
        let mut wl = Workload::new(
            WorkloadConfig {
                arrival: Arrival::Poisson { rate_per_sec: 1e9 }, // all at t=0
                max_new: (MAX_NEW, MAX_NEW),
                ..WorkloadConfig::default()
            },
            vocab,
            vocab,
            0xE21_0001,
        );
        let mut client = Client::connect(addr).expect("connect");
        let t0 = Instant::now();
        let mut settled = 0usize;
        let mut in_flight = 0usize;
        let mut trace = wl.trace(PROBE_REQUESTS).into_iter();
        // Keep the admission buffer full without tripping the shed
        // policy: a closed loop with a window the size of the buffer.
        let window = 2 * MAX_BATCH;
        loop {
            while in_flight < window {
                let Some(t) = trace.next() else { break };
                client.submit(t.submit).expect("submit");
                in_flight += 1;
            }
            if settled == PROBE_REQUESTS {
                break;
            }
            match client
                .recv(Duration::from_secs(60))
                .expect("recv")
                .expect("probe timeout")
            {
                ServerFrame::Done { .. } => {
                    settled += 1;
                    in_flight -= 1;
                }
                ServerFrame::Reject { code, .. } => {
                    panic!("probe shed a windowed request: {code:?}")
                }
                ServerFrame::Token { .. } => {}
            }
        }
        PROBE_REQUESTS as f64 / t0.elapsed().as_secs_f64()
    });
    rps
}

/// One open-loop point: Poisson arrivals at `rate` req/s, measured at
/// the client.
fn run_point(model: &quantized::QuantSeq2Seq, vocab: usize, rate: f64, knee: f64) -> LoadPoint {
    let (_door, point) = with_door(model, |addr| {
        let mut wl = Workload::new(
            WorkloadConfig {
                arrival: Arrival::Poisson { rate_per_sec: rate },
                max_new: (MAX_NEW, MAX_NEW),
                ..WorkloadConfig::default()
            },
            vocab,
            vocab,
            0xE21_0000 ^ rate.to_bits(),
        );
        let trace = wl.trace(SWEEP_REQUESTS);
        let mut client = Client::connect(addr).expect("connect");
        let t0 = Instant::now();

        // Open loop: a sender thread honours the trace timestamps no
        // matter how the server is doing; the receiver records TTFT
        // and completion times.
        let n = trace.len();
        let (mut submit_at, mut first_tok, mut done_at) =
            (vec![None; n], vec![None::<Instant>; n], vec![None; n]);
        let mut tokens_of = vec![0u32; n];
        let mut shed = 0usize;
        std::thread::scope(|s| {
            let sender = {
                let stream = client.try_clone_stream().expect("clone stream");
                s.spawn(move || {
                    let mut stream = stream;
                    let mut sent = Vec::with_capacity(n);
                    for t in &trace {
                        let due = t0 + Duration::from_millis(t.at_ms);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let idx = t.submit.id as usize;
                        use std::io::Write;
                        let frame = frontdoor::frame::encode_client(
                            &frontdoor::ClientFrame::Submit(t.submit.clone()),
                        );
                        sent.push((idx, Instant::now()));
                        stream.write_all(&frame).expect("send");
                    }
                    sent
                })
            };
            let mut settled = 0usize;
            while settled < n {
                match client
                    .recv(Duration::from_secs(60))
                    .expect("recv")
                    .expect("sweep timeout")
                {
                    ServerFrame::Token { id, .. } => {
                        let idx = id as usize;
                        if first_tok[idx].is_none() {
                            first_tok[idx] = Some(Instant::now());
                        }
                        tokens_of[idx] += 1;
                    }
                    ServerFrame::Done { id, .. } => {
                        done_at[id as usize] = Some(Instant::now());
                        settled += 1;
                    }
                    ServerFrame::Reject { .. } => {
                        shed += 1;
                        settled += 1;
                    }
                }
            }
            for (idx, at) in sender.join().expect("sender") {
                submit_at[idx] = Some(at);
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();

        let mut ttft: Vec<f64> = (0..n)
            .filter_map(|i| {
                Some(
                    first_tok[i]?
                        .saturating_duration_since(submit_at[i]?)
                        .as_secs_f64()
                        * 1e3,
                )
            })
            .collect();
        let mut per_token: Vec<f64> = (0..n)
            .filter_map(|i| {
                if tokens_of[i] < 2 {
                    return None;
                }
                let span = done_at[i]?.saturating_duration_since(first_tok[i]?);
                Some(span.as_secs_f64() * 1e3 / (tokens_of[i] - 1) as f64)
            })
            .collect();
        let completed = n - shed;
        LoadPoint {
            offered_rps: rate,
            offered_over_knee: rate / knee,
            submitted: n,
            completed,
            shed,
            goodput_rps: completed as f64 / elapsed,
            ttft_p50_ms: percentile(&mut ttft, 50.0),
            ttft_p99_ms: percentile(&mut ttft, 99.0),
            per_token_p50_ms: percentile(&mut per_token, 50.0),
            per_token_p99_ms: percentile(&mut per_token, 99.0),
        }
    });
    point
}

fn main() {
    let (q, cfg) = build_model();
    println!(
        "E21: serving front door ({}; d_model={}, {} layers, max_batch={MAX_BATCH})",
        cfg.name, cfg.d_model, cfg.n_layers
    );

    let knee = probe_knee(&q, cfg.vocab);
    println!("capacity knee (closed-loop drain): {knee:.1} req/s");

    let multipliers = [0.3, 0.6, 0.9, 1.2, 2.0, 3.0];
    let points: Vec<LoadPoint> = multipliers
        .iter()
        .map(|&m| {
            let p = run_point(&q, cfg.vocab, m * knee, knee);
            println!(
                "  {:>5.2}x knee: goodput {:>7.1}/s, shed {:>3}, ttft p50 {:>7.2} ms p99 {:>8.2} ms",
                p.offered_over_knee, p.goodput_rps, p.shed, p.ttft_p50_ms, p.ttft_p99_ms
            );
            p
        })
        .collect();

    let peak_goodput = points.iter().map(|p| p.goodput_rps).fold(0.0, f64::max);
    let at_2x = points
        .iter()
        .filter(|p| p.offered_over_knee >= 2.0)
        .map(|p| p.goodput_rps)
        .fold(0.0, f64::max);
    let retention = at_2x / peak_goodput;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.offered_over_knee),
                format!("{:.1}", p.offered_rps),
                format!("{}", p.completed),
                format!("{}", p.shed),
                format!("{:.1}", p.goodput_rps),
                format!("{:.2}", p.ttft_p50_ms),
                format!("{:.2}", p.ttft_p99_ms),
                format!("{:.3}", p.per_token_p50_ms),
                format!("{:.3}", p.per_token_p99_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "load/knee",
                "offered/s",
                "done",
                "shed",
                "goodput/s",
                "ttft p50 ms",
                "ttft p99 ms",
                "tok p50 ms",
                "tok p99 ms",
            ],
            &rows,
        )
    );
    println!(
        "goodput retention at >=2x knee: {:.0}% of peak ({:.1}/{:.1} req/s)",
        retention * 100.0,
        at_2x,
        peak_goodput
    );

    // The overload guarantee this whole subsystem exists for: past
    // saturation the door sheds load and keeps serving, it does not
    // collapse.
    assert!(
        retention >= 0.70,
        "goodput at 2x knee must hold >= 70% of peak (got {:.0}%)",
        retention * 100.0
    );

    let report = ServingBench {
        model: cfg.name.clone(),
        d_model: cfg.d_model,
        n_layers: cfg.n_layers,
        max_batch: MAX_BATCH,
        max_new: MAX_NEW,
        requests_per_point: SWEEP_REQUESTS,
        knee_rps: knee,
        peak_goodput_rps: peak_goodput,
        goodput_at_2x_knee_rps: at_2x,
        goodput_retention_at_2x: retention,
        points,
    };
    write_json("BENCH_serving", &report);
    println!("wrote results/BENCH_serving.json");
}
