//! E6 — Fig. 7: the LayerNorm latency optimisation, measured as (a) the
//! module's added latency per variant and (b) the end-to-end ResBlock
//! cycle impact.

use accel::config::LayerNormMode;
use accel::layernorm_module::{added_latency, output_cycles};
use accel::AccelConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: String,
    added_latency_cycles: u64,
    output_cycles: u64,
    mha_total_cycles: u64,
    ffn_total_cycles: u64,
}

fn main() {
    let d_model = 512;
    let variants = [
        (LayerNormMode::Straightforward, "straightforward"),
        (LayerNormMode::InlineMean, "step one (inline E(G))"),
        (
            LayerNormMode::InlineMeanAndVariance,
            "step one + two (Eq. 9)",
        ),
    ];
    let mut rows = Vec::new();
    for (mode, name) in variants {
        let mut cfg = AccelConfig::paper_default();
        cfg.sched.layernorm = mode;
        let mha = accel::scheduler::schedule_mha(&cfg);
        let ffn = accel::scheduler::schedule_ffn(&cfg);
        rows.push(Row {
            variant: name.into(),
            added_latency_cycles: added_latency(mode, d_model).get(),
            output_cycles: output_cycles(d_model).get(),
            mha_total_cycles: mha.cycles.get(),
            ffn_total_cycles: ffn.cycles.get(),
        });
    }
    println!("E6 — Fig. 7: LayerNorm latency optimisation (d_model = 512, h = 8)");
    println!(
        "paper: straightforward adds 'at least 128h' = 1024 cycles; optimised adds 'very few'\n"
    );
    let table = bench_harness::render_table(
        &[
            "variant",
            "added latency",
            "output phase",
            "MHA total",
            "FFN total",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    r.added_latency_cycles.to_string(),
                    r.output_cycles.to_string(),
                    r.mha_total_cycles.to_string(),
                    r.ffn_total_cycles.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let saved = rows[0].mha_total_cycles - rows[2].mha_total_cycles;
    println!("end-to-end saving of the full optimisation on the MHA ResBlock: {saved} cycles");
    bench_harness::write_json("layernorm_latency", &rows);
}
