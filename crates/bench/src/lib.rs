//! Shared helpers for the experiment binaries (`src/bin/*`): aligned
//! text tables and JSON result dumps under `results/`.
//!
//! Each binary regenerates one artifact of the paper's evaluation
//! section; see DESIGN.md's experiment index (E1–E11) and EXPERIMENTS.md
//! for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::Path;

use serde::Serialize;

/// Renders an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:>w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(sep.iter().map(|s| s.as_str()).collect(), &widths));
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    out
}

/// Writes a JSON result artifact under the workspace root's
/// `results/<name>.json`, regardless of the invoking CWD (`cargo run`
/// starts in the invocation directory, `cargo bench` in the package
/// directory — anchoring on `CARGO_MANIFEST_DIR` makes both land in the
/// same tracked `results/`).
///
/// # Panics
///
/// Panics on I/O or serialization failure — experiment binaries should
/// fail loudly.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/bench");
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("create results/ directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    fs::write(&path, json).expect("write result file");
    println!("[results] wrote {}", path.display());
}

/// Formats a float with fixed precision, for table cells.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("| longer |"));
        let widths: Vec<usize> = t.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn fmt_f_precision() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(10.0, 1), "10.0");
    }
}
