//! Criterion micro-benchmarks of the GEMM substrate: the FP32 reference
//! kernels and the INT8 kernels the accelerator datapath uses.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::gemm;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("gemm_i8");
    for &(m, k, n) in &[(64usize, 512usize, 64usize), (64, 64, 64), (64, 2048, 64)] {
        let a = tensor::init::uniform_i8(&mut rng, m, k);
        let b = tensor::init::uniform_i8(&mut rng, k, n);
        group.throughput(Throughput::Elements((m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| bench.iter(|| black_box(gemm::matmul_i8(a, b).unwrap())),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("gemm_f32");
    for &(m, k, n) in &[(64usize, 512usize, 64usize), (64, 512, 512)] {
        let a = tensor::init::normal(&mut rng, m, k, 1.0);
        let b = tensor::init::normal(&mut rng, k, n, 1.0);
        group.throughput(Throughput::Elements((m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| bench.iter(|| black_box(gemm::matmul(a, b).unwrap())),
        );
    }
    group.finish();

    // Blocked vs naive INT8 at the paper's deepest reduction.
    let a = tensor::init::uniform_i8(&mut rng, 64, 2048);
    let b = tensor::init::uniform_i8(&mut rng, 2048, 64);
    c.bench_function("gemm_i8_blocked/64x2048x64", |bench| {
        bench.iter(|| black_box(gemm::matmul_i8_blocked(&a, &b).unwrap()))
    });

    // The QK^T path (no materialised transpose).
    let q = tensor::init::uniform_i8(&mut rng, 64, 64);
    let k64 = tensor::init::uniform_i8(&mut rng, 64, 64);
    c.bench_function("gemm_i8_nt/64x64x64", |bench| {
        bench.iter(|| black_box(gemm::matmul_i8_nt(&q, &k64).unwrap()))
    });
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
