//! Criterion benchmarks of the decoding strategies: full-prefix
//! recompute vs KV-cached incremental, FP32 vs INT8, and beam search.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use quantized::{QuantSeq2Seq, SoftmaxMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer::decode::beam_search;
use transformer::incremental::greedy_decode_incremental;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen, BOS, EOS};
use transformer::train::study_config;

fn setup() -> (Seq2SeqTransformer, QuantSeq2Seq, Vec<usize>) {
    let cfg = study_config();
    let mut rng = StdRng::seed_from_u64(31);
    let model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 8, 10);
    let corpus = gen.corpus(4, &mut StdRng::seed_from_u64(32));
    let quant = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
    let src = corpus[0].0.clone();
    (model, quant, src)
}

fn bench_decode(c: &mut Criterion) {
    let (model, quant, src) = setup();
    let max_len = 10;

    let mut m = model.clone();
    c.bench_function("fp32_greedy_full_recompute", |b| {
        b.iter(|| black_box(m.greedy_decode(&src, BOS, EOS, max_len)))
    });
    c.bench_function("fp32_greedy_kv_cached", |b| {
        b.iter(|| black_box(greedy_decode_incremental(&model, &src, BOS, EOS, max_len)))
    });
    let mut m2 = model.clone();
    c.bench_function("fp32_beam4", |b| {
        b.iter(|| black_box(beam_search(&mut m2, &src, BOS, EOS, max_len, 4, 0.6)))
    });
    c.bench_function("int8_greedy_full_recompute", |b| {
        b.iter(|| black_box(quant.greedy_decode(&src, BOS, EOS, max_len)))
    });
    c.bench_function("int8_greedy_kv_cached", |b| {
        b.iter(|| black_box(quant.greedy_decode_incremental(&src, max_len)))
    });
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
