//! Criterion benchmarks of the cycle-level scheduler and the systolic
//! array's register-true simulation — the simulator itself must stay
//! fast enough for design-space sweeps.

use std::hint::black_box;

use accel::systolic::SystolicArray;
use accel::AccelConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scheduler(c: &mut Criterion) {
    let cfg = AccelConfig::paper_default();
    c.bench_function("schedule_mha/base_s64", |b| {
        b.iter(|| black_box(accel::scheduler::schedule_mha(black_box(&cfg))))
    });
    c.bench_function("schedule_ffn/base_s64", |b| {
        b.iter(|| black_box(accel::scheduler::schedule_ffn(black_box(&cfg))))
    });
    c.bench_function("area_model/base_s64", |b| {
        b.iter(|| black_box(accel::area::AreaModel::new(cfg.clone()).top()))
    });
}

fn bench_systolic_sim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let sa = SystolicArray::paper(64);
    let a = tensor::init::uniform_i8(&mut rng, 64, 128);
    let b = tensor::init::uniform_i8(&mut rng, 128, 64);
    c.bench_function("systolic_register_sim/64x128x64", |bench| {
        bench.iter(|| black_box(sa.simulate(&a, &b)))
    });
}

criterion_group!(benches, bench_scheduler, bench_systolic_sim);
criterion_main!(benches);
