//! Criterion benchmarks of full ResBlock execution: FP32 reference vs
//! bit-accurate INT8 datapath, at study and paper scale.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use quantized::{QuantFfnResBlock, QuantMhaResBlock, SoftmaxMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Mat;
use transformer::config::ModelConfig;
use transformer::ffn::FfnResBlock;
use transformer::mha::MhaResBlock;

fn setup(cfg: &ModelConfig, s: usize, seed: u64) -> (MhaResBlock, FfnResBlock, Vec<Mat<f32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mha = MhaResBlock::new(cfg, &mut rng);
    let ffn = FfnResBlock::new(cfg, &mut rng);
    let calib = (0..3)
        .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
        .collect();
    (mha, ffn, calib)
}

fn bench_study_scale(c: &mut Criterion) {
    let cfg = transformer::train::study_config();
    let s = 12;
    let (mut mha, mut ffn, calib) = setup(&cfg, s, 1);
    let x = calib[0].clone();

    c.bench_function("fp32_mha_resblock/study", |b| {
        b.iter(|| black_box(mha.forward(&x, &x, &x, None)))
    });
    c.bench_function("fp32_ffn_resblock/study", |b| {
        b.iter(|| black_box(ffn.forward(&x)))
    });

    let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
    let xq = qmha.quantize_input_q(&x);
    let xf = qffn.quantize_input(&x);
    c.bench_function("int8_mha_resblock/study", |b| {
        b.iter(|| black_box(qmha.forward(&xq, &xq, None)))
    });
    c.bench_function("int8_ffn_resblock/study", |b| {
        b.iter(|| black_box(qffn.forward(&xf)))
    });
}

fn bench_paper_scale(c: &mut Criterion) {
    // Transformer-base at s = 64 — the paper's evaluation point. These
    // are heavyweight; keep the sample count small.
    let cfg = ModelConfig::transformer_base();
    let (mha, ffn, calib) = setup(&cfg, 64, 2);
    let qmha = QuantMhaResBlock::from_f32(&mha, &calib[..1], &calib[..1], SoftmaxMode::Hardware);
    let qffn = QuantFfnResBlock::from_f32(&ffn, &calib[..1]);
    let x = &calib[0];
    let xq = qmha.quantize_input_q(x);
    let xf = qffn.quantize_input(x);

    let mut group = c.benchmark_group("paper_scale");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("int8_mha_resblock/base_s64", |b| {
        b.iter(|| black_box(qmha.forward(&xq, &xq, None)))
    });
    group.bench_function("int8_ffn_resblock/base_s64", |b| {
        b.iter(|| black_box(qffn.forward(&xf)))
    });
    group.finish();
}

criterion_group!(benches, bench_study_scale, bench_paper_scale);
criterion_main!(benches);
