//! Criterion benchmarks of ResBlock forwards through the operator-graph
//! executors: graph construction cost, FP32 `FloatExec`, INT8
//! `QuantExec`, and the single-row cached-KV path (`QuantRowExec` via
//! `step_session`) that serving's decode loop drives.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use quantized::{QuantFfnResBlock, QuantMhaResBlock, SoftmaxMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Mat;
use transformer::config::ModelConfig;
use transformer::ffn::FfnResBlock;
use transformer::mha::MhaResBlock;
use transformer::tasks::{Task, TaskGen, BOS};

fn bench_graph_build(c: &mut Criterion) {
    let cfg = graph::GraphConfig {
        d_model: 512,
        d_ff: 2048,
        h: 8,
    };
    c.bench_function("graph_build/mha_paper", |b| {
        b.iter(|| black_box(graph::mha_graph(&cfg)))
    });
    c.bench_function("graph_build/plan_mha_paper", |b| {
        let g = graph::mha_graph(&cfg);
        b.iter(|| black_box(g.plan()))
    });
}

fn bench_block_executors(c: &mut Criterion) {
    let cfg = transformer::train::study_config();
    let s = 12;
    let mut rng = StdRng::seed_from_u64(5);
    let mha = MhaResBlock::new(&cfg, &mut rng);
    let ffn = FfnResBlock::new(&cfg, &mut rng);
    let calib: Vec<Mat<f32>> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
        .collect();
    let x = calib[0].clone();

    // FloatExec: graph-driven FP32 inference forwards.
    c.bench_function("graph_exec/float_mha/study", |b| {
        b.iter(|| black_box(mha.forward_inference(&x, &x, &x, None)))
    });
    c.bench_function("graph_exec/float_ffn/study", |b| {
        b.iter(|| black_box(ffn.forward_inference(&x)))
    });

    // QuantExec: graph-driven INT8 forwards.
    let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
    let xq = qmha.quantize_input_q(&x);
    let xf = qffn.quantize_input(&x);
    c.bench_function("graph_exec/quant_mha/study", |b| {
        b.iter(|| black_box(qmha.forward(&xq, &xq, None)))
    });
    c.bench_function("graph_exec/quant_ffn/study", |b| {
        b.iter(|| black_box(qffn.forward(&xf)))
    });
}

fn bench_row_executor(c: &mut Criterion) {
    // QuantRowExec through the serving-facing decode step: one token
    // through all layers of a small model (the p_buf hot path).
    let mut cfg = ModelConfig::tiny_for_tests();
    cfg.n_layers = 2;
    let mut rng = StdRng::seed_from_u64(6);
    let model = transformer::model::Seq2SeqTransformer::new(&cfg, &mut rng);
    let corpus = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7).corpus(4, &mut rng);
    let quant = quantized::QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
    let src = &corpus[0].0;
    c.bench_function("graph_exec/quant_row_step/tiny", |b| {
        b.iter(|| {
            let mut arena = quantized::incremental::KvArena::for_model(&quant);
            let mut session = quant.start_session(&mut arena, src);
            black_box(quant.step_session(&mut arena, &mut session, BOS))
        })
    });
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_block_executors,
    bench_row_executor
);
criterion_main!(benches);
