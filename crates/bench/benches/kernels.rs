//! Criterion micro-benchmarks of the nonlinear-function kernels: the
//! shift-add EXP/LN units, the rsqrt ROM, the full hardware softmax and
//! the hardware LayerNorm.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixedmath::explog::{exp_unit, ln_unit};
use fixedmath::fx::{to_fx, FRAC};
use fixedmath::quant::QuantParams;
use fixedmath::rsqrt::rsqrt_fx;
use quantized::layernorm::HwLayerNorm;
use quantized::softmax::{scaled_masked_softmax, SoftmaxMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Mat;

fn bench_units(c: &mut Criterion) {
    let xs: Vec<i32> = (0..1024).map(|i| to_fx(-(i as f32) / 64.0, FRAC)).collect();
    c.bench_function("exp_unit/1024", |b| {
        b.iter(|| xs.iter().map(|&x| exp_unit(black_box(x))).sum::<i32>())
    });
    let ys: Vec<i32> = (1..1025).map(|i| i * 37).collect();
    c.bench_function("ln_unit/1024", |b| {
        b.iter(|| ys.iter().map(|&x| ln_unit(black_box(x))).sum::<i32>())
    });
    let vs: Vec<i64> = (1..1025).map(|i| i * 4097).collect();
    c.bench_function("rsqrt_fx/1024", |b| {
        b.iter(|| vs.iter().map(|&x| rsqrt_fx(black_box(x))).sum::<i64>())
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("hw_softmax");
    for &s in &[16usize, 64, 128] {
        let d = Mat::from_fn(s, s, |_, _| rng.random_range(-80_000..80_000i32));
        group.bench_with_input(BenchmarkId::from_parameter(s), &d, |b, d| {
            b.iter(|| {
                black_box(scaled_masked_softmax(
                    d,
                    5e-5,
                    64,
                    None,
                    SoftmaxMode::Hardware,
                ))
            })
        });
    }
    group.finish();
}

fn bench_layernorm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let d = 512;
    let gamma: Vec<f32> = (0..d).map(|_| rng.random_range(0.5..1.5f32)).collect();
    let beta: Vec<f32> = (0..d).map(|_| rng.random_range(-0.2..0.2f32)).collect();
    let ln = HwLayerNorm::from_f32(
        &gamma,
        &beta,
        QuantParams::new(0.02),
        QuantParams::new(0.02),
    );
    let g = Mat::from_fn(64, d, |_, _| rng.random_range(-200..200i32));
    c.bench_function("hw_layernorm/64x512", |b| {
        b.iter(|| black_box(ln.forward(&g)))
    });
}

criterion_group!(benches, bench_units, bench_softmax, bench_layernorm);
criterion_main!(benches);
