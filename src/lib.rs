//! `transformer-accel` — a bit- and cycle-accurate Rust reproduction of
//! *Hardware Accelerator for Multi-Head Attention and Position-Wise
//! Feed-Forward in the Transformer* (Lu et al., IEEE SOCC 2020,
//! arXiv:2009.08605).
//!
//! This facade crate re-exports the workspace's layers:
//!
//! | crate | role |
//! |---|---|
//! | [`tensor`] | dense matrix substrate (f32/i8/i32 GEMM) |
//! | [`fixedmath`] | INT8 quantizers, shift-add EXP/LN units, rsqrt ROM |
//! | [`transformer`] | FP32 reference model + training + BLEU |
//! | [`quantized`] | bit-exact INT8 datapath (softmax Fig. 6, LayerNorm Fig. 8) |
//! | [`faults`] | deterministic fault injection + ABFT checksum checking |
//! | [`serving`] | continuous-batching inference engine over the INT8 decoder |
//! | [`hwsim`] | cycle-level simulation framework + FPGA resource vocab |
//! | [`accel`] | the paper's accelerator: SA, scheduler (Algorithm 1), area model |
//! | [`baseline`] | calibrated V100/PyTorch latency model + CPU baseline |
//!
//! # Quickstart
//!
//! ```
//! use transformer_accel::accel::{AccelConfig, Accelerator};
//!
//! let accel = Accelerator::new(AccelConfig::paper_default());
//! let mha = accel.schedule_mha();
//! println!(
//!     "MHA ResBlock: {} cycles = {:.1} us @ 200 MHz (paper: 21,344 / 106.7 us)",
//!     mha.cycles.get(),
//!     mha.latency_us
//! );
//! assert!(mha.sa_utilization > 0.95);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench/src/bin/`
//! for the per-table/figure experiment harness (E1–E11 in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use accel;
pub use baseline;
pub use faults;
pub use fixedmath;
pub use graph;
pub use hwsim;
pub use quantized;
pub use serving;
pub use tensor;
pub use transformer;
