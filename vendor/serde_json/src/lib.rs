//! Offline vendored stand-in for `serde_json`: prints and parses the
//! vendored serde [`Value`] tree as JSON text.
//!
//! Floats are printed with Rust's shortest round-trip formatting, so
//! `to_string` → `from_str` reproduces every finite `f64`/`f32`
//! exactly. Non-finite floats print as `null` (as upstream serde_json
//! refuses them; results data never contains them).

use serde::de::Error as DeError;
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---- printing --------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => push_f64(out, *n),
        Value::Str(s) => push_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                push_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for value trees this workspace produces; the `Result`
/// mirrors the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for value trees this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

// ---- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(Error::new("expected ',' or ']'")),
                    }
                }
                Ok(Value::Array(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(Error::new("expected ',' or '}'")),
                    }
                }
                Ok(Value::Object(entries))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // multi-byte UTF-8: re-decode from the raw input
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad float literal '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("bad integer literal '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad integer literal '{text}'")))
        }
    }
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v: Vec<(String, Vec<f32>)> = vec![
            ("layer.0".into(), vec![1.0, -0.25, 3.5e-7]),
            ("with \"quotes\"\n".into(), vec![]),
        ];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f32>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Vec<(String, Vec<f32>)> = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0, -2.5e-300, 123456.789, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
    }

    #[test]
    fn integers_keep_precision() {
        let x = u64::MAX;
        let back: u64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back, x);
        let y = -1234567890123i64;
        let back: i64 = from_str(&to_string(&y).unwrap()).unwrap();
        assert_eq!(back, y);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<i32>>("[1, 2").is_err());
        assert!(from_str::<i32>("1 2").is_err());
    }
}
