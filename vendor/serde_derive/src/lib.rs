//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the vendored `serde` stand-in.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available in the offline build container, so this macro parses the
//! item with a small hand-rolled scanner over `proc_macro::TokenTree`s
//! and emits impl blocks as source text. It supports exactly the shapes
//! this workspace derives on:
//!
//! * structs with named fields (optionally generic over type params);
//! * tuple structs (newtypes serialize transparently);
//! * enums with unit variants, tuple variants and struct variants
//!   (externally tagged, like upstream serde's default).
//!
//! `#[serde(...)]` attributes are NOT supported (the workspace uses
//! none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Unnamed(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Type-parameter identifiers (lifetimes/consts unsupported).
    generics: Vec<String>,
    shape: Shape,
}

/// Skips attribute pairs (`#` + bracket group) and visibility
/// (`pub` + optional paren group) at `i`, advancing it.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parses `<...>` generics at `i` (if present), returning type-param
/// names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *i += 1;
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                // lifetime param: consume the following ident, not a
                // type param
                expect_param = false;
            }
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                params.push(id.to_string());
                expect_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Parses the fields of a brace-delimited (named) field list.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        // skip to the next top-level comma (angle-bracket aware: commas
        // inside `Vec<(A, B)>`-style types must not split fields)
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts the fields of a paren-delimited (tuple) field list.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Unnamed(count_tuple_fields(g));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // skip an optional discriminant and the separating comma
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    let generics = parse_generics(&tokens, &mut i);
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Unnamed(count_tuple_fields(g)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Item {
        name,
        generics,
        shape,
    }
}

/// `impl<T: serde::Trait, ...>` header + `Name<T, ...>` type for the
/// item.
fn impl_header(item: &Item, trait_bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounds: Vec<String> = item
            .generics
            .iter()
            .map(|p| format!("{p}: {trait_bound}"))
            .collect();
        (
            format!("<{}>", bounds.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn fields_to_value(fields: &Fields, access_prefix: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "(String::from(\"{n}\"), serde::Serialize::to_value(&{access_prefix}{n}))"
                    )
                })
                .collect();
            format!("serde::value::Value::Object(vec![{}])", entries.join(", "))
        }
        Fields::Unnamed(1) => {
            format!("serde::Serialize::to_value(&{access_prefix}0)")
        }
        Fields::Unnamed(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&{access_prefix}{k})"))
                .collect();
            format!("serde::value::Value::Array(vec![{}])", entries.join(", "))
        }
        Fields::Unit => "serde::value::Value::Null".to_string(),
    }
}

fn fields_from_value(fields: &Fields, ctor: &str, src: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "{n}: serde::Deserialize::from_value(serde::de::field({src}, \"{n}\"))?"
                    )
                })
                .collect();
            format!("{ctor} {{ {} }}", inits.join(", "))
        }
        Fields::Unnamed(1) => {
            format!("{ctor}(serde::Deserialize::from_value({src})?)")
        }
        Fields::Unnamed(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(serde::de::index({src}, {k}))?"))
                .collect();
            format!("{ctor}({})", inits.join(", "))
        }
        Fields::Unit => ctor.to_string(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty) = impl_header(&item, "serde::Serialize");
    let body = match &item.shape {
        Shape::Struct(fields) => fields_to_value(fields, "self."),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "Self::{vn} => serde::value::Value::Str(String::from(\"{vn}\")),"
                        ),
                        Fields::Named(names) => {
                            let pat = names.join(", ");
                            let entries: Vec<String> = names
                                .iter()
                                .map(|n| {
                                    format!(
                                        "(String::from(\"{n}\"), serde::Serialize::to_value({n}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {pat} }} => serde::value::Value::Object(vec![(String::from(\"{vn}\"), serde::value::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Fields::Unnamed(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let pat = binds.join(", ");
                            let payload = if *n == 1 {
                                "serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let entries: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("serde::value::Value::Array(vec![{}])", entries.join(", "))
                            };
                            format!(
                                "Self::{vn}({pat}) => serde::value::Value::Object(vec![(String::from(\"{vn}\"), {payload})]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let code = format!(
        "impl{impl_generics} serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> serde::value::Value {{ {body} }}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty) = impl_header(&item, "serde::Deserialize");
    let body = match &item.shape {
        Shape::Struct(fields) => {
            format!("Ok({})", fields_from_value(fields, "Self", "v"))
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in &variants[..] {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push(format!("\"{vn}\" => return Ok(Self::{vn}),")),
                    fields => tagged_arms.push(format!(
                        "\"{vn}\" => return Ok({}),",
                        fields_from_value(fields, &format!("Self::{vn}"), "payload")
                    )),
                }
            }
            format!(
                "if let serde::value::Value::Str(s) = v {{\n\
                     match s.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 if let serde::value::Value::Object(entries) = v {{\n\
                     if let Some((tag, payload)) = entries.first() {{\n\
                         let _ = payload;\n\
                         match tag.as_str() {{ {} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 Err(serde::de::Error::new(\"no matching enum variant\"))",
                unit_arms.join("\n"),
                tagged_arms.join("\n"),
            )
        }
    };
    let code = format!(
        "impl{impl_generics} serde::Deserialize for {ty} {{\n\
             fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {{ {body} }}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
