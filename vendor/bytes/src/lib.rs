//! Offline vendored stand-in for `bytes`: `Vec<u8>`-backed buffers
//! with the small builder/read API the workspace uses. There is no
//! reference-counted zero-copy sharing — `Bytes` owns its storage.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an owned `Vec`.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Byte-appending operations (the tiny slice of `bytes::BufMut` used
/// here).
pub trait BufMut {
    /// Appends one unsigned byte.
    fn put_u8(&mut self, v: u8);

    /// Appends one signed byte (two's complement).
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]) {
        for &b in s {
            self.put_u8(b);
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut buf = BytesMut::new();
        buf.put_i8(-1);
        buf.put_u8(2);
        buf.put_slice(&[3, 4]);
        assert_eq!(buf.len(), 4);
        let b = buf.freeze();
        assert_eq!(&b[..], &[255, 2, 3, 4]);
        assert_eq!(b[0], 255);
        assert_eq!(b.len(), 4);
    }
}
