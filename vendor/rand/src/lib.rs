//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand 0.9` API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`Rng::random_range`] over integer and float ranges. Streams are
//! deterministic (splitmix64 seeding into xoshiro256++) but are NOT the
//! upstream `StdRng` streams — everything in this workspace derives its
//! data from seeds routed through this crate, so reproducibility holds
//! within the workspace.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`lo..hi` half-open or `lo..=hi`
    /// inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform-range sampling machinery (mirrors `rand::distr`).
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // 53 uniform bits in [0, 1).
                    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let v = self.start as f64 + (self.end as f64 - self.start as f64) * u;
                    let v = v as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    (lo as f64 + (hi as f64 - lo as f64) * u) as $t
                }
            }
        )*};
    }
    float_range!(f32, f64);
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++
    /// seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(
                a.random_range(0..1_000_000i32),
                b.random_range(0..1_000_000i32)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.random_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let w = rng.random_range(-127i16..=127);
            assert!((-127..=127).contains(&w));
            let f = rng.random_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_float_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(1.0f32..1.0);
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.random_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
