//! Offline vendored stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace ships
//! a much-simplified serialization model with the same *spelling* as
//! serde: `#[derive(Serialize, Deserialize)]` plus `serde_json`
//! string round-trips. Instead of upstream serde's visitor machinery,
//! everything funnels through an owned [`value::Value`] tree:
//!
//! * [`Serialize::to_value`] renders a value tree;
//! * [`Deserialize::from_value`] rebuilds a type from one;
//! * `serde_json` prints/parses value trees as JSON text.
//!
//! Representation conventions match upstream serde's defaults closely
//! enough for this workspace: structs are JSON objects, newtypes are
//! transparent, unit enum variants are strings, data-carrying variants
//! are externally tagged single-entry objects.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The owned value tree all (de)serialization routes through.

    /// A JSON-shaped value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A signed integer.
        I64(i64),
        /// An unsigned integer out of `i64` range (or any non-negative
        /// literal during parsing).
        U64(u64),
        /// A float.
        F64(f64),
        /// A string.
        Str(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, insertion-ordered.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Object entry lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Numeric view widened to `f64`.
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::I64(v) => Some(v as f64),
                Value::U64(v) => Some(v as f64),
                Value::F64(v) => Some(v),
                _ => None,
            }
        }

        /// Numeric view as `i128` (integers only).
        pub fn as_int(&self) -> Option<i128> {
            match *self {
                Value::I64(v) => Some(v as i128),
                Value::U64(v) => Some(v as i128),
                Value::F64(v) if v.fract() == 0.0 && v.abs() < 9e15 => Some(v as i128),
                _ => None,
            }
        }
    }
}

pub mod de {
    //! Deserialization support types.

    use super::value::Value;
    use std::fmt;

    /// A deserialization error (message only).
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Creates an error with `msg`.
        pub fn new(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.msg)
        }
    }

    impl std::error::Error for Error {}

    static NULL: Value = Value::Null;

    /// Looks up `key` in an object value; missing keys (and non-object
    /// values) resolve to `Null`, which lets `Option` fields default.
    pub fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
        v.get(key).unwrap_or(&NULL)
    }

    /// Looks up element `idx` of an array value, `Null` when absent.
    pub fn index(v: &Value, idx: usize) -> &Value {
        match v {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

use de::Error;
use value::Value;

/// Renders `self` as a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 { Value::I64(v as i64) } else if v <= i64::MAX as i128 {
                    Value::I64(v as i64)
                } else {
                    Value::U64(v as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_int().ok_or_else(|| Error::new("expected integer"))?;
                <$t>::try_from(raw).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::U64(*self)
    }
}
impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::U64(x) => Ok(x),
            Value::I64(x) if x >= 0 => Ok(x as u64),
            _ => Err(Error::new("expected unsigned integer")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::new("expected number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident/$idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(crate::de::index(v, $idx))?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<(String, Vec<f32>)> = vec![("a".into(), vec![1.0, 2.0])];
        assert_eq!(
            Vec::<(String, Vec<f32>)>::from_value(&v.to_value()).unwrap(),
            v
        );
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<i32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<i32>::from_value(&Some(3).to_value()).unwrap(),
            Some(3)
        );
    }
}
