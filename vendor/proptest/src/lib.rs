//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range and tuple strategies, `prop_map` / `prop_flat_map`,
//! `proptest::collection::vec`, `proptest::bool::ANY`, and the
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated from
//! a fixed seed per case index, so failures are reproducible; there is
//! no shrinking — a failing case panics with the assert message.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The per-case random source handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}
range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident/$idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

pub mod collection {
    //! `Vec` strategies.

    use super::{Strategy, TestRng};

    /// A length specification: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    /// See `proptest::collection::vec`.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// A strategy for `Vec`s whose elements come from `elem` and whose
    /// length comes from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use super::{Strategy, TestRng};

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::random_range(rng, 0..2u32) == 1
        }
    }
}

/// Builds the seed for case `case` of test `name` (stable across runs).
#[doc(hidden)]
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Builds a fresh [`TestRng`] for one case.
#[doc(hidden)]
pub fn case_rng(name: &str, case: u32) -> TestRng {
    StdRng::seed_from_u64(case_seed(name, case))
}

/// The proptest entry macro: wraps `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when an assumption fails (moves on to the
/// next case instead of failing the test).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::bool as prop_bool;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i32..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(v in collection::vec(0u8..100, 5usize).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(t in (0u32..4, 0u32..4)) {
            prop_assert!(t.0 < 4 && t.1 < 4);
        }
    }
}
