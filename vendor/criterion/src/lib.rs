//! Offline vendored stand-in for `criterion`.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotation) backed by a simple
//! warm-up + timed-batch wall-clock loop. Results print as
//! `name ... time: [median] thrpt: [elem/s]` lines; there is no
//! statistical analysis, HTML report, or comparison to saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark (after warm-up).
const TARGET: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(100);

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Median-of-batches nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f` repeatedly and records nanoseconds per iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up and estimate a batch size.
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        while t0.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (WARMUP.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        let batch = ((10_000_000.0 / est_ns).ceil() as u64).clamp(1, 1_000_000);
        let mut samples = Vec::new();
        let t1 = Instant::now();
        while t1.elapsed() < TARGET {
            let tb = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(tb.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, throughput: Option<&Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { ns_per_iter: 0.0 };
    f(&mut bencher);
    let mut line = format!("{name:<48} time: [{}]", fmt_ns(bencher.ns_per_iter));
    if let Some(Throughput::Elements(n)) = throughput {
        let per_s = *n as f64 / (bencher.ns_per_iter / 1e9);
        line.push_str(&format!("  thrpt: [{:.2} Melem/s]", per_s / 1e6));
    }
    println!("{line}");
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id rendered from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// The bench context handed to registered bench functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Upstream builder hook; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub's fixed sampling ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's fixed sampling ignores it.
    pub fn measurement_time(&mut self, _dur: std::time::Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's fixed sampling ignores it.
    pub fn warm_up_time(&mut self, _dur: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.throughput.as_ref(),
            &mut f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.throughput.as_ref(),
            &mut |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// A resolved bench label (from a `&str` or a [`BenchmarkId`]).
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

/// Declares a group of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
