//! Differential tests for the graph fusion pass: every executor must
//! produce **exactly the same bits** with fusion on and off.
//!
//! The pass rewrites `Linear→Relu` / `Linear→Add` pairs into fused
//! nodes whose epilogues run inside the GEMM drain
//! (`tensor::prepack::matmul_prepacked_epilogue` and the INT8
//! equivalent). Because the fused drains apply the identical per-element
//! operations in the identical order, fused and unfused paths are
//! bit-identical — these tests pin that across all five executors
//! (`FloatExec`, `RowExec`, `QuantExec`, `QuantRowExec`, `AccelExec`),
//! the serving engine's chunked prefill, and the rollback-after-fault
//! decode path, plus the `ACCEL_NO_FUSE=1` escape hatch restoring the
//! unfused graph byte-for-byte.
//!
//! The fuse switch is process-wide (`tensor::envcfg`), so every test
//! here serializes on one mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::{AccelBlock, AccelConfig, AccelExec};
use transformer_accel::faults::{FaultPlan, FaultSpace, SiteClass};
use transformer_accel::graph::{self, Executor};
use transformer_accel::quantized::{QuantSeq2Seq, SoftmaxMode};
use transformer_accel::serving::{ContinuousBatcher, EngineConfig, Request, Response};
use transformer_accel::tensor::{envcfg, Mat};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::ffn::FfnResBlock;
use transformer_accel::transformer::incremental::{greedy_decode_incremental_paged, PagedKvMode};
use transformer_accel::transformer::mha::MhaResBlock;
use transformer_accel::transformer::model::Seq2SeqTransformer;
use transformer_accel::transformer::tasks::{Task, TaskGen, BOS, EOS};

/// Serializes tests on the process-wide fuse override and restores the
/// env default on drop (even when a test panics).
struct FuseLock(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FuseLock {
    fn acquire() -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let g = match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        FuseLock(g)
    }
}

impl Drop for FuseLock {
    fn drop(&mut self) {
        envcfg::set_fuse_override(None);
    }
}

/// Runs `f` twice — fusion forced on, then forced off — and returns
/// both results for comparison. Callers hold the [`FuseLock`].
fn both_ways<R>(mut f: impl FnMut() -> R) -> (R, R) {
    envcfg::set_fuse_override(Some(true));
    let fused = f();
    envcfg::set_fuse_override(Some(false));
    let unfused = f();
    envcfg::set_fuse_override(None);
    (fused, unfused)
}

fn models(seed: u64) -> (Seq2SeqTransformer, QuantSeq2Seq, Vec<Vec<usize>>) {
    let mut cfg = ModelConfig::tiny_for_tests();
    cfg.n_layers = 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
    let corpus = gen.corpus(6, &mut StdRng::seed_from_u64(seed ^ 0x5EED));
    let quant = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
    let srcs = corpus.into_iter().map(|(s, _)| s).collect();
    (model, quant, srcs)
}

fn bits(m: &Mat<f32>) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn float_exec_fused_is_bit_identical() {
    let _l = FuseLock::acquire();
    let cfg = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(0xF05E);
    let mha = MhaResBlock::new(&cfg, &mut rng);
    let ffn = FfnResBlock::new(&cfg, &mut rng);
    let x = transformer_accel::tensor::init::normal(&mut rng, 5, cfg.d_model, 1.0);
    let mask = Mat::from_fn(5, 5, |r, c| c > r);

    let (f, u) = both_ways(|| bits(&mha.forward_inference(&x, &x, &x, Some(&mask))));
    assert_eq!(f, u, "FloatExec MHA diverged under fusion");
    let (f, u) = both_ways(|| bits(&ffn.forward_inference(&x)));
    assert_eq!(f, u, "FloatExec FFN diverged under fusion");
}

#[test]
fn row_exec_incremental_decode_is_bit_identical() {
    let _l = FuseLock::acquire();
    let (mut model, _, srcs) = models(0xF10A);
    for src in srcs.iter().take(3) {
        let (f, u) = both_ways(|| {
            greedy_decode_incremental_paged(&model, src, BOS, EOS, 8, PagedKvMode::Fp32)
        });
        assert_eq!(f, u, "RowExec decode diverged under fusion, src {src:?}");
        // And against the full-prefix recompute, so the fused cached
        // path stays anchored to the reference, not just to itself.
        assert_eq!(f, model.greedy_decode(src, BOS, EOS, 8));
    }
}

#[test]
fn quant_exec_fused_is_bit_identical() {
    let _l = FuseLock::acquire();
    let (_, quant, srcs) = models(0xF1A7);
    let layer = &quant.decoder_layers()[0];
    let mut rng = StdRng::seed_from_u64(0xF1A8);
    let cfg = ModelConfig::tiny_for_tests();
    let x = transformer_accel::tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0);
    let xq = layer.self_mha.quantize_input_q(&x);
    let mask = transformer_accel::tensor::ops::causal_mask(xq.rows());

    let (f, u) = both_ways(|| layer.self_mha.forward(&xq, &xq, Some(&mask)));
    assert_eq!(f, u, "QuantExec MHA diverged under fusion");
    let xf = layer.ffn.quantize_input(&x);
    let (f, u) = both_ways(|| layer.ffn.forward(&xf));
    assert_eq!(f, u, "QuantExec FFN diverged under fusion");
    // Full greedy decode across both quantized ResBlock kinds.
    for src in srcs.iter().take(2) {
        let (f, u) = both_ways(|| quant.greedy_decode(src, BOS, EOS, 8));
        assert_eq!(f, u, "quantized greedy decode diverged, src {src:?}");
    }
}

#[test]
fn serving_decode_and_chunked_prefill_are_bit_identical() {
    // QuantRowExec end to end: single-token decode, batched decode, and
    // chunked prefill through the paged KV arena, fused vs unfused.
    let _l = FuseLock::acquire();
    let (_, quant, srcs) = models(0xF5E2);
    let prompts: Vec<Vec<usize>> = srcs
        .iter()
        .map(|s| s.iter().cycle().take(11).copied().collect())
        .collect();
    let run = || -> (Vec<Response>, transformer_accel::serving::ServingStats) {
        let mut cfg = EngineConfig::with_max_batch(3);
        cfg.prefill_chunk = 3;
        let mut engine = ContinuousBatcher::new(&quant, cfg).unwrap();
        for (i, (s, p)) in srcs.iter().zip(&prompts).enumerate() {
            engine
                .submit(Request::new(i as u64, s.clone(), 6).with_prompt(p.clone()))
                .unwrap();
        }
        (engine.run_to_completion(), engine.stats())
    };
    let ((f_resp, f_stats), (u_resp, u_stats)) = both_ways(run);
    assert_eq!(f_resp.len(), u_resp.len());
    for (f, u) in f_resp.iter().zip(&u_resp) {
        assert_eq!(f.tokens, u.tokens, "request {} diverged under fusion", f.id);
    }
    // The counters tell fused from unfused even though the bits agree.
    assert!(f_stats.ops_fused > 0, "fused run must count fused drains");
    assert!(f_stats.intermediates_elided_bytes > 0);
    assert_eq!(u_stats.ops_fused, 0, "escape hatch must disable fusion");
    assert_eq!(u_stats.intermediates_elided_bytes, 0);
}

#[test]
fn accel_exec_runs_fused_graphs_identically() {
    // The accelerator lowering is fusion-transparent: the fused graph
    // must execute to the same codes AND the same cycle count.
    let _l = FuseLock::acquire();
    let cfg = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(0xACCE);
    let mha = MhaResBlock::new(&cfg, &mut rng);
    let ffn = FfnResBlock::new(&cfg, &mut rng);
    let calib: Vec<Mat<f32>> = (0..3)
        .map(|_| transformer_accel::tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
        .collect();
    let qmha = transformer_accel::quantized::QuantMhaResBlock::from_f32(
        &mha,
        &calib,
        &calib,
        SoftmaxMode::Hardware,
    );
    let qffn = transformer_accel::quantized::QuantFfnResBlock::from_f32(&ffn, &calib);
    let acfg = AccelConfig::paper_default();
    let gcfg = graph::GraphConfig {
        d_model: cfg.d_model,
        d_ff: cfg.d_ff,
        h: cfg.h,
    };
    let xq = qmha.quantize_input_q(&calib[0]);

    let g = graph::mha_graph(&gcfg);
    let run_mha = |g: &graph::Graph| {
        let mut exec = AccelExec::new(AccelBlock::Mha(&qmha), &acfg);
        let mut env = exec.run(
            g,
            vec![
                ("x_q", xq.clone()),
                ("x_k", xq.clone()),
                ("x_v", xq.clone()),
            ],
            None,
        );
        (env.take("y"), exec.stats().cycles)
    };
    assert_eq!(run_mha(&graph::fuse(&g)), run_mha(&g));

    let g = graph::ffn_graph(&gcfg);
    let x = qffn.quantize_input(&calib[1]);
    let run_ffn = |g: &graph::Graph| {
        let mut exec = AccelExec::new(AccelBlock::Ffn(&qffn), &acfg);
        let mut env = exec.run(g, vec![("x", x.clone())], None);
        (env.take("y"), exec.stats().cycles)
    };
    assert_eq!(run_ffn(&graph::fuse(&g)), run_ffn(&g));
}

#[test]
fn rollback_after_fault_decode_is_fusion_invariant() {
    // A detected accumulator upset rolls the step back and replays it.
    // The fused QLinear drains defer to the unfused path while fault
    // hooks are live (the ABFT check needs the pre-bias accumulators),
    // so the heal must be bit-identical with fusion on and off — and
    // identical to the fault-free decode.
    let _l = FuseLock::acquire();
    let _g = transformer_accel::faults::exclusive();
    transformer_accel::tensor::par::set_thread_override(Some(1));
    transformer_accel::faults::clear();
    transformer_accel::faults::set_checker(Some(false));
    transformer_accel::faults::reset_counters();

    let (_, quant, srcs) = models(0xFA57);
    let decode = |n: usize| -> (Vec<Response>, transformer_accel::serving::ServingStats) {
        let mut engine = ContinuousBatcher::new(&quant, EngineConfig::with_max_batch(2)).unwrap();
        for (id, src) in srcs.iter().take(n).enumerate() {
            engine
                .submit(Request::new(id as u64, src.clone(), 6).with_prompt(vec![1, 2, 3]))
                .unwrap();
        }
        (engine.run_to_completion(), engine.stats())
    };
    let want = decode(2).0;

    // Count the GEMM passes prefill consumes, then schedule one
    // accumulator flip inside the first batched decode step's window.
    transformer_accel::faults::install(FaultPlan::empty());
    {
        let mut arena = transformer_accel::quantized::incremental::KvArena::for_model(&quant);
        for src in srcs.iter().take(2) {
            let _ = quant.start_session(&mut arena, src);
        }
    }
    let p0 = transformer_accel::faults::with_injector(|i| i.passes_seen()).unwrap();
    transformer_accel::faults::clear();
    let plan = FaultPlan::seeded(
        7,
        1,
        &FaultSpace {
            index_lo: p0 + 1,
            index_hi: p0 + 15,
            rows: 2,
            cols: 8,
            classes: vec![SiteClass::Accumulator],
        },
    );

    let run_faulted = |fuse: bool| {
        envcfg::set_fuse_override(Some(fuse));
        transformer_accel::faults::install(plan.clone());
        transformer_accel::faults::set_checker(Some(true));
        transformer_accel::faults::reset_counters();
        let (resp, stats) = decode(2);
        let c = transformer_accel::faults::counters();
        transformer_accel::faults::clear();
        transformer_accel::faults::set_checker(Some(false));
        envcfg::set_fuse_override(None);
        (resp, stats, c)
    };
    for fuse in [true, false] {
        let (resp, stats, c) = run_faulted(fuse);
        assert_eq!(c.injected, 1, "fuse={fuse}: the scheduled flip must fire");
        assert!(c.detected >= 1, "fuse={fuse}: flip must be detected");
        assert!(stats.retries >= 1, "fuse={fuse}: step must be retried");
        assert_eq!(
            resp.iter().map(|r| &r.tokens).collect::<Vec<_>>(),
            want.iter().map(|r| &r.tokens).collect::<Vec<_>>(),
            "fuse={fuse}: healed decode must match the fault-free decode"
        );
    }

    transformer_accel::faults::set_checker(None);
    transformer_accel::faults::reset_counters();
    transformer_accel::tensor::par::set_thread_override(None);
}

#[test]
fn no_fuse_escape_hatch_restores_unfused_graphs_byte_for_byte() {
    let _l = FuseLock::acquire();
    let gcfg = graph::GraphConfig {
        d_model: 128,
        d_ff: 512,
        h: 4,
    };
    envcfg::set_fuse_override(Some(false));
    for g in [
        graph::mha_graph(&gcfg),
        graph::mha_cached_graph(&gcfg),
        graph::ffn_graph(&gcfg),
    ] {
        let gated = graph::fuse_if(g.clone(), envcfg::fuse_enabled());
        assert_eq!(gated, g, "ACCEL_NO_FUSE must return the input graph");
    }
    envcfg::set_fuse_override(Some(true));
    let fused = graph::fuse_if(graph::ffn_graph(&gcfg), envcfg::fuse_enabled());
    assert_ne!(
        fused,
        graph::ffn_graph(&gcfg),
        "fusion must rewrite when on"
    );
    envcfg::set_fuse_override(None);
}
