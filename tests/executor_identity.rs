//! The pre-refactor forward paths, frozen here as golden references:
//! every executor that now runs the shared operator graph
//! (`FloatExec`, `QuantExec` — and, transitively, the accelerator's
//! command-stream interpreter) must reproduce them **bit for bit**
//! through the public block APIs. This is the refactor's
//! non-negotiable invariant: one dataflow description, many backends,
//! zero numeric drift.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{ops, Mat};
use transformer_accel::quantized::qlinear::residual_add_i8;
use transformer_accel::quantized::softmax::scaled_masked_softmax;
use transformer_accel::quantized::{QuantFfnResBlock, QuantMhaResBlock, SoftmaxMode};
use transformer_accel::transformer::attention::attention_forward;
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::ffn::FfnResBlock;
use transformer_accel::transformer::mha::MhaResBlock;

fn mini_cfg() -> ModelConfig {
    ModelConfig {
        name: "mini64h".into(),
        d_model: 128,
        d_ff: 512,
        h: 4,
        n_layers: 1,
        vocab: 16,
        max_len: 16,
    }
}

/// The original hand-rolled FP32 MHA ResBlock forward (per-head
/// attention over projected panels, concat, output projection,
/// residual, LayerNorm) — exactly the code the graph path replaced.
fn float_mha_reference(block: &MhaResBlock, x: &Mat<f32>, mask: Option<&Mat<bool>>) -> Mat<f32> {
    let mha = block.mha();
    let (wq, wk, wv, wo) = mha.projections();
    let h = mha.heads();
    let q = wq.forward_inference(x);
    let k = wk.forward_inference(x);
    let v = wv.forward_inference(x);
    let d_k = q.cols() / h;
    let scale = 1.0 / (d_k as f32).sqrt();
    let mut panels = Vec::with_capacity(h);
    for i in 0..h {
        let c0 = i * d_k;
        let qi = q.submatrix(0, c0, q.rows(), d_k).unwrap();
        let ki = k.submatrix(0, c0, k.rows(), d_k).unwrap();
        let vi = v.submatrix(0, c0, v.rows(), d_k).unwrap();
        let (out, _) = attention_forward(&qi, &ki, &vi, mask, scale);
        panels.push(out);
    }
    let concat = Mat::hconcat(&panels).unwrap();
    let sub = wo.forward_inference(&concat);
    let res = ops::add(x, &sub).unwrap();
    block.layernorm().forward_inference(&res)
}

/// The original hand-rolled FP32 FFN ResBlock forward.
fn float_ffn_reference(block: &FfnResBlock, x: &Mat<f32>) -> Mat<f32> {
    let (lin1, lin2) = block.sublayers();
    let hidden = ops::relu(&lin1.forward_inference(x));
    let sub = lin2.forward_inference(&hidden);
    let res = ops::add(x, &sub).unwrap();
    block.layernorm().forward_inference(&res)
}

/// The original hand-rolled INT8 MHA ResBlock forward.
fn quant_mha_reference(
    block: &QuantMhaResBlock,
    xq: &Mat<i8>,
    xkv: &Mat<i8>,
    mask: Option<&Mat<bool>>,
) -> (Mat<i8>, Mat<i8>) {
    let (wq, wk, wv, wo) = block.projections();
    let d_k = block.d_k();
    let q = wq.forward(xq);
    let k = wk.forward(xkv);
    let v = wv.forward(xkv);
    let mut panels = Vec::with_capacity(block.heads());
    for i in 0..block.heads() {
        let c0 = i * d_k;
        let qi = q.submatrix(0, c0, q.rows(), d_k).unwrap();
        let ki = k.submatrix(0, c0, k.rows(), d_k).unwrap();
        let vi = v.submatrix(0, c0, v.rows(), d_k).unwrap();
        let d_acc = tensor::gemm::matmul_i8_nt(&qi, &ki).unwrap();
        let probs = scaled_masked_softmax(&d_acc, block.d_scale(), d_k, mask, block.softmax_mode());
        let p_acc = tensor::gemm::matmul_i8(&probs, &vi).unwrap();
        panels.push(p_acc.map(|&a| block.requantize_p(a)));
    }
    let p = Mat::hconcat(&panels).unwrap();
    let g = residual_add_i8(&wo.forward(&p), xq);
    (block.layernorm().forward(&g), p)
}

/// The original hand-rolled INT8 FFN ResBlock forward.
fn quant_ffn_reference(block: &QuantFfnResBlock, x: &Mat<i8>) -> (Mat<i8>, Mat<i8>) {
    let (lin1, lin2) = block.sublayers();
    let hidden = lin1.forward(x).map(|&v| v.max(0));
    let g = residual_add_i8(&lin2.forward(&hidden), x);
    (block.layernorm().forward(&g), hidden)
}

#[test]
fn float_executor_reproduces_prerefactor_mha_bitwise() {
    let cfg = mini_cfg();
    let mut rng = StdRng::seed_from_u64(0xE1D);
    let block = MhaResBlock::new(&cfg, &mut rng);
    let x = tensor::init::normal(&mut rng, 10, cfg.d_model, 1.0);
    assert_eq!(
        block.forward_inference(&x, &x, &x, None),
        float_mha_reference(&block, &x, None)
    );
    let mask = ops::causal_mask(10);
    assert_eq!(
        block.forward_inference(&x, &x, &x, Some(&mask)),
        float_mha_reference(&block, &x, Some(&mask))
    );
}

#[test]
fn float_executor_reproduces_prerefactor_ffn_bitwise() {
    let cfg = mini_cfg();
    let mut rng = StdRng::seed_from_u64(0xE2D);
    let block = FfnResBlock::new(&cfg, &mut rng);
    let x = tensor::init::normal(&mut rng, 7, cfg.d_model, 1.0);
    assert_eq!(block.forward_inference(&x), float_ffn_reference(&block, &x));
}

#[test]
fn quant_executor_reproduces_prerefactor_blocks_bitwise() {
    let cfg = mini_cfg();
    let mut rng = StdRng::seed_from_u64(0xE3D);
    let mha = MhaResBlock::new(&cfg, &mut rng);
    let ffn = FfnResBlock::new(&cfg, &mut rng);
    let calib: Vec<Mat<f32>> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, 9, cfg.d_model, 1.0))
        .collect();
    for mode in [SoftmaxMode::Fp32, SoftmaxMode::Hardware] {
        let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, mode);
        let xq = qmha.quantize_input_q(&calib[0]);
        assert_eq!(
            qmha.forward(&xq, &xq, None),
            quant_mha_reference(&qmha, &xq, &xq, None)
        );
        let mask = ops::causal_mask(9);
        assert_eq!(
            qmha.forward(&xq, &xq, Some(&mask)),
            quant_mha_reference(&qmha, &xq, &xq, Some(&mask))
        );
    }
    let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
    let x = qffn.quantize_input(&calib[1]);
    assert_eq!(qffn.forward(&x), quant_ffn_reference(&qffn, &x));
}
