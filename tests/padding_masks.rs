//! Padding-mask behaviour end to end: variable-length sequences padded
//! to the array's row count must produce the same results for the valid
//! positions as running the unpadded sequence — in FP32, in the INT8
//! datapath, and through the accelerator facade.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::{ops, Mat};
use transformer_accel::accel::{AccelConfig, Accelerator};
use transformer_accel::quantized::{QuantMhaResBlock, SoftmaxMode};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::mha::MhaResBlock;

fn setup() -> (MhaResBlock, QuantMhaResBlock, Mat<f32>) {
    let cfg = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(0x9AD);
    let block = MhaResBlock::new(&cfg, &mut rng);
    let calib: Vec<Mat<f32>> = (0..4)
        .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
        .collect();
    let qblock = QuantMhaResBlock::from_f32(&block, &calib, &calib, SoftmaxMode::Hardware);
    (block, qblock, calib[0].clone())
}

/// Builds the `[padded_len, padded_len]` key-padding mask for a sequence
/// whose first `valid` positions are real.
fn key_padding_mask(padded_len: usize, valid: usize) -> Mat<bool> {
    let flags: Vec<bool> = (0..padded_len).map(|i| i < valid).collect();
    ops::padding_mask(padded_len, &flags)
}

#[test]
fn fp32_padded_rows_match_unpadded() {
    let (mut block, _, x) = setup();
    let valid = 5;
    let x_short = x.submatrix(0, 0, valid, x.cols()).unwrap();
    let want = block.forward(&x_short, &x_short, &x_short, None);

    // zero-pad to 8 rows; mask out the padding keys
    let x_padded = x_short.padded(8, x.cols());
    let mask = key_padding_mask(8, valid);
    let got = block.forward(&x_padded, &x_padded, &x_padded, Some(&mask));
    for r in 0..valid {
        for c in 0..x.cols() {
            assert!(
                (got[(r, c)] - want[(r, c)]).abs() < 1e-4,
                "fp32 mismatch at ({r},{c})"
            );
        }
    }
}

#[test]
fn quantized_padded_rows_match_unpadded() {
    let (_, qblock, x) = setup();
    let valid = 5;
    let x_short = x.submatrix(0, 0, valid, x.cols()).unwrap();
    let xq_short = qblock.quantize_input_q(&x_short);
    let (want, _) = qblock.forward(&xq_short, &xq_short, None);

    let x_padded = x_short.padded(8, x.cols());
    let xq_padded = qblock.quantize_input_q(&x_padded);
    let mask = key_padding_mask(8, valid);
    let (got, _) = qblock.forward(&xq_padded, &xq_padded, Some(&mask));
    // the INT8 datapath is bit-exact per row: valid rows must be
    // identical codes
    for r in 0..valid {
        assert_eq!(got.row(r), want.row(r), "quantized row {r} differs");
    }
}

#[test]
fn accelerator_honours_padding_masks() {
    let (_, qblock, x) = setup();
    let cfg = AccelConfig {
        model: ModelConfig::tiny_for_tests(),
        s: 8,
        ..AccelConfig::paper_default()
    };
    let mut accel = Accelerator::new(cfg);
    accel.load_mha(qblock.clone());

    let valid = 6;
    let x_short = x.submatrix(0, 0, valid, x.cols()).unwrap();
    let x_padded = x_short.padded(8, x.cols());
    let xq = qblock.quantize_input_q(&x_padded);
    let mask = key_padding_mask(8, valid);
    let (out, report) = accel.run_mha(&xq, &xq, Some(&mask)).unwrap();

    let xq_short = qblock.quantize_input_q(&x_short);
    let (want, _) = qblock.forward(&xq_short, &xq_short, None);
    for r in 0..valid {
        assert_eq!(out.row(r), want.row(r), "accelerator row {r} differs");
    }
    // padded run is scheduled at the full 8 rows
    assert!(report.schedule.cycles.get() > 0);
}
