//! Cross-validation between the two views of the accelerator: the
//! array-level execution engine (what the PE grid actually does, pass by
//! pass) and the scheduler (when each pass happens). Their op
//! inventories must agree exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::engine::ArrayEngine;
use transformer_accel::accel::{scheduler, AccelConfig};
use transformer_accel::quantized::{QuantFfnResBlock, QuantMhaResBlock, SoftmaxMode};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::ffn::FfnResBlock;
use transformer_accel::transformer::mha::MhaResBlock;

fn table1_mini() -> ModelConfig {
    // 64h-patterned mini model: h = 2 so panels are exactly 64 wide and
    // the Algorithm-1 structure matches the paper's counting.
    ModelConfig {
        name: "mini-64h".into(),
        d_model: 128,
        d_ff: 512,
        h: 2,
        n_layers: 1,
        vocab: 16,
        max_len: 16,
    }
}

fn quantized_blocks(s: usize) -> (QuantMhaResBlock, QuantFfnResBlock, tensor::Mat<i8>) {
    let cfg = table1_mini();
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mha = MhaResBlock::new(&cfg, &mut rng);
    let ffn = FfnResBlock::new(&cfg, &mut rng);
    let calib: Vec<_> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
        .collect();
    let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let qffn = QuantFfnResBlock::from_f32(&ffn, &calib);
    let codes = qmha.quantize_input_q(&calib[0]);
    (qmha, qffn, codes)
}

fn accel_cfg(s: usize) -> AccelConfig {
    AccelConfig {
        model: table1_mini(),
        s,
        ..AccelConfig::paper_default()
    }
}

#[test]
fn mha_gemm_pass_counts_agree() {
    let s = 16;
    let (qmha, _, codes) = quantized_blocks(s);
    let mut engine = ArrayEngine::new(s);
    let run = engine.execute_mha(&qmha, &codes, &codes, None);

    let rep = scheduler::schedule_mha_cross(&accel_cfg(s), s, s);
    let scheduled_gemms = rep
        .timeline
        .events()
        .iter()
        .filter(|e| {
            let u = rep.timeline.unit_name(e.unit);
            u == "systolic_array" && e.label != "layernorm"
        })
        .count();
    assert_eq!(
        run.stats.gemm_passes, scheduled_gemms,
        "engine executed {} GEMM passes, scheduler issued {}",
        run.stats.gemm_passes, scheduled_gemms
    );
}

#[test]
fn ffn_gemm_pass_counts_agree() {
    let s = 16;
    let (_, qffn, _) = quantized_blocks(s);
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let x = qffn.quantize_input(&tensor::init::normal(&mut rng, s, 128, 1.0));
    let mut engine = ArrayEngine::new(s);
    let run = engine.execute_ffn(&qffn, &x);

    let rep = scheduler::schedule_ffn_len(&accel_cfg(s), s);
    let scheduled_gemms = rep
        .timeline
        .events()
        .iter()
        .filter(|e| rep.timeline.unit_name(e.unit) == "systolic_array")
        .count();
    assert_eq!(run.stats.gemm_passes, scheduled_gemms);
}

#[test]
fn engine_macs_match_analysis_counts() {
    let s = 16;
    let (qmha, qffn, codes) = quantized_blocks(s);
    let cfg = table1_mini();
    let mut engine = ArrayEngine::new(s);

    let run = engine.execute_mha(&qmha, &codes, &codes, None);
    let analytic = transformer_accel::accel::analysis::mha_macs(&cfg, s);
    // the engine pads K to 64 rows for the QK^T pass, so its MAC count
    // includes the zero-padding work: qk/av terms count 64 columns
    // instead of s
    let padded_qk_extra = (64 - s) as u64 * s as u64 * cfg.d_k() as u64 * cfg.h as u64;
    assert_eq!(run.stats.macs, analytic.total() + padded_qk_extra);

    let run = engine.execute_ffn(&qffn, &codes);
    assert_eq!(
        run.stats.macs,
        transformer_accel::accel::analysis::ffn_macs(&cfg, s)
    );
}

#[test]
fn scheduler_streams_at_least_the_engine_work() {
    // The scheduler's SA busy time (streams + blocking drains) must be
    // at least the work the array provably performs (stream cycles =
    // reduction depths), and no more than the engine's fully isolated
    // per-pass total.
    let s = 16;
    let (qmha, _, codes) = quantized_blocks(s);
    let mut engine = ArrayEngine::new(s);
    let run = engine.execute_mha(&qmha, &codes, &codes, None);
    let rep = scheduler::schedule_mha_cross(&accel_cfg(s), s, s);
    assert!(rep.sa_busy <= run.stats.isolated_cycles);
    assert!(rep.cycles <= run.stats.isolated_cycles + hwsim::cycles::Cycle(2048));
}
