//! Regression tests pinning the reproduction's headline numbers against
//! the paper's published values (see EXPERIMENTS.md for the narrative).

use transformer_accel::accel::area::{estimate_power, AreaModel};
use transformer_accel::accel::{scheduler, AccelConfig, SchedPolicy};
use transformer_accel::baseline::gpu::{ffn_trace, mha_trace, GpuModel};
use transformer_accel::transformer::config::ModelConfig;

#[test]
fn e4_cycle_counts_bracket_the_paper() {
    let mut cfg = AccelConfig::paper_default();
    let mha = scheduler::schedule_mha(&cfg).cycles.get();
    let ffn = scheduler::schedule_ffn(&cfg).cycles.get();
    // Published: 21,344 MHA / 42,099 FFN.
    assert!((mha as f64 - 21_344.0).abs() / 21_344.0 < 0.02, "MHA {mha}");
    assert!((ffn as f64 - 42_099.0).abs() / 42_099.0 < 0.16, "FFN {ffn}");
    // And the optimistic (double-buffered) bound stays below the paper.
    cfg.sched = SchedPolicy::aggressive();
    assert!(scheduler::schedule_mha(&cfg).cycles.get() < 21_344);
}

#[test]
fn e7_table2_is_reproduced() {
    let model = AreaModel::new(AccelConfig::paper_default());
    let top = model.top();
    assert!((top.lut - 471_563.0).abs() / 471_563.0 < 0.005);
    assert!((top.ff - 217_859.0).abs() / 217_859.0 < 0.005);
    assert!((top.bram - 498.0).abs() < 5.0);
    assert_eq!(top.dsp, 129.0);
}

#[test]
fn e8_table3_speedups_have_the_published_shape() {
    let cfg = AccelConfig::paper_default();
    let gpu = GpuModel::v100_pytorch();
    let fpga_mha = scheduler::schedule_mha(&cfg).latency_us;
    let fpga_ffn = scheduler::schedule_ffn(&cfg).latency_us;
    let su_mha = gpu.latency_us(&mha_trace(&cfg.model, 64)) / fpga_mha;
    let su_ffn = gpu.latency_us(&ffn_trace(&cfg.model, 64)) / fpga_ffn;
    // paper: 14.6x and 3.4x
    assert!((su_mha - 14.6).abs() < 1.5, "MHA speed-up {su_mha}");
    assert!((su_ffn - 3.4).abs() < 1.0, "FFN speed-up {su_ffn}");
    assert!(su_mha > 3.0 * su_ffn, "MHA advantage must dwarf FFN's");
}

#[test]
fn e10_power_is_within_the_published_envelope() {
    let cfg = AccelConfig::paper_default();
    let p = estimate_power(&AreaModel::new(cfg.clone()), &cfg);
    assert!((p.total_w() - 16.7).abs() < 0.2, "{}", p.total_w());
}

#[test]
fn e2_eq3_conclusion_holds_for_every_table1_model() {
    for cfg in ModelConfig::table1() {
        let exact = transformer_accel::accel::analysis::qk_ratio(&cfg, 64);
        assert!(exact < 0.03, "{}: {exact}", cfg.name);
    }
}

#[test]
fn e6_fig7_savings_are_exactly_two_passes() {
    let mut cfg = AccelConfig::paper_default();
    use transformer_accel::accel::LayerNormMode::*;
    cfg.sched.layernorm = Straightforward;
    let sf = scheduler::schedule_ffn(&cfg).cycles.get();
    cfg.sched.layernorm = InlineMeanAndVariance;
    let opt = scheduler::schedule_ffn(&cfg).cycles.get();
    assert_eq!(sf - opt, 2 * 512, "two d_model passes saved");
}

#[test]
fn e5_softmax_hiding_condition_at_the_paper_point() {
    assert!(transformer_accel::accel::softmax_module::hides_behind_vw(
        64, 512
    ));
    // the schedule with and without the overlap must differ by the
    // per-head softmax exposure
    let mut cfg = AccelConfig::paper_default();
    let on = scheduler::schedule_mha(&cfg).cycles.get();
    cfg.sched.overlap_softmax = false;
    let off = scheduler::schedule_mha(&cfg).cycles.get();
    assert!(off > on, "{off} vs {on}");
}
