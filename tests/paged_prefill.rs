//! Differential tests for the long-context serving path: chunked
//! prefill through the paged INT8 KV cache versus the sequential
//! token-at-a-time reference, and the FP32 model's two KV page modes
//! versus the never-paged full-recompute decode.
//!
//! The INT8 paged path stores exactly the i8 codes a flat cache held,
//! so chunked prefill + paging must be **bit-identical** to
//! `greedy_decode_with_prompt` at every chunk size and page size. The
//! FP32 model's `Fp32` page mode carries the same guarantee against
//! `greedy_decode`; its `Int8` page mode is lossy by design and is held
//! to a pinned SQNR/agreement budget instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::quantized::{QuantSeq2Seq, SoftmaxMode};
use transformer_accel::serving::{ContinuousBatcher, EngineConfig, Request};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::incremental::{
    greedy_decode_incremental_paged, FpKvArena, IncrementalSession, PagedKvMode,
};
use transformer_accel::transformer::model::Seq2SeqTransformer;
use transformer_accel::transformer::tasks::{Task, TaskGen, BOS, EOS};

fn setup(seed: u64) -> (Seq2SeqTransformer, QuantSeq2Seq, Vec<Vec<usize>>) {
    let mut cfg = ModelConfig::tiny_for_tests();
    cfg.n_layers = 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
    let corpus = gen.corpus(6, &mut StdRng::seed_from_u64(seed ^ 0xABCD));
    let quant = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
    let srcs = corpus.into_iter().map(|(s, _)| s).collect();
    (model, quant, srcs)
}

/// Long target-side prompts built from valid vocabulary tokens.
fn prompts(srcs: &[Vec<usize>], len: usize) -> Vec<Vec<usize>> {
    srcs.iter()
        .map(|s| s.iter().cycle().take(len).copied().collect())
        .collect()
}

#[test]
fn chunked_prefill_paged_int8_matches_sequential_reference() {
    // The serving engine (chunked prefill, paged INT8 KV, mixed
    // prefill/decode batches) against the single-session token-at-a-time
    // golden path, across chunk sizes and prefill budgets. Page size
    // follows ACCEL_KV_PAGE here, so the CI page-stress matrix also
    // exercises 1-row pages through this test.
    let (_, quant, srcs) = setup(0xC0FFEE);
    let prompts = prompts(&srcs, 19);
    let want: Vec<Vec<usize>> = srcs
        .iter()
        .zip(&prompts)
        .map(|(s, p)| quant.greedy_decode_with_prompt(s, p, 8))
        .collect();
    for (chunk, budget) in [(1usize, 64usize), (3, 64), (16, 64), (8, 6), (64, 64)] {
        let mut cfg = EngineConfig::with_max_batch(4);
        cfg.prefill_chunk = chunk;
        cfg.max_prefill_rows = budget;
        let mut engine = ContinuousBatcher::new(&quant, cfg).unwrap();
        for (i, (s, p)) in srcs.iter().zip(&prompts).enumerate() {
            engine
                .submit(Request::new(i as u64, s.clone(), 8).with_prompt(p.clone()))
                .unwrap();
        }
        let responses = engine.run_to_completion();
        assert_eq!(responses.len(), srcs.len());
        for (resp, want) in responses.iter().zip(&want) {
            assert_eq!(
                &resp.tokens, want,
                "chunk {chunk} budget {budget} id {} diverged from sequential",
                resp.id
            );
        }
        // Retired sessions hand every page back.
        assert_eq!(engine.stats().kv_bytes_in_use, 0);
        assert!(engine.stats().kv_bytes_peak > 0);
    }
}

#[test]
fn fp32_page_mode_is_bit_identical_to_pre_paging_decode() {
    // Fp32 pages reproduce the exact bytes a flat cache held: the paged
    // incremental decode must equal the full-prefix recompute (the
    // pre-paging reference) at every page size, and the per-step logits
    // must not differ by a single bit between page sizes.
    let (mut model, _, srcs) = setup(0xF00D);
    for src in &srcs {
        let full = model.greedy_decode(src, BOS, EOS, 8);
        let paged = greedy_decode_incremental_paged(&model, src, BOS, EOS, 8, PagedKvMode::Fp32);
        assert_eq!(full, paged, "src {src:?}");
    }
    let d_model = model.config().d_model;
    let prefix = [1usize, 5, 8, 6, 2, 9, 4, 3];
    for src in &srcs {
        let mut logits_by_page: Vec<Vec<Vec<u32>>> = Vec::new();
        for page_rows in [1usize, 3, 64] {
            let mut arena = FpKvArena::with_page_rows(d_model, PagedKvMode::Fp32, page_rows);
            let mut session = IncrementalSession::new(&model, &mut arena, src);
            let steps: Vec<Vec<u32>> = prefix
                .iter()
                .map(|&t| {
                    session
                        .step(&model, &mut arena, t)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect();
            logits_by_page.push(steps);
        }
        assert_eq!(logits_by_page[0], logits_by_page[1], "page 1 vs 3");
        assert_eq!(logits_by_page[0], logits_by_page[2], "page 1 vs 64");
    }
}

#[test]
fn int8_page_mode_stays_within_pinned_accuracy_budget() {
    // Int8 FP32-model pages are lossy; the budget pinned here: (1)
    // teacher-forced logits keep >= 20 dB SQNR against the exact path
    // at every step, and (2) greedy decodes agree on a clear majority
    // of random tiny models.
    let mut agree = 0usize;
    let mut total = 0usize;
    for seed in [0xBEEFu64, 0xBEF0, 0xBEF1, 0xBEF2, 0xBEF3] {
        let (model, _, srcs) = setup(seed);
        let src = &srcs[0];
        let d_model = model.config().d_model;
        let mut fa = FpKvArena::with_page_rows(d_model, PagedKvMode::Fp32, 4);
        let mut qa = FpKvArena::with_page_rows(d_model, PagedKvMode::Int8, 4);
        let mut fs = IncrementalSession::new(&model, &mut fa, src);
        let mut qs = IncrementalSession::new(&model, &mut qa, src);
        for &t in &[1usize, 5, 8, 6, 2, 9] {
            let exact = fs.step(&model, &mut fa, t);
            let lossy = qs.step(&model, &mut qa, t);
            let (mut sig, mut err) = (0.0f64, 0.0f64);
            for (e, l) in exact.iter().zip(&lossy) {
                sig += (*e as f64).powi(2);
                err += (*e as f64 - *l as f64).powi(2);
            }
            let sqnr_db = 10.0 * (sig / err.max(1e-30)).log10();
            assert!(sqnr_db > 20.0, "seed {seed:#x}: logit SQNR {sqnr_db:.1} dB");
        }
        total += 1;
        let fp = greedy_decode_incremental_paged(&model, src, BOS, EOS, 8, PagedKvMode::Fp32);
        let q8 = greedy_decode_incremental_paged(&model, src, BOS, EOS, 8, PagedKvMode::Int8);
        if fp == q8 {
            agree += 1;
        }
    }
    assert!(
        agree * 2 > total,
        "Int8 paged decode agreed on only {agree}/{total} models"
    );
}
