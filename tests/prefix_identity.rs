//! Differential suite for the shared-prefix KV cache: decode from a
//! forked, page-aligned prefix snapshot must be **byte-identical** to a
//! cold start that prefilled every row itself — across the FP32 and
//! INT8 row executors, through the serving engine's admission path, and
//! through an ABFT fault-rollback that lands on a shared page boundary
//! (the rollback must copy-on-write, never mutate a page the cache
//! still holds).

use quantized::{QuantSeq2Seq, SoftmaxMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serving::{ContinuousBatcher, EngineConfig, Request, Response};
use transformer::config::ModelConfig;
use transformer::incremental::{FpKvArena, IncrementalSession, PagedKvMode};
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen, BOS};

fn fp32_model() -> (Seq2SeqTransformer, ModelConfig, Vec<Vec<usize>>) {
    let mut cfg = ModelConfig::tiny_for_tests();
    cfg.n_layers = 2;
    let mut rng = StdRng::seed_from_u64(0x9EF1);
    let model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
    let srcs = gen
        .corpus(4, &mut StdRng::seed_from_u64(0x9EF2))
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    (model, cfg, srcs)
}

fn quant_model() -> (QuantSeq2Seq, Vec<Vec<usize>>) {
    let (model, cfg, srcs) = fp32_model();
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
    let corpus = gen.corpus(8, &mut StdRng::seed_from_u64(0x9EF3));
    (
        QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware),
        srcs,
    )
}

/// Ingests `target` rows into a fresh FP32 session (logits discarded —
/// prefill), then greedily decodes `n` tokens, returning every decode
/// step's logits as raw bits plus the chosen tokens.
fn fp32_cold_decode(
    model: &Seq2SeqTransformer,
    arena: &mut FpKvArena,
    src: &[usize],
    target: &[usize],
    n: usize,
) -> (Vec<Vec<u32>>, Vec<usize>) {
    let mut s = IncrementalSession::new(model, arena, src);
    let mut logits = Vec::new();
    for &t in target {
        logits = s.step(model, arena, t);
    }
    let (bits, tokens) = fp32_greedy(model, arena, &mut s, logits, n);
    s.release(arena);
    (bits, tokens)
}

/// Greedy continuation shared by the cold and forked paths: `logits`
/// are the frontier row the first token is sampled from.
fn fp32_greedy(
    model: &Seq2SeqTransformer,
    arena: &mut FpKvArena,
    s: &mut IncrementalSession,
    mut logits: Vec<f32>,
    n: usize,
) -> (Vec<Vec<u32>>, Vec<usize>) {
    let mut bits = vec![logits.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()];
    let mut tokens = Vec::new();
    for _ in 0..n {
        let next = tensor::ops::argmax(&logits);
        tokens.push(next);
        logits = s.step(model, arena, next);
        bits.push(logits.iter().map(|x| x.to_bits()).collect());
    }
    (bits, tokens)
}

#[test]
fn fp32_decode_from_forked_prefix_is_byte_identical_to_cold_start() {
    let (model, cfg, srcs) = fp32_model();
    let src = &srcs[0];
    let prompt: Vec<usize> = src.iter().cycle().take(13).copied().collect();
    let mut target = vec![BOS];
    target.extend_from_slice(&prompt);
    for mode in [PagedKvMode::Fp32, PagedKvMode::Int8] {
        let mut arena = FpKvArena::with_page_rows(cfg.d_model, mode, 4);
        let (want_bits, want_tokens) = fp32_cold_decode(&model, &mut arena, src, &target, 6);

        // Build the cache entry the way the engine does: full prefill,
        // fork, roll the fork back to a page boundary.
        let mut live = IncrementalSession::new(&model, &mut arena, src);
        for &t in &target {
            let _ = live.step(&model, &mut arena, t);
        }
        let aligned = (target.len() / 4) * 4;
        let mut entry = live.fork(&mut arena);
        entry.rollback_rows(&mut arena, target.len() - aligned);
        live.release(&mut arena);

        // Hit: fork the entry, replay only the suffix, decode. Every
        // logits row must match the cold run bit for bit.
        let mut hit = entry.fork(&mut arena);
        let mut logits = Vec::new();
        for &t in &target[aligned..] {
            logits = hit.step(&model, &mut arena, t);
        }
        let (bits, tokens) = fp32_greedy(&model, &mut arena, &mut hit, logits, 6);
        assert_eq!(tokens, want_tokens, "mode {mode:?}");
        assert_eq!(
            bits, want_bits,
            "mode {mode:?}: logits must be byte-identical"
        );

        // Roll the hit session back *into* the shared region (mid page)
        // and replay: the re-pushed rows must copy-on-write, and the
        // replayed continuation stays byte-identical.
        let back_to = aligned - 2;
        hit.rollback_rows(&mut arena, hit.pos() - back_to);
        let mut logits = Vec::new();
        for &t in &target[back_to..] {
            logits = hit.step(&model, &mut arena, t);
        }
        let (bits, tokens) = fp32_greedy(&model, &mut arena, &mut hit, logits, 6);
        assert_eq!(tokens, want_tokens, "mode {mode:?} after mid-page rollback");
        assert_eq!(bits, want_bits, "mode {mode:?} after mid-page rollback");
        hit.release(&mut arena);

        // The entry was never mutated by any of that: a fresh fork
        // still reproduces the cold run.
        let mut again = entry.fork(&mut arena);
        let mut logits = Vec::new();
        for &t in &target[aligned..] {
            logits = again.step(&model, &mut arena, t);
        }
        let (bits, _) = fp32_greedy(&model, &mut arena, &mut again, logits, 6);
        assert_eq!(bits, want_bits, "mode {mode:?}: entry must be immutable");
        again.release(&mut arena);
        entry.release(&mut arena);
        assert_eq!(arena.kv_bytes_in_use(), 0, "mode {mode:?}: no page leaked");
    }
}

fn decoded(responses: &[Response]) -> Vec<(u64, Vec<usize>, bool)> {
    responses
        .iter()
        .map(|r| (r.id, r.tokens.clone(), r.hit_eos()))
        .collect()
}

#[test]
fn int8_engine_shared_prefix_serving_is_bit_identical_to_cold() {
    let (q, srcs) = quant_model();
    let base: Vec<usize> = srcs[0].iter().cycle().take(35).copied().collect();
    let mut extended = base.clone();
    extended.extend(srcs[0].iter().cycle().take(10));
    // Shares base's first 20 tokens, then a tail base never had: served
    // by forking base's snapshot and rolling back to the divergence.
    let mut diverged: Vec<usize> = base[..20].to_vec();
    diverged.extend(srcs[1].iter().cycle().take(15));
    // Exact repeats, a prompt *extending* a cached prefix, the same
    // prompt under a different source (which must never reuse: the
    // cross-attention K/V belong to the source), and a diverged tail.
    let reqs = || -> Vec<Request> {
        vec![
            Request::new(0, srcs[0].clone(), 6).with_prompt(base.clone()),
            Request::new(1, srcs[0].clone(), 6).with_prompt(base.clone()),
            Request::new(2, srcs[0].clone(), 6).with_prompt(extended.clone()),
            Request::new(3, srcs[1].clone(), 6).with_prompt(base.clone()),
            Request::new(4, srcs[0].clone(), 6).with_prompt(diverged.clone()),
        ]
    };
    let run = |budget: usize| {
        let mut cfg = EngineConfig::with_max_batch(1);
        cfg.prefix_cache_bytes = budget;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();
        for r in reqs() {
            engine.submit(r).unwrap();
        }
        (decoded(&engine.run_to_completion()), engine.stats())
    };
    let (cold_tokens, cold) = run(0);
    let (warm_tokens, warm) = run(usize::MAX);
    assert_eq!(
        warm_tokens, cold_tokens,
        "prefix reuse must not change any token"
    );
    // Request 1 reuses request 0's full aligned prefix; request 2 finds
    // the same entry as a *proper prefix* of its longer prompt; request
    // 3 must miss despite an identical prompt; request 4 reuses only
    // the 20 shared tokens (plus BOS) via rollback of a deeper fork.
    assert_eq!(warm.prefix_hits, 3);
    assert!(warm.prefix_misses >= 2);
    assert_eq!(
        cold.prefill_rows - warm.prefill_rows,
        warm.prefix_rows_reused,
        "every reused row is a prefill row the warm engine skipped"
    );
    assert!(warm.prefix_rows_reused > 0);
    // The sequential references pin absolute correctness of both runs.
    for (resp, (s, p)) in warm_tokens.iter().zip([
        (&srcs[0], &base),
        (&srcs[0], &base),
        (&srcs[0], &extended),
        (&srcs[1], &base),
        (&srcs[0], &diverged),
    ]) {
        assert_eq!(resp.1, q.greedy_decode_with_prompt(s, p, 6));
    }
}

#[test]
fn fault_rollback_on_shared_page_boundary_heals_without_mutating_the_cache() {
    use faults::{FaultEvent, FaultKind, FaultPlan, FaultSite};

    // Serialize on the process-wide fault state and pin the worker
    // count so GEMM-pass numbering is deterministic.
    let _g = faults::exclusive();
    tensor::par::set_thread_override(Some(1));
    faults::clear();
    faults::set_checker(Some(false));
    faults::reset_counters();
    let result = std::panic::catch_unwind(|| {
        let (q, srcs) = quant_model();
        let prompt: Vec<usize> = srcs[0].iter().cycle().take(35).copied().collect();
        let want = q.greedy_decode_with_prompt(&srcs[0], &prompt, 6);

        let mut cfg = EngineConfig::with_max_batch(1);
        cfg.prefix_cache_bytes = usize::MAX;
        let mut engine = ContinuousBatcher::new(&q, cfg).unwrap();

        // Request 0 warms the cache fault-free.
        engine
            .submit(Request::new(0, srcs[0].clone(), 6).with_prompt(prompt.clone()))
            .unwrap();
        let r0 = engine.run_to_completion();
        assert_eq!(r0[0].tokens, want);
        assert!(
            engine.prefix_cache_entries() >= 1,
            "prefill was snapshotted"
        );

        // Request 1 hits the cache: its session forks the snapshot at a
        // page boundary and prefills only the suffix. Corrupt an
        // accumulator early in that first post-hit step — the detected
        // fault rolls the session back to the *shared* boundary and
        // replays. A rollback that freed or wrote a shared page would
        // corrupt the cache entry (caught below) or the replay (caught
        // here).
        faults::install(FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::Accumulator {
                pass: 3,
                row: 0,
                col: 2,
            },
            kind: FaultKind::BitFlip { bit: 20 },
        }]));
        faults::set_checker(Some(true));
        engine
            .submit(Request::new(1, srcs[0].clone(), 6).with_prompt(prompt.clone()))
            .unwrap();
        let r1 = engine.run_to_completion();
        let stats = engine.stats();
        let c = faults::counters();
        assert_eq!(c.injected, 1, "the scheduled flip must fire");
        assert!(c.detected >= 1, "the checker must flag it");
        assert!(stats.retries >= 1, "the flagged step must be replayed");
        assert_eq!(stats.prefix_hits, 1);
        assert_eq!(
            r1[0].tokens, want,
            "retry from the shared boundary must heal"
        );

        // Request 2 hits the same entry with faults cleared: identical
        // output proves the faulty attempt's rows never reached the
        // shared pages.
        faults::clear();
        faults::set_checker(Some(false));
        engine
            .submit(Request::new(2, srcs[0].clone(), 6).with_prompt(prompt.clone()))
            .unwrap();
        let r2 = engine.run_to_completion();
        assert_eq!(engine.stats().prefix_hits, 2);
        assert_eq!(
            r2[0].tokens, want,
            "cache entry must survive the rollback intact"
        );
    });
    faults::clear();
    faults::set_checker(None);
    faults::reset_counters();
    tensor::par::set_thread_override(None);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}
