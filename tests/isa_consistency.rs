//! Three-way consistency: the same MHA ResBlock computed by (1) the
//! quantized datapath, (2) the register-true array engine, and (3) the
//! command-stream interpreter must agree bit for bit; and the ISA's
//! timing interpretation must equal the scheduler for every policy and
//! sequence length.

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::engine::ArrayEngine;
use transformer_accel::accel::isa::{
    execute_ffn, execute_mha, ffn_program, mha_program, schedule_program,
};
use transformer_accel::accel::{scheduler, AccelConfig, SchedPolicy};
use transformer_accel::quantized::{QuantFfnResBlock, QuantMhaResBlock, SoftmaxMode};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::ffn::FfnResBlock;
use transformer_accel::transformer::mha::MhaResBlock;

fn mini_cfg() -> ModelConfig {
    ModelConfig {
        name: "mini64h".into(),
        d_model: 128,
        d_ff: 512,
        h: 2,
        n_layers: 1,
        vocab: 16,
        max_len: 16,
    }
}

#[test]
fn three_way_mha_bit_identity() {
    let cfg = mini_cfg();
    let s = 16;
    let mut rng = StdRng::seed_from_u64(0x3A7);
    let mha = MhaResBlock::new(&cfg, &mut rng);
    let calib: Vec<_> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
        .collect();
    let q = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let xq = q.quantize_input_q(&calib[0]);

    let (datapath, _) = q.forward(&xq, &xq, None);
    let engine_out = ArrayEngine::new(s).execute_mha(&q, &xq, &xq, None).out;
    let isa_out = execute_mha(&mha_program(cfg.h, s), &q, &xq, &xq, None);

    assert_eq!(datapath, engine_out, "datapath vs PE-grid engine");
    assert_eq!(datapath, isa_out, "datapath vs command stream");
}

#[test]
fn three_way_ffn_bit_identity() {
    let cfg = mini_cfg();
    let s = 12;
    let mut rng = StdRng::seed_from_u64(0x3A8);
    let ffn = FfnResBlock::new(&cfg, &mut rng);
    let calib: Vec<_> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
        .collect();
    let q = QuantFfnResBlock::from_f32(&ffn, &calib);
    let x = q.quantize_input(&calib[1]);

    let (datapath, _) = q.forward(&x);
    let engine_out = ArrayEngine::new(s).execute_ffn(&q, &x).out;
    let isa_out = execute_ffn(&ffn_program(cfg.d_model, cfg.d_ff), &q, &x);

    assert_eq!(datapath, engine_out);
    assert_eq!(datapath, isa_out);
}

#[test]
fn isa_timing_matches_scheduler_across_policies_and_lengths() {
    for pol in [
        SchedPolicy::naive(),
        SchedPolicy::paper(),
        SchedPolicy::aggressive(),
    ] {
        for s in [16usize, 64] {
            let mut cfg = AccelConfig::paper_default();
            cfg.sched = pol;
            cfg.s = s;
            let mha = mha_program(cfg.model.h, s);
            assert_eq!(
                schedule_program(&cfg, &mha, s),
                scheduler::schedule_mha(&cfg).cycles,
                "MHA {pol:?} s={s}"
            );
            let ffn = ffn_program(cfg.model.d_model, cfg.model.d_ff);
            assert_eq!(
                schedule_program(&cfg, &ffn, s),
                scheduler::schedule_ffn(&cfg).cycles,
                "FFN {pol:?} s={s}"
            );
        }
    }
}

#[test]
fn isa_timing_matches_for_long_sequences_with_tiling() {
    let mut cfg = AccelConfig::paper_default();
    cfg.s = 128;
    let prog = mha_program(cfg.model.h, 128);
    // two score tiles per head appear in the program
    let tiles = prog
        .iter()
        .filter(|c| matches!(c, transformer_accel::accel::isa::Command::ScoreTile { .. }))
        .count();
    assert_eq!(tiles, 16);
    assert_eq!(
        schedule_program(&cfg, &prog, 128),
        scheduler::schedule_mha(&cfg).cycles
    );
}
