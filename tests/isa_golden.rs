//! Golden ISA programs and paper cycle counts.
//!
//! `mha_program` / `ffn_program` are now *lowered from the operator
//! graph* (`accel::exec::lower_mha` / `lower_ffn`); this test freezes
//! the pre-refactor hand-written Algorithm-1 loops and asserts the
//! lowering reproduces them command for command, and that the timing
//! interpretation of the lowered programs still lands exactly on the
//! reproduction's paper-configuration cycle counts (MHA 20 998, FFN
//! 35 846; the paper reports 21 344 / 36 329 with DRAM refresh
//! overhead the model excludes).

use transformer_accel::accel::exec::{lower_ffn, lower_mha};
use transformer_accel::accel::isa::{ffn_program, mha_program, schedule_program, Command};
use transformer_accel::accel::partition::{qk_plan, PANEL_COLS};
use transformer_accel::accel::AccelConfig;
use transformer_accel::graph::{ffn_graph, mha_graph, GraphConfig};
use transformer_accel::hwsim::cycles::Cycle;

/// The hand-written Algorithm-1 MHA command loop, as it existed before
/// programs were derived from the graph.
fn handwritten_mha(h: usize, s_kv: usize) -> Vec<Command> {
    let mut prog = Vec::new();
    let tiles = qk_plan(s_kv).tiles;
    for head in 0..h {
        prog.push(Command::ProjectQ { head });
        prog.push(Command::ProjectK { head });
        for tile in 0..tiles {
            prog.push(Command::ScoreTile { head, tile });
        }
        prog.push(Command::Softmax { head });
        prog.push(Command::ProjectV { head });
        prog.push(Command::Context { head });
    }
    for panel in 0..h {
        prog.push(Command::OutputPanel { panel });
    }
    prog.push(Command::LayerNorm);
    prog
}

/// The hand-written Algorithm-1 FFN command loop.
fn handwritten_ffn(d_model: usize, d_ff: usize) -> Vec<Command> {
    let mut prog = Vec::new();
    for panel in 0..d_ff.div_ceil(PANEL_COLS) {
        prog.push(Command::FfnHidden { panel });
    }
    for panel in 0..d_model.div_ceil(PANEL_COLS) {
        prog.push(Command::FfnOutput { panel });
    }
    prog.push(Command::LayerNorm);
    prog
}

#[test]
fn lowered_programs_match_handwritten_loops() {
    let cfg = AccelConfig::paper_default();
    let (h, s) = (cfg.model.h, cfg.s);
    assert_eq!(mha_program(h, s), handwritten_mha(h, s));
    assert_eq!(
        ffn_program(cfg.model.d_model, cfg.model.d_ff),
        handwritten_ffn(cfg.model.d_model, cfg.model.d_ff)
    );
    // and off the paper point, including a non-multiple-of-64 width
    for (h, s) in [(2, 8), (4, 200)] {
        assert_eq!(mha_program(h, s), handwritten_mha(h, s));
    }
    for (d_model, d_ff) in [(64, 256), (100, 300)] {
        assert_eq!(ffn_program(d_model, d_ff), handwritten_ffn(d_model, d_ff));
    }
}

#[test]
fn graph_lowering_is_the_program_source() {
    let cfg = AccelConfig::paper_default();
    let g = mha_graph(&GraphConfig {
        d_model: cfg.model.d_model,
        d_ff: 0,
        h: cfg.model.h,
    });
    assert_eq!(lower_mha(&g, cfg.s), mha_program(cfg.model.h, cfg.s));
    let g = ffn_graph(&GraphConfig {
        d_model: cfg.model.d_model,
        d_ff: cfg.model.d_ff,
        h: 1,
    });
    assert_eq!(
        lower_ffn(&g),
        ffn_program(cfg.model.d_model, cfg.model.d_ff)
    );
}

#[test]
fn lowered_programs_hit_paper_cycle_counts() {
    let cfg = AccelConfig::paper_default();
    let mha = mha_program(cfg.model.h, cfg.s);
    assert_eq!(schedule_program(&cfg, &mha, cfg.s), Cycle(20_998));
    let ffn = ffn_program(cfg.model.d_model, cfg.model.d_ff);
    assert_eq!(schedule_program(&cfg, &ffn, cfg.s), Cycle(35_846));
}
