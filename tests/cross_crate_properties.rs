//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary shapes, scales and contents across the whole stack.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::partition::{partitioned_matmul_i8, qk_matmul_i8};
use transformer_accel::accel::systolic::SystolicArray;
use transformer_accel::quantized::softmax::{scaled_masked_softmax, SoftmaxMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn systolic_simulation_equals_reference_gemm(
        m in 1usize..12,
        k in 1usize..24,
        n in 1usize..12,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sa = SystolicArray::new(12, 12);
        let a = tensor::init::uniform_i8(&mut rng, m, k);
        let b = tensor::init::uniform_i8(&mut rng, k, n);
        let sim = sa.simulate(&a, &b);
        prop_assert_eq!(sim.out, tensor::gemm::matmul_i8(&a, &b).unwrap());
        // closed-form timing
        prop_assert_eq!(sim.compute.get(), (k + m + n - 2) as u64);
    }

    #[test]
    fn partitioned_gemm_equals_monolithic(
        rows in 1usize..10,
        k_panels in 1usize..4,
        n_panels in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let k = 64 * k_panels;
        let n = 64 * n_panels;
        let x = tensor::init::uniform_i8(&mut rng, rows, k);
        let w = tensor::init::uniform_i8(&mut rng, k, n);
        prop_assert_eq!(
            partitioned_matmul_i8(&x, &w).unwrap(),
            tensor::gemm::matmul_i8(&x, &w).unwrap()
        );
    }

    #[test]
    fn qk_padding_and_tiling_is_exact(s in 1usize..150, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51D);
        let q = tensor::init::uniform_i8(&mut rng, s, 64);
        let k = tensor::init::uniform_i8(&mut rng, s, 64);
        prop_assert_eq!(
            qk_matmul_i8(&q, &k).unwrap(),
            tensor::gemm::matmul_i8_nt(&q, &k).unwrap()
        );
    }

    #[test]
    fn hw_softmax_is_a_probability_vector_up_to_approximation(
        s in 1usize..32,
        seed in 0u64..500,
        scale_exp in -16i32..-8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50F);
        let d = tensor::Mat::from_fn(s, s, |_, _| {
            use rand::Rng;
            rng.random_range(-100_000..100_000i32)
        });
        let scale = (2.0f32).powi(scale_exp);
        let p = scaled_masked_softmax(&d, scale, 64, None, SoftmaxMode::Hardware);
        for r in 0..s {
            let sum: i32 = p.row(r).iter().map(|&x| x as i32).sum();
            // every code non-negative; row sums near 127 with the
            // documented ~±15% approximation slack
            prop_assert!(p.row(r).iter().all(|&x| x >= 0));
            prop_assert!((104..=152).contains(&sum), "row {r} sums to {sum}");
        }
    }

    #[test]
    fn schedules_scale_monotonically_with_model_width(h in 1usize..9, seed in 0u64..10) {
        let _ = seed;
        use transformer_accel::accel::{scheduler, AccelConfig};
        let mut cfg = AccelConfig::paper_default();
        cfg.model.h = h;
        cfg.model.d_model = 64 * h;
        cfg.model.d_ff = 256 * h;
        let cycles = scheduler::schedule_mha(&cfg).cycles.get();
        cfg.model.h = h + 1;
        cfg.model.d_model = 64 * (h + 1);
        cfg.model.d_ff = 256 * (h + 1);
        let bigger = scheduler::schedule_mha(&cfg).cycles.get();
        prop_assert!(bigger > cycles, "{bigger} vs {cycles}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_is_bit_identical_across_random_64h_configs(
        h in 1usize..4,
        s in 2usize..12,
        seed in 0u64..100,
    ) {
        use transformer_accel::accel::engine::ArrayEngine;
        use transformer_accel::quantized::QuantMhaResBlock;
        use transformer_accel::transformer::config::ModelConfig;
        use transformer_accel::transformer::mha::MhaResBlock;
        let cfg = ModelConfig {
            name: "prop".into(),
            d_model: 64 * h,
            d_ff: 256 * h,
            h,
            n_layers: 1,
            vocab: 16,
            max_len: s,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let calib: Vec<_> = (0..2)
            .map(|_| tensor::init::normal(&mut rng, s, cfg.d_model, 1.0))
            .collect();
        let q = QuantMhaResBlock::from_f32(&block, &calib, &calib, SoftmaxMode::Hardware);
        let xq = q.quantize_input_q(&calib[0]);
        let (want, _) = q.forward(&xq, &xq, None);
        let mut engine = ArrayEngine::new(s);
        let run = engine.execute_mha(&q, &xq, &xq, None);
        prop_assert_eq!(run.out, want);
    }
}

#[test]
fn quantized_mha_error_is_bounded_across_random_blocks() {
    use transformer_accel::quantized::QuantMhaResBlock;
    use transformer_accel::transformer::config::ModelConfig;
    use transformer_accel::transformer::mha::MhaResBlock;
    for seed in 0..6u64 {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut block = MhaResBlock::new(&cfg, &mut rng);
        let calib: Vec<_> = (0..4)
            .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
            .collect();
        let q = QuantMhaResBlock::from_f32(&block, &calib, &calib, SoftmaxMode::Hardware);
        let x = &calib[0];
        let want = block.forward(x, x, x, None);
        let got = q.forward_f32(x, x, None);
        let err = want
            .as_slice()
            .iter()
            .zip(got.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(err < 0.35, "seed {seed}: err {err}");
    }
}
