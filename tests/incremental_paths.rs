//! Cross-crate differential decode: the same prompts pushed through the
//! single-row and batched incremental paths — both now driven by the
//! shared cached-KV operator graph through `RowExec` (FP32) and
//! `QuantRowExec` (INT8) — must produce bit-identical logits and the
//! same greedy decodes as the full-prefix recompute, every CI run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::quantized::incremental::{KvArena, QuantIncrementalSession};
use transformer_accel::quantized::{QuantSeq2Seq, SoftmaxMode};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::incremental::{
    greedy_decode_incremental, step_batch, FpKvArena, IncrementalSession,
};
use transformer_accel::transformer::model::Seq2SeqTransformer;
use transformer_accel::transformer::tasks::{Task, TaskGen, BOS, EOS};

fn setup() -> (Seq2SeqTransformer, QuantSeq2Seq, Vec<Vec<usize>>) {
    let mut cfg = ModelConfig::tiny_for_tests();
    cfg.n_layers = 2;
    let mut rng = StdRng::seed_from_u64(0x1DE);
    let model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
    let corpus = gen.corpus(4, &mut StdRng::seed_from_u64(0x1DF));
    let quant = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
    let srcs = corpus.into_iter().map(|(s, _)| s).collect();
    (model, quant, srcs)
}

#[test]
fn float_single_row_and_batched_decodes_agree() {
    let (mut model, _, srcs) = setup();
    // Full-prefix recompute vs single-row cached decode per prompt.
    for src in &srcs {
        assert_eq!(
            model.greedy_decode(src, BOS, EOS, 8),
            greedy_decode_incremental(&model, src, BOS, EOS, 8),
            "src {src:?}"
        );
    }
    // Single-row vs batched: advance every prompt in lockstep and
    // compare each step's logits bit for bit.
    let mut arena_s = FpKvArena::for_model(&model);
    let mut arena_b = FpKvArena::for_model(&model);
    let mut singles: Vec<IncrementalSession> = srcs
        .iter()
        .map(|s| IncrementalSession::new(&model, &mut arena_s, s))
        .collect();
    let mut batched: Vec<IncrementalSession> = srcs
        .iter()
        .map(|s| IncrementalSession::new(&model, &mut arena_b, s))
        .collect();
    let mut tokens: Vec<usize> = vec![BOS; srcs.len()];
    for _ in 0..6 {
        let want: Vec<Vec<f32>> = singles
            .iter_mut()
            .zip(&tokens)
            .map(|(s, &t)| s.step(&model, &mut arena_s, t))
            .collect();
        let mut refs: Vec<&mut IncrementalSession> = batched.iter_mut().collect();
        let got = step_batch(&model, &mut arena_b, &mut refs, &tokens);
        assert_eq!(want, got, "batched logits must be bit-identical");
        tokens = want.iter().map(|l| tensor::ops::argmax(l)).collect();
    }
}

#[test]
fn quant_single_row_and_batched_decodes_agree() {
    let (_, quant, srcs) = setup();
    for src in &srcs {
        assert_eq!(
            quant.greedy_decode(src, BOS, EOS, 8),
            quant.greedy_decode_incremental(src, 8),
            "src {src:?}"
        );
    }
    let mut arena_s = KvArena::for_model(&quant);
    let mut arena_b = KvArena::for_model(&quant);
    let mut singles: Vec<QuantIncrementalSession> = srcs
        .iter()
        .map(|s| quant.start_session(&mut arena_s, s))
        .collect();
    let mut batched: Vec<QuantIncrementalSession> = srcs
        .iter()
        .map(|s| quant.start_session(&mut arena_b, s))
        .collect();
    let mut tokens: Vec<usize> = vec![BOS; srcs.len()];
    for _ in 0..6 {
        let want: Vec<Vec<f32>> = singles
            .iter_mut()
            .zip(&tokens)
            .map(|(s, &t)| quant.step_session(&mut arena_s, s, t))
            .collect();
        let mut refs: Vec<&mut QuantIncrementalSession> = batched.iter_mut().collect();
        let got = quant.step_sessions(&mut arena_b, &mut refs, &tokens);
        assert_eq!(want, got, "batched logits must be bit-identical");
        tokens = want.iter().map(|l| tensor::ops::argmax(l)).collect();
    }
}
