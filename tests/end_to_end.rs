//! Cross-crate integration tests: FP32 reference → INT8 datapath →
//! accelerator facade, end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::{AccelConfig, Accelerator};
use transformer_accel::quantized::{QuantFfnResBlock, QuantMhaResBlock, QuantSeq2Seq, SoftmaxMode};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::ffn::FfnResBlock;
use transformer_accel::transformer::mha::MhaResBlock;
use transformer_accel::transformer::model::Seq2SeqTransformer;
use transformer_accel::transformer::tasks::{Task, TaskGen};

fn max_abs_diff(a: &tensor::Mat<f32>, b: &tensor::Mat<f32>) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn full_encoder_layer_through_accelerator_tracks_fp32() {
    let model_cfg = ModelConfig::tiny_for_tests();
    let s = 8;
    let mut rng = StdRng::seed_from_u64(100);
    let mut mha_f32 = MhaResBlock::new(&model_cfg, &mut rng);
    let mut ffn_f32 = FfnResBlock::new(&model_cfg, &mut rng);
    let calib: Vec<_> = (0..5)
        .map(|_| tensor::init::normal(&mut rng, s, model_cfg.d_model, 1.0))
        .collect();
    let qmha = QuantMhaResBlock::from_f32(&mha_f32, &calib, &calib, SoftmaxMode::Hardware);
    let mha_outs: Vec<_> = calib
        .iter()
        .map(|x| mha_f32.forward(x, x, x, None))
        .collect();
    let qffn = QuantFfnResBlock::from_f32(&ffn_f32, &mha_outs);

    let cfg = AccelConfig {
        model: model_cfg,
        s: 16,
        ..AccelConfig::paper_default()
    };
    let mut accel = Accelerator::new(cfg);
    accel.load_mha(qmha);
    accel.load_ffn(qffn);

    let x = &calib[0];
    let xq = accel.mha_block().unwrap().quantize_input_q(x);
    let (mha_out, rep1) = accel.run_mha(&xq, &xq, None).unwrap();
    let (ffn_out, rep2) = accel.run_ffn(&mha_out).unwrap();

    let want = ffn_f32.forward(&mha_f32.forward(x, x, x, None));
    let got = accel.ffn_block().unwrap().dequantize_output(&ffn_out);
    let err = max_abs_diff(&got, &want);
    assert!(err < 0.35, "layer error {err}");
    assert!(rep1.schedule.cycles.get() > 0);
    assert!(rep2.schedule.cycles.get() > 0);
}

#[test]
fn accelerator_numerics_are_exactly_the_quantized_datapath() {
    let model_cfg = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(200);
    let mha = MhaResBlock::new(&model_cfg, &mut rng);
    let calib: Vec<_> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, 6, model_cfg.d_model, 1.0))
        .collect();
    let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let cfg = AccelConfig {
        model: model_cfg,
        s: 8,
        ..AccelConfig::paper_default()
    };
    let mut accel = Accelerator::new(cfg);
    accel.load_mha(qmha.clone());

    for x in &calib {
        let xq = qmha.quantize_input_q(x);
        let (want, _) = qmha.forward(&xq, &xq, None);
        let (got, _) = accel.run_mha(&xq, &xq, None).unwrap();
        assert_eq!(got, want, "accelerator must be bit-identical");
    }
}

#[test]
fn trained_model_survives_quantization_with_small_bleu_drop() {
    // A short training run (enough to clearly beat chance) and the full
    // two-step quantization recipe — a miniature of experiment E9.
    let mut cfg = transformer_accel::transformer::train::study_config();
    cfg.n_layers = 1;
    cfg.d_model = 32;
    cfg.d_ff = 128;
    let mut rng = StdRng::seed_from_u64(300);
    let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Copy, cfg.vocab, 3, 6);
    let spec = transformer_accel::transformer::train::TrainSpec {
        steps: 250,
        batch: 6,
        warmup: 50,
        lr_scale: 0.5,
        ..Default::default()
    };
    let _ = transformer_accel::transformer::train::train(&mut model, &gen, &spec);

    let mut eval_rng = StdRng::seed_from_u64(301);
    let test = gen.corpus(12, &mut eval_rng);
    let calib = gen.corpus(6, &mut eval_rng);
    let fp32 = transformer_accel::transformer::train::evaluate(&mut model, &test);

    let q = QuantSeq2Seq::from_trained(&model, &calib, SoftmaxMode::Hardware);
    let qv = q.evaluate(&test);
    // INT8 should stay within a generous fraction of the FP32 score
    // (the trained score itself may be moderate after 250 steps).
    assert!(
        qv.bleu >= fp32.bleu * 0.5 - 5.0,
        "quantization destroyed the model: {} -> {}",
        fp32.bleu,
        qv.bleu
    );
}

#[test]
fn sequence_lengths_flow_through_all_layers_of_the_stack() {
    // odd, non-power-of-two sequence lengths must work everywhere
    let model_cfg = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(400);
    let mha = MhaResBlock::new(&model_cfg, &mut rng);
    let calib: Vec<_> = (0..2)
        .map(|_| tensor::init::normal(&mut rng, 11, model_cfg.d_model, 1.0))
        .collect();
    let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let cfg = AccelConfig {
        model: model_cfg.clone(),
        s: 16,
        ..AccelConfig::paper_default()
    };
    let mut accel = Accelerator::new(cfg);
    accel.load_mha(qmha);
    for s in [1usize, 3, 7, 11] {
        let x = tensor::init::normal(&mut rng, s, model_cfg.d_model, 1.0);
        let xq = accel.mha_block().unwrap().quantize_input_q(&x);
        let mask = tensor::ops::causal_mask(s);
        let (out, rep) = accel.run_mha(&xq, &xq, Some(&mask)).unwrap();
        assert_eq!(out.shape(), (s, model_cfg.d_model));
        assert!(rep.schedule.cycles.get() > 0, "s={s}");
    }
}

/// Paper-scale bit-identity: Transformer-base at s = 64, the exact
/// Table-III configuration, executed GEMM pass by GEMM pass through the
/// register-true PE grid. Heavy (hundreds of millions of PE updates) —
/// run explicitly with `cargo test --release -- --ignored`.
#[test]
#[ignore = "paper-scale; run with --release -- --ignored"]
fn paper_scale_engine_bit_identity() {
    use transformer_accel::accel::engine::ArrayEngine;
    let model_cfg = ModelConfig::transformer_base();
    let mut rng = StdRng::seed_from_u64(0xB16);
    let mha = MhaResBlock::new(&model_cfg, &mut rng);
    let calib: Vec<_> = (0..1)
        .map(|_| tensor::init::normal(&mut rng, 64, model_cfg.d_model, 1.0))
        .collect();
    let qmha = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let xq = qmha.quantize_input_q(&calib[0]);
    let (want, _) = qmha.forward(&xq, &xq, None);
    let mut engine = ArrayEngine::new(64);
    let run = engine.execute_mha(&qmha, &xq, &xq, None);
    assert_eq!(run.out, want);
    assert_eq!(run.stats.gemm_passes, 48, "Algorithm 1 at base scale");
}
