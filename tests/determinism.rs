//! Reproducibility guarantees: everything seeded must be bit-identical
//! across runs — training, quantization, the accelerator, and the
//! experiment pipelines built on them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::quantized::{QuantSeq2Seq, SoftmaxMode};
use transformer_accel::transformer::checkpoint::state_dict;
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::model::Seq2SeqTransformer;
use transformer_accel::transformer::tasks::{Task, TaskGen};
use transformer_accel::transformer::train::{train, TrainSpec};

fn spec() -> TrainSpec {
    TrainSpec {
        steps: 25,
        batch: 4,
        warmup: 10,
        lr_scale: 0.5,
        ..TrainSpec::default()
    }
}

fn tiny_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::tiny_for_tests();
    cfg.n_layers = 1;
    cfg
}

#[test]
fn training_is_bit_deterministic() {
    let cfg = tiny_cfg();
    let run = || {
        let mut model = Seq2SeqTransformer::new(&cfg, &mut StdRng::seed_from_u64(11));
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 6);
        let report = train(&mut model, &gen, &spec());
        (report.losses, state_dict(&mut model))
    };
    let (losses_a, params_a) = run();
    let (losses_b, params_b) = run();
    assert_eq!(losses_a, losses_b, "loss curves must be identical");
    assert_eq!(params_a, params_b, "trained parameters must be identical");
}

#[test]
fn quantization_pipeline_is_deterministic() {
    let cfg = tiny_cfg();
    let build = || {
        let mut model = Seq2SeqTransformer::new(&cfg, &mut StdRng::seed_from_u64(12));
        let gen = TaskGen::new(Task::Copy, cfg.vocab, 3, 5);
        let _ = train(&mut model, &gen, &spec());
        let corpus = gen.corpus(4, &mut StdRng::seed_from_u64(13));
        let q = QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware);
        (q, corpus)
    };
    let (qa, corpus) = build();
    let (qb, _) = build();
    for (src, tgt) in &corpus {
        let mut tin = vec![transformer_accel::transformer::tasks::BOS];
        tin.extend_from_slice(tgt);
        assert_eq!(
            qa.forward_logits(src, &tin),
            qb.forward_logits(src, &tin),
            "quantized logits must be bit-identical across rebuilds"
        );
    }
}

#[test]
fn schedules_and_area_are_pure_functions() {
    use transformer_accel::accel::{scheduler, AccelConfig};
    let cfg = AccelConfig::paper_default();
    let a = scheduler::schedule_mha(&cfg);
    let b = scheduler::schedule_mha(&cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.timeline.events().len(), b.timeline.events().len());
    let area = transformer_accel::accel::area::AreaModel::new(cfg.clone());
    assert_eq!(
        area.top(),
        transformer_accel::accel::area::AreaModel::new(cfg).top()
    );
}

#[test]
fn rtl_emission_is_reproducible() {
    let a = transformer_accel::accel::rtl::emit_all(64);
    let b = transformer_accel::accel::rtl::emit_all(64);
    assert_eq!(a.len(), b.len());
    for ((na, ca), (nb, cb)) in a.iter().zip(&b) {
        assert_eq!(na, nb);
        assert_eq!(ca, cb, "artifact {na} differs across emissions");
    }
}
